"""Benchmark: Fig. 6: hit-to-taken distribution under OPT.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig06_hit_to_taken.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig6(benchmark, harness):
    result = run_figure(benchmark, experiments.fig6, harness)
    for row in result.rows:
        values = row[1:]
        # Sorted-descending temperature curve.
        assert values == sorted(values, reverse=True)
