"""Component micro-benchmarks: simulation throughput of the substrates.

Unlike the figure benches these use real repetition — they are the numbers
to watch when optimizing the pure-Python hot paths.
"""

import pytest

from repro.btb.btb import BTB, btb_access_stream, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.opt import compute_next_use
from repro.btb.replacement.registry import make_policy
from repro.core.profiler import profile_trace
from repro.frontend.simulator import FrontendSimulator
from repro.workloads.datacenter import make_app_trace

TRACE_LENGTH = 20_000


@pytest.fixture(scope="module")
def trace():
    return make_app_trace("tomcat", length=TRACE_LENGTH)


@pytest.fixture(scope="module")
def stream(trace):
    return btb_access_stream(trace)[0]


@pytest.mark.parametrize("policy_name", ["lru", "srrip", "ghrp", "hawkeye"])
def test_btb_replay_throughput(benchmark, trace, policy_name):
    def run():
        return run_btb(trace, BTB(BTBConfig(), make_policy(policy_name)))

    stats = benchmark(run)
    assert stats.accesses > 0


def test_thermometer_replay_throughput(benchmark, trace):
    from repro.core.pipeline import ThermometerPipeline
    pipeline = ThermometerPipeline()
    hints = pipeline.build_hints(trace)

    def run():
        return run_btb(trace, BTB(BTBConfig(), pipeline.policy(hints)))

    stats = benchmark(run)
    assert stats.accesses > 0


def test_next_use_precomputation(benchmark, stream):
    result = benchmark(compute_next_use, stream)
    assert len(result) == len(stream)


def test_opt_profiling(benchmark, trace):
    profile = benchmark(profile_trace, trace, BTBConfig())
    assert profile.num_branches > 0


def test_trace_generation(benchmark):
    trace = benchmark(make_app_trace, "tomcat", 0, TRACE_LENGTH)
    assert len(trace) == TRACE_LENGTH


def test_frontend_simulation_throughput(benchmark, trace):
    def run():
        sim = FrontendSimulator(btb=BTB(BTBConfig(), make_policy("lru")))
        return sim.simulate(trace)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.cycles > 0
