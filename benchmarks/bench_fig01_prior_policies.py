"""Benchmark: Fig. 1: prior replacement policies vs OPT over LRU.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig01_prior_policies.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig1(benchmark, harness):
    result = run_figure(benchmark, experiments.fig1, harness)
    avg = result.row("Avg")
    opt = avg[result.columns.index("opt")]
    srrip = avg[result.columns.index("srrip")]
    # The motivating gap: OPT far ahead of the best prior policy.
    assert opt > 2 * max(srrip, 0.1)
