"""Benchmark: Fig. 19: BTB entries/ways sensitivity.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig19_btb_geometry.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig19(benchmark, harness):
    result = run_figure(benchmark, experiments.fig19, harness,
                        apps=("cassandra", "tomcat"),
                        entry_sweep=(2048, 8192, 32768),
                        way_sweep=(4, 16, 64))
    col = result.columns.index
    rows = [r for r in result.rows if r[col("thermometer")] > 0]
    # Thermometer retains more of OPT than SRRIP in the typical case.
    better = sum(r[col("thermometer")] >= r[col("srrip")] for r in rows)
    assert better >= len(rows) * 0.7
