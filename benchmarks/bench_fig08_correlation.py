"""Benchmark: Fig. 8: branch property vs temperature correlation.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig08_correlation.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig8(benchmark, harness):
    result = run_figure(benchmark, experiments.fig8, harness)
    avg = result.row("Avg")
    reuse = avg[result.columns.index("avg_reuse_distance")]
    bias = avg[result.columns.index("bias")]
    # Holistic reuse distance is the strong signal.
    assert reuse > bias
