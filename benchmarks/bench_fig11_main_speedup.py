"""Benchmark: Fig. 11 (headline): Thermometer vs priors vs OPT.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig11_main_speedup.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig11(benchmark, harness):
    result = run_figure(benchmark, experiments.fig11, harness)
    avg = result.row("Avg")
    col = result.columns.index
    opt, therm = avg[col("opt")], avg[col("thermometer")]
    priors = [avg[col(n)] for n in ("srrip", "ghrp", "hawkeye")]
    assert opt >= therm
    assert therm > max(priors)
    # Thermometer captures a large share of the optimal speedup.
    assert therm > 0.4 * opt
