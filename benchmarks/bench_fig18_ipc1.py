"""Benchmark: Fig. 18: IPC-1-like suite speedups.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig18_ipc1.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig18(benchmark, harness):
    from benchmarks.conftest import BENCH_IPC_COUNT, BENCH_LENGTH
    result = run_figure(benchmark, experiments.fig18, harness,
                        count=BENCH_IPC_COUNT, length=BENCH_LENGTH)
    avg = result.row("Avg")
    col = result.columns.index
    assert avg[col("opt")] >= avg[col("thermometer")] >= \
        avg[col("srrip")] - 0.3
