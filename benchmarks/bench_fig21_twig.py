"""Benchmark: Fig. 21: Thermometer under Twig BTB prefetching.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig21_twig.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig21(benchmark, harness):
    result = run_figure(benchmark, experiments.fig21, harness)
    avg = result.row("Avg")
    col = result.columns.index
    assert avg[col("thermometer")] > avg[col("srrip")]
    assert avg[col("opt")] >= avg[col("thermometer")] - 0.5
