"""Benchmark: Fig. 7: dynamic-execution CDF by temperature.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig07_dynamic_cdf.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig7(benchmark, harness):
    result = run_figure(benchmark, experiments.fig7, harness)
    half_idx = result.columns.index("50%")
    for row in result.rows:
        # Hot half of unique branches covers most dynamic execution.
        assert row[half_idx] > 60.0
