"""Benchmark: Fig. 4: BTB prefetching vs optimal replacement.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig04_prefetchers.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig4(benchmark, harness):
    result = run_figure(benchmark, experiments.fig4, harness)
    avg = result.row("Avg")
    perfect = avg[result.columns.index("perfect_btb")]
    confluence = avg[result.columns.index("confluence_lru")]
    # Prefetching alone remains far from the perfect-BTB limit.
    assert perfect > 4 * max(confluence, 0.1)
