"""Benchmark: Fig. 16: replacement accuracy (transient/holistic/both).

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig16_accuracy.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig16(benchmark, harness):
    result = run_figure(benchmark, experiments.fig16, harness)
    avg = result.row("Avg")
    col = result.columns.index
    # Paper: holistic information beats transient-only decisions.  (See
    # the figure note for the combined policy's known deviation.)
    assert avg[col("holistic")] > avg[col("transient")]
    assert avg[col("thermometer")] > avg[col("transient")]
