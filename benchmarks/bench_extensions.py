"""Extension benchmarks: studies this library adds beyond the paper.

* policy zoo — every implemented policy on one workload;
* online vs offline Thermometer — the value of the OPT profile;
* two-level BTB — hints on the contended small level;
* 3C classification — the structure of the remaining misses.
"""

from repro.analysis.threec import classify_misses
from repro.btb.btb import BTB, btb_access_stream, run_btb
from repro.btb.hierarchy import TwoLevelBTB
from repro.btb.replacement.registry import make_policy
from repro.harness.reporting import format_table

APP = "kafka"


def test_policy_zoo(benchmark, harness):
    trace = harness.trace(APP)
    pcs, _ = btb_access_stream(trace)
    hints = harness.hints(APP)

    def run():
        rows = []
        for name in ("lru", "plru", "fifo", "random", "srrip", "brrip",
                     "dip", "ship", "ghrp", "hawkeye",
                     "thermometer-online"):
            stats = harness.run_misses(trace, name)
            rows.append([name, stats.misses])
        rows.append(["thermometer",
                     harness.run_misses(trace, "thermometer",
                                        hints=hints).misses])
        rows.append(["opt", harness.run_misses(trace, "opt").misses])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["policy", "misses"],
                       sorted(rows, key=lambda r: r[1], reverse=True)))
    misses = dict(rows)
    assert misses["opt"] == min(misses.values())
    assert misses["thermometer"] < min(
        v for k, v in misses.items() if k not in ("thermometer", "opt"))


def test_online_vs_offline_thermometer(benchmark, harness):
    trace = harness.trace(APP)
    hints = harness.hints(APP)

    def run():
        online = harness.run_misses(trace, "thermometer-online").misses
        offline = harness.run_misses(trace, "thermometer",
                                     hints=hints).misses
        lru = harness.run_misses(trace, "lru").misses
        return lru, online, offline

    lru, online, offline = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nlru={lru} online={online} offline={offline}")
    # The offline profile buys a clear margin over in-hardware estimation.
    assert offline < online <= lru * 1.02


def test_two_level_btb_with_hints(benchmark, harness):
    trace = harness.trace(APP)
    hints = harness.hints(APP, btb_config=None)
    pcs, targets = btb_access_stream(trace)

    def run(l1_policy_name):
        if l1_policy_name == "thermometer":
            from repro.btb.replacement.thermometer import ThermometerPolicy
            policy = ThermometerPolicy(hints, default_category=1)
        else:
            policy = make_policy(l1_policy_name)
        two = TwoLevelBTB.build(l1_entries=1024, l2_entries=8192,
                                l1_policy=policy)
        for i in range(len(pcs)):
            two.access(int(pcs[i]), int(targets[i]), i)
        return two.stats

    def run_both():
        return run("lru"), run("thermometer")

    lru_stats, therm_stats = benchmark.pedantic(run_both, rounds=1,
                                                iterations=1)
    print(f"\nL1 hit rate: lru={lru_stats.l1_hit_rate:.3f} "
          f"thermometer={therm_stats.l1_hit_rate:.3f}")
    # Hints help the small, contended level too.
    assert therm_stats.l1_hit_rate > lru_stats.l1_hit_rate


def test_3c_classification(benchmark, harness):
    trace = harness.trace(APP)

    def run():
        return classify_misses(trace, config=harness.config.btb_config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + result.summary())
    # LRU never makes a within-associativity mistake by the set-local
    # stack-distance definition.
    assert result.conflict == 0
    assert result.total_misses > 0


def test_compressed_btb_tradeoff(benchmark, harness):
    """Partial-tag compression: smaller tags buy entries but alias.

    Sweeps the tag width at constant storage and reports geometry, false
    hits, and IPC — with Thermometer running on top of every variant
    (the paper's 'orthogonal and combinable' claim, §5).
    """
    from repro.btb.compressed import (PartialTagBTB,
                                      iso_storage_compressed_config)
    from repro.btb.replacement.thermometer import ThermometerPolicy
    from repro.frontend.simulator import FrontendSimulator

    # verilator: the only model whose multi-MB footprint spans enough tag
    # windows for narrow tags to alias (smaller apps fit one window).
    trace = harness.trace("verilator")
    base_config = harness.config.btb_config

    def run():
        rows = []
        for tag_bits in (4, 6, 16):
            config = iso_storage_compressed_config(base_config, tag_bits,
                                                   hint_bits=2)
            hints = harness.hints("verilator", btb_config=config)
            btb = PartialTagBTB(config, ThermometerPolicy(
                hints, default_category=1), tag_bits=tag_bits)
            result = FrontendSimulator(btb=btb).simulate(trace)
            rows.append([f"tag={tag_bits}b", config.entries,
                         btb.false_hits, round(result.ipc, 4)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["variant", "entries", "false_hits", "ipc"], rows))
    by_tag = {row[0]: row for row in rows}
    # Narrower tags must buy entries and cost aliases.
    assert by_tag["tag=4b"][1] > by_tag["tag=16b"][1]
    assert by_tag["tag=4b"][2] > by_tag["tag=16b"][2]


def test_sampled_profiling_cost_accuracy(benchmark, harness):
    """SimPoint-style sampled profiling — and its limits.

    Extends Fig. 14's cost story, with a finding that *supports* the
    paper's design: hit-to-taken is a holistic metric, so OPT-replaying
    isolated intervals loses cross-phase reuse and degrades temperature
    fidelity.  The sampled hints stay LRU-competitive at a fraction of the
    profiling cost, but whole-run replay (the paper's choice) is what the
    full quality requires.
    """
    import time

    from repro.analysis.phases import sampled_profile, \
        select_representatives
    from repro.btb.btb import BTB, run_btb
    from repro.btb.replacement.thermometer import ThermometerPolicy
    from repro.core.hints import ThresholdQuantizer
    from repro.core.temperature import TemperatureProfile

    trace = harness.trace(APP)
    config = harness.config.btb_config

    def run():
        start = time.perf_counter()
        full = harness.profile(APP)
        full_seconds = full.elapsed_seconds
        selection = select_representatives(trace, k=6)
        sampled = sampled_profile(trace, config, selection=selection)
        sampled_seconds = time.perf_counter() - start
        agreement = TemperatureProfile.from_opt_profile(full) \
            .agreement_with(TemperatureProfile.from_opt_profile(sampled))
        hints = ThresholdQuantizer().quantize(
            TemperatureProfile.from_opt_profile(sampled),
            default_category=1)
        stats = run_btb(trace, BTB(config, ThermometerPolicy(
            hints, default_category=1)))
        lru = harness.run_misses(trace, "lru")
        return (selection.sampled_fraction, agreement,
                stats.misses, lru.misses)

    fraction, agreement, misses, lru_misses = benchmark.pedantic(
        run, rounds=1, iterations=1)
    print(f"\nsampled fraction={fraction:.2f} "
          f"temperature agreement={agreement:.2f} "
          f"misses={misses} (lru {lru_misses})")
    assert fraction < 0.75
    # Interval-local replay retains only partial temperature fidelity...
    assert 0.2 < agreement < 0.95
    # ...but the resulting hints must stay LRU-competitive.
    assert misses < lru_misses * 1.1


def test_block_btb_organization(benchmark, harness):
    """Block-oriented BTB (§5): tag sharing across same-block branches."""
    from repro.btb.block_btb import BlockBTB, run_block_btb
    from repro.btb.btb import BTB, run_btb
    from repro.btb.replacement.lru import LRUPolicy
    from repro.btb.config import BTBConfig

    trace = harness.trace(APP)
    config = BTBConfig(entries=2048, ways=4)

    def run():
        block = BlockBTB(config, LRUPolicy(), block_bytes=64,
                         branches_per_entry=4)
        block_stats = run_block_btb(trace, block)
        branch_stats = run_btb(trace, BTB(config, LRUPolicy()))
        return block, block_stats, branch_stats

    block, block_stats, branch_stats = benchmark.pedantic(run, rounds=1,
                                                          iterations=1)
    print(f"\nblock entries cover {block.sharing_factor:.2f} branches "
          f"each; hits: block={block_stats.hits} "
          f"branch={branch_stats.hits} (equal entry counts)")
    assert block.sharing_factor > 1.0
    # With >1 branch per entry, the block organization reaches more
    # branches from the same number of tags.
    assert block_stats.hits > branch_stats.hits
