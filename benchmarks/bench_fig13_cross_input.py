"""Benchmark: Fig. 13: generalization across application inputs.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig13_cross_input.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig13(benchmark, harness):
    result = run_figure(benchmark, experiments.fig13, harness, inputs=(1,))
    avg = result.row("Avg")
    col = result.columns.index
    training = avg[col("therm_training_profile")]
    srrip = avg[col("srrip")]
    # A stale (different-input) profile still beats the best prior policy.
    assert training > srrip
