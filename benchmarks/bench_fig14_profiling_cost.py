"""Benchmark: Fig. 14: offline OPT-simulation cost.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig14_profiling_cost.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig14(benchmark, harness):
    result = run_figure(benchmark, experiments.fig14, harness)
    seconds = result.column("seconds")[:-1]
    # Offline analysis stays in interactive territory even in pure Python.
    assert all(s < 120 for s in seconds)
