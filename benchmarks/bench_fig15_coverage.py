"""Benchmark: Fig. 15: Thermometer replacement coverage.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig15_coverage.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig15(benchmark, harness):
    result = run_figure(benchmark, experiments.fig15, harness)
    avg = result.row("Avg")
    coverage = avg[result.columns.index("coverage")]
    # Hints narrow the victim choice for a substantial share of decisions.
    assert 20.0 < coverage <= 100.0
