"""Benchmark: Fig. 5: transient vs holistic reuse variance.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig05_variance.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig5(benchmark, harness):
    result = run_figure(benchmark, experiments.fig5, harness)
    avg = result.row("Avg")
    ratio = avg[result.columns.index("ratio")]
    # Paper: transient variance more than 2x holistic on average.
    assert ratio > 1.5
