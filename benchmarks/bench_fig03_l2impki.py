"""Benchmark: Fig. 3: L2 instruction MPKI per application.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig03_l2impki.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig3(benchmark, harness):
    result = run_figure(benchmark, experiments.fig3, harness)
    mpki = dict(zip(result.column("app"), result.column("l2i_mpki")))
    others = [v for k, v in mpki.items() if k != "verilator"]
    # verilator is the outlier.  (At benchmark-scale trace lengths the gap
    # is compressed by compulsory misses; full-length runs show >20x.)
    assert mpki["verilator"] > max(others)
