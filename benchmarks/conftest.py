"""Shared state for the figure-regeneration benchmarks.

Every ``bench_figNN`` benchmark regenerates one paper figure at a reduced
trace length (override with ``REPRO_BENCH_LENGTH``; the full-length campaign
is ``python -m repro.harness.reproduce --preset full``).  The harness is
session-scoped so traces, OPT profiles, and LRU baselines are computed once
and shared across figures, exactly as the reproduce driver does — and it is
backed by one persistent artifact store, so those artifacts survive the
process and warm the *next* benchmark session too.  Set ``REPRO_CACHE_DIR``
to control where the store lives (default: a per-session temp directory, so
stale timings from a previous code revision can never leak into results);
set ``REPRO_BENCH_CACHE=persist`` to use the user-level default store.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.engine import ArtifactStore, default_cache_dir
from repro.harness.runner import Harness, HarnessConfig

#: Reduced per-app trace length for the benchmark campaign.
BENCH_LENGTH = int(os.environ.get("REPRO_BENCH_LENGTH", "120000"))
#: Suite sizes for the CBP-5/IPC-1 benches.
BENCH_CBP_COUNT = int(os.environ.get("REPRO_BENCH_CBP", "8"))
BENCH_IPC_COUNT = int(os.environ.get("REPRO_BENCH_IPC", "5"))


@pytest.fixture(scope="session")
def artifact_store(tmp_path_factory) -> ArtifactStore:
    """One warm artifact store shared by every figure benchmark."""
    if os.environ.get("REPRO_CACHE_DIR"):
        root = default_cache_dir()
    elif os.environ.get("REPRO_BENCH_CACHE") == "persist":
        root = default_cache_dir()
    else:
        root = tmp_path_factory.mktemp("artifact-store")
    return ArtifactStore(root)


@pytest.fixture(scope="session")
def harness(artifact_store) -> Harness:
    return Harness(HarnessConfig(length=BENCH_LENGTH),
                   store=artifact_store)


def run_figure(benchmark, fig_func, *args, **kwargs):
    """Run one figure exactly once under pytest-benchmark and print it."""
    result = benchmark.pedantic(fig_func, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    print()
    print(result.render())
    return result
