"""Benchmark: Fig. 17: CBP-5-like suite, miss reduction over GHRP.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig17_cbp5.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig17(benchmark, harness):
    from benchmarks.conftest import BENCH_CBP_COUNT, BENCH_LENGTH
    result = run_figure(benchmark, experiments.fig17, harness,
                        count=BENCH_CBP_COUNT, length=BENCH_LENGTH)
    metrics = {row[0]: row[1] for row in result.rows}
    assert metrics["wins_vs_ghrp"] >= metrics["losses_vs_ghrp"]
    assert metrics["mean_reduction_pct_twofold"] >= \
        metrics["mean_reduction_pct"] - 1.0
