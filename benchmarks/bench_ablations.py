"""Ablation benchmarks for Thermometer's design choices (DESIGN.md §5).

Each ablation isolates one ingredient of Algorithm 1 on the same workload:

* tie-break: LRU (transient signal) vs static (holistic only);
* bypass: on vs off;
* quantizer: empirical thresholds vs equal-population bins (§3.3's naive
  alternative);
* default category for unprofiled branches.
"""

from repro.btb.btb import BTB, run_btb
from repro.btb.replacement.thermometer import ThermometerPolicy
from repro.core.hints import ThresholdQuantizer, UniformQuantizer
from repro.harness.reporting import format_table

APP = "cassandra"


def _misses(harness, policy):
    btb = BTB(harness.config.btb_config, policy)
    return run_btb(harness.trace(APP), btb).misses


def test_ablation_tiebreak_and_bypass(benchmark, harness):
    hints = harness.hints(APP)

    def run():
        rows = []
        for label, kwargs in [
            ("full (lru + bypass)", {}),
            ("static tiebreak", {"tiebreak": "static"}),
            ("no bypass", {"bypass_enabled": False}),
            ("static, no bypass", {"tiebreak": "static",
                                   "bypass_enabled": False}),
        ]:
            policy = ThermometerPolicy(hints, default_category=1, **kwargs)
            rows.append([label, _misses(harness, policy)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["variant", "misses"], rows))
    misses = {label: m for label, m in rows}
    lru_baseline = harness.run_misses(harness.trace(APP), "lru").misses
    # Every variant must still beat plain LRU — temperature is the main
    # signal; tie-break and bypass are refinements.
    assert all(m < lru_baseline for m in misses.values())


def test_ablation_quantizer(benchmark, harness):
    temps = harness.temperatures(APP)

    def run():
        rows = []
        for label, quantizer in [
            ("thresholds 50/80 (paper)", ThresholdQuantizer((50.0, 80.0))),
            ("thresholds 30/60", ThresholdQuantizer((30.0, 60.0))),
            ("uniform 3 bins (naive)", UniformQuantizer(3)),
            ("uniform 4 bins", UniformQuantizer(4)),
        ]:
            hints = quantizer.quantize(temps, default_category=1)
            policy = ThermometerPolicy(hints, default_category=1)
            rows.append([label, _misses(harness, policy)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["quantizer", "misses"], rows))
    lru_baseline = harness.run_misses(harness.trace(APP), "lru").misses
    assert all(m < lru_baseline for _, m in rows)


def test_ablation_default_category(benchmark, harness):
    """What happens to a *cross-input* profile as the unprofiled-branch
    default changes — the paper-silent choice DESIGN.md §5 calls out."""
    train_hints = harness.hints(APP, input_id=1)
    test_trace = harness.trace(APP, input_id=0)

    def run():
        rows = []
        for default in (0, 1, 2):
            policy = ThermometerPolicy(train_hints,
                                       default_category=default)
            btb = BTB(harness.config.btb_config, policy)
            rows.append([f"default={default} "
                         + ("(cold)", "(warm)", "(hot)")[default],
                         run_btb(test_trace, btb).misses])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["unprofiled default", "misses"], rows))
    misses = [m for _, m in rows]
    lru = harness.run_misses(test_trace, "lru").misses
    # Whatever the default, a cross-input profile must keep beating LRU —
    # the failure mode this ablation guards against is the cold-default
    # permanently bypassing unprofiled branches and collapsing below it.
    assert max(misses) < lru
    # And the choice of default must stay a second-order effect.
    assert max(misses) - min(misses) < 0.15 * lru
