"""Benchmark: Fig. 12: BTB miss reduction over LRU.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig12_miss_reduction.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig12(benchmark, harness):
    result = run_figure(benchmark, experiments.fig12, harness)
    avg = result.row("Avg")
    col = result.columns.index
    assert avg[col("opt")] >= avg[col("thermometer")] > avg[col("srrip")]
