"""Benchmark: Fig. 2: perfect BTB / BP / I-cache limit study.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig02_limit_study.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig2(benchmark, harness):
    result = run_figure(benchmark, experiments.fig2, harness)
    avg = result.row("Avg")
    btb = avg[result.columns.index("perfect_btb")]
    bp = avg[result.columns.index("perfect_bp")]
    # Perfect BTB is the dominant oracle on average (paper: 63.2 vs 11.3).
    assert btb > bp
