"""Benchmark: Fig. 9: bypass ratio by temperature class under OPT.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig09_bypass.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig9(benchmark, harness):
    result = run_figure(benchmark, experiments.fig9, harness)
    avg = result.row("Avg")
    cold = avg[result.columns.index("cold")]
    hot = avg[result.columns.index("hot")]
    # Cold branches bypass far more often than hot ones.
    assert cold > hot
