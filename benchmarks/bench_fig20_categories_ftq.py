"""Benchmark: Fig. 20: hint categories / FTQ sensitivity.

Regenerates the figure at benchmark scale and checks its headline property;
run with ``pytest benchmarks/bench_fig20_categories_ftq.py --benchmark-only -s`` to see
the table.
"""

from repro.harness import experiments

from benchmarks.conftest import run_figure


def test_fig20(benchmark, harness):
    result = run_figure(benchmark, experiments.fig20, harness,
                        apps=("cassandra", "tomcat"),
                        category_sweep=(2, 3, 8),
                        ftq_sweep=(64, 192))
    col = result.columns.index
    by_config = {}
    for row in result.rows:
        by_config.setdefault(row[0], []).append(row[col("thermometer")])
    means = {k: sum(v) / len(v) for k, v in by_config.items()}
    # Few categories beat many: 8 categories fragment similar branches
    # (the paper's argument for a 2-bit hint).  Note the documented
    # deviation: on this substrate 2 categories are also competitive.
    assert max(means["categories=2"], means["categories=3"]) \
        >= means["categories=8"] - 2.0
    # The benefit is stable across FTQ run-ahead depths.
    assert abs(means["ftq=64"] - means["ftq=192"]) < 5.0
