"""Single-pass multi-policy replay: one stream walk, N policy states.

:func:`~repro.btb.btb.replay_stream_multi`,
:meth:`~repro.harness.runner.Harness.run_misses_multi`, and the engine's
:class:`~repro.harness.engine.GroupReplay` path must all be
result-identical to replaying each policy on its own — stats, BTB
storage, per-set directories, and policy internals, on both dispatch
paths — and the whole feature must vanish under ``REPRO_MULTI_REPLAY=0``.
"""

from __future__ import annotations

import copy
import dataclasses
import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.btb import kernels
from repro.btb.btb import BTB, replay_stream, replay_stream_multi, run_btb
from repro.btb.config import BTBConfig, THERMOMETER_7979_CONFIG
from repro.btb.replacement.registry import make_policy, policy_names
from repro.core.hints import HintMap
from repro.harness.engine import (ExperimentEngine, GroupReplay, SimJob,
                                  multi_replay_enabled)
from repro.harness.runner import Harness, HarnessConfig
from repro.trace.record import BranchKind, BranchRecord, BranchTrace
from repro.trace.stream import access_stream_for, clear_stream_cache
from repro.workloads import make_app_trace

APPS = ("cassandra", "kafka", "tomcat")
LENGTH = 5000
#: Small enough that the synthetic working sets overflow it, so the
#: policies actually disagree and a cross-wired state would show up.
CONFIG = BTBConfig(entries=256, ways=4)
#: Tiny geometry for the randomized property.
TINY = BTBConfig(entries=8, ways=2)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_stream_cache()
    yield
    clear_stream_cache()


_POLICY_ATTRS = ("_stamps", "_clock", "_rrpv", "_temps", "_resident_next",
                 "_last_index", "covered_decisions", "uncovered_decisions",
                 "_bits", "_psel", "_bip_counter", "_role",
                 "_shct", "_signature", "_outcome", "_dead", "_tables",
                 "_history", "_counters", "_friendly", "_taken", "_hits")


def _policy_state(policy) -> dict:
    state = {a: copy.deepcopy(getattr(policy, a))
             for a in _POLICY_ATTRS if hasattr(policy, a)}
    gens = getattr(policy, "_optgen", None)
    if gens is not None:
        state["_optgen"] = {s: (g.time, dict(g.last_time), list(g._occ))
                            for s, g in gens.items()}
    return state


def _btb_state(btb: BTB) -> dict:
    return {
        "stats": dataclasses.asdict(btb.stats),
        "tags": btb._tags.tolist(),
        "targets": btb._targets.tolist(),
        "reused": btb._reused.tolist(),
        "fill_index": btb._fill_index.tolist(),
        "dir": btb._dir,
        "policy": _policy_state(btb.policy),
    }


def _hints(trace: BranchTrace) -> HintMap:
    pcs = set(trace.pcs.tolist())
    return HintMap({pc: (pc >> 2) % 3 for pc in pcs}, num_categories=3)


def _policy(name: str, trace: BranchTrace, config: BTBConfig):
    if name == "opt":
        return make_policy("opt", stream=access_stream_for(trace, config))
    if name in ("thermometer", "thermometer-dueling"):
        return make_policy(name, hints=_hints(trace))
    return make_policy(name)


def _build_all(trace: BranchTrace, config: BTBConfig):
    return [BTB(config, _policy(name, trace, config))
            for name in policy_names()]


# ----------------------------------------------------------------------
# replay_stream_multi vs. serial replay_stream
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fast", (True, False), ids=("fast", "reference"))
@pytest.mark.parametrize("app", APPS)
def test_multi_matches_serial_replay(app, fast):
    """One shared sweep over all 15 registry policies equals 15
    independent replays — storage and policy internals included, on
    both dispatch paths."""
    trace = make_app_trace(app, length=LENGTH)
    stream = access_stream_for(trace, CONFIG)
    previous = kernels.set_fast_path_enabled(fast)
    try:
        serial = _build_all(trace, CONFIG)
        for btb in serial:
            replay_stream(stream, btb)
        multi = _build_all(trace, CONFIG)
        stats = replay_stream_multi(stream, multi)
    finally:
        kernels.set_fast_path_enabled(previous)
    for name, one, many, st_ in zip(policy_names(), serial, multi, stats):
        assert stats is not None and st_ is many.stats
        assert _btb_state(many) == _btb_state(one), name
        assert many.stats.accesses > 0


def test_multi_drives_foreign_geometry_via_access():
    """A BTB whose geometry differs from the stream's cannot reuse the
    precomputed set indices; the shared loop must drive it through
    ``BTB.access`` and still match a solo replay."""
    trace = make_app_trace("tomcat", length=LENGTH)
    stream = access_stream_for(trace, CONFIG)
    other_config = BTBConfig(entries=128, ways=4)
    native = BTB(CONFIG, make_policy("lru"))
    foreign = BTB(other_config, make_policy("srrip"))
    replay_stream_multi(stream, [native, foreign])

    solo_native = BTB(CONFIG, make_policy("lru"))
    replay_stream(stream, solo_native)
    solo_foreign = BTB(other_config, make_policy("srrip"))
    run_btb(trace, solo_foreign)
    assert _btb_state(native) == _btb_state(solo_native)
    assert _btb_state(foreign) == _btb_state(solo_foreign)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(pairs=st.lists(st.tuples(st.integers(0, 15), st.integers(0, 7)),
                      min_size=0, max_size=120))
def test_multi_replay_property(pairs):
    """Randomized streams: the shared sweep equals serial replay for
    every registry policy at a geometry small enough to overflow."""
    records = [BranchRecord(pc=0x1000 + pc * 4, target=0x4000 + t * 4,
                            kind=BranchKind.UNCOND_DIRECT, taken=True,
                            ilen=4)
               for pc, t in pairs]
    trace = BranchTrace.from_records(records, name="prop")
    clear_stream_cache()
    stream = access_stream_for(trace, TINY)
    serial = _build_all(trace, TINY)
    for btb in serial:
        replay_stream(stream, btb)
    multi = _build_all(trace, TINY)
    replay_stream_multi(stream, multi)
    for name, one, many in zip(policy_names(), serial, multi):
        assert _btb_state(many) == _btb_state(one), name


# ----------------------------------------------------------------------
# Harness.run_misses_multi vs. run_misses
# ----------------------------------------------------------------------

def test_run_misses_multi_matches_run_misses():
    """The harness sweep returns per-policy stats in order, identical to
    serial ``run_misses`` — including ``thermometer-7979``, which lands
    in its own geometry group."""
    names = ["lru", "srrip", "dip", "ghrp", "thermometer",
             "thermometer-7979", "random"]
    harness = Harness(HarnessConfig(apps=("tomcat",), length=LENGTH,
                                    btb_config=CONFIG))
    trace = harness.trace("tomcat")
    hints = {
        "thermometer": harness.hints("tomcat"),
        "thermometer-7979": harness.hints(
            "tomcat", btb_config=THERMOMETER_7979_CONFIG),
    }
    serial = [harness.run_misses(trace, name, hints=hints.get(name))
              for name in names]
    multi = harness.run_misses_multi(trace, names, hints_by_policy=hints)
    assert len(multi) == len(names)
    for name, a, b in zip(names, serial, multi):
        assert dataclasses.asdict(a) == dataclasses.asdict(b), name
        assert b.accesses > 0


# ----------------------------------------------------------------------
# Engine wiring: GroupReplay planning and byte-identity
# ----------------------------------------------------------------------

ENGINE_JOBS = ([SimJob(app="tomcat", policy=p, length=2000, mode="misses")
                for p in ("lru", "srrip", "dip", "thermometer", "random")]
               + [SimJob(app="kafka", policy="lru", length=2000,
                         mode="misses"),
                  SimJob(app="kafka", policy="ship", length=2000,
                         mode="misses")])


class TestGroupReplayPlan:
    def test_groups_share_one_plan_per_stream(self):
        jobs = ENGINE_JOBS + [SimJob(app="tomcat", policy="lru",
                                     length=2000, mode="sim")]
        groups = GroupReplay.plan(jobs)
        # tomcat/misses jobs share one group, kafka/misses another.
        assert groups[0] is not None
        assert all(groups[i] is groups[0] for i in range(5))
        assert groups[5] is not None and groups[5] is groups[6]
        assert groups[5] is not groups[0]
        # sim jobs never group.
        assert groups[-1] is None

    def test_singletons_and_7979_are_ungrouped(self):
        jobs = [SimJob(app="tomcat", policy="lru", length=2000,
                       mode="misses"),
                SimJob(app="tomcat", policy="thermometer-7979",
                       length=2000, mode="misses"),
                SimJob(app="python", policy="srrip", length=2000,
                       mode="misses")]
        groups = GroupReplay.plan(jobs)
        # 7979 replays the iso-storage geometry, so it shares a stream
        # with nobody here; the others are singletons in their groups.
        assert groups == [None, None, None]

    def test_kill_switch_disables_planning(self, monkeypatch):
        monkeypatch.setenv("REPRO_MULTI_REPLAY", "0")
        assert not multi_replay_enabled()
        assert GroupReplay.plan(ENGINE_JOBS) == [None] * len(ENGINE_JOBS)
        monkeypatch.setenv("REPRO_MULTI_REPLAY", "1")
        assert multi_replay_enabled()
        assert any(g is not None for g in GroupReplay.plan(ENGINE_JOBS))


class TestEngineByteIdentity:
    def _run(self, cache_dir, n_jobs):
        engine = ExperimentEngine(cache_dir=cache_dir, jobs=n_jobs,
                                  max_retries=0)
        return [pickle.dumps(r.value) for r in engine.run(ENGINE_JOBS)]

    def test_multi_on_off_serial_and_parallel(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MULTI_REPLAY", "0")
        off = self._run(tmp_path / "off", 1)
        monkeypatch.setenv("REPRO_MULTI_REPLAY", "1")
        on = self._run(tmp_path / "on", 1)
        assert on == off
        parallel = self._run(tmp_path / "par", 2)
        assert parallel == off

    def test_serial_run_sweeps_once_per_group(self, tmp_path, monkeypatch):
        from repro.telemetry.metrics import MetricsRegistry, set_registry
        monkeypatch.setenv("REPRO_MULTI_REPLAY", "1")
        previous = set_registry(MetricsRegistry(enabled=True))
        try:
            engine = ExperimentEngine(cache_dir=tmp_path, jobs=1,
                                      max_retries=0)
            engine.run(ENGINE_JOBS)
            counters = engine.last_run_telemetry["counters"]
        finally:
            set_registry(previous)
        # Two stream groups (tomcat, kafka) -> exactly two sweeps; the
        # other members were served from the memoized group result.
        assert counters.get("engine/multi_replay/sweeps") == 2

    def test_resumed_member_is_not_recomputed_by_the_sweep(self, tmp_path):
        """A sweep triggered mid-group must skip members whose artifacts
        already verify on disk and still serve every remaining member."""
        store_dir = tmp_path / "store"
        engine = ExperimentEngine(cache_dir=store_dir, jobs=1,
                                  max_retries=0)
        first = engine.run(ENGINE_JOBS[:2])  # lru + srrip already stored
        rest = engine.run(ENGINE_JOBS)
        assert [pickle.dumps(r.value) for r in rest[:2]] == \
            [pickle.dumps(r.value) for r in first]
        assert all(r.state == "succeeded" for r in rest)
