"""Run manifests: engine round-trips, merge consistency, and the report
CLI."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.harness.engine import ExperimentEngine, SimJob
from repro.telemetry.manifest import (read_run_manifest, render_report,
                                      write_run_manifest)
from repro.telemetry.metrics import MetricsRegistry


def _fake_result(app, policy, seconds, counters):
    telemetry = {"counters": counters, "gauges": {}, "histograms": {},
                 "spans": {}}
    job = SimpleNamespace(app=app, policy=policy, mode="misses",
                          input_id=0, length=1000)
    return SimpleNamespace(job=job, value=None, cached=False,
                           seconds=seconds, stats=None,
                           telemetry=telemetry)


class TestWriteReadRoundTrip:
    def test_row_telemetry_merged_when_no_parent_snapshot(self, tmp_path):
        results = [_fake_result("a", "lru", 1.0, {"n": 2}),
                   _fake_result("b", "lru", 3.0, {"n": 5})]
        run_dir = write_run_manifest(tmp_path, results, wall_seconds=4.0,
                                     workers=2)
        manifest = read_run_manifest(run_dir)
        assert manifest.summary["telemetry"]["counters"]["n"] == 7
        assert manifest.summary["jobs"] == 2
        assert manifest.summary["busy_seconds"] == pytest.approx(4.0)
        assert manifest.summary["worker_utilization"] == pytest.approx(0.5)
        assert [row["app"] for row in manifest.rows] == ["a", "b"]

    def test_explicit_telemetry_wins_over_rows(self, tmp_path):
        """The engine passes its already-merged snapshot; rows must not be
        double-counted on top of it."""
        results = [_fake_result("a", "lru", 1.0, {"n": 2})]
        run_dir = write_run_manifest(
            tmp_path, results, wall_seconds=1.0, workers=1,
            telemetry={"counters": {"n": 2}, "gauges": {},
                       "histograms": {}, "spans": {}})
        manifest = read_run_manifest(run_dir)
        assert manifest.summary["telemetry"]["counters"]["n"] == 2

    def test_resolves_cache_root_to_latest_run(self, tmp_path):
        runs = tmp_path / "runs"
        first = write_run_manifest(runs, [], 1.0, 1, run_id="a-run")
        second = write_run_manifest(runs, [], 1.0, 1, run_id="b-run")
        assert read_run_manifest(tmp_path).path == second
        assert read_run_manifest(first).run_id == "a-run"
        assert read_run_manifest(second / "summary.json").run_id == "b-run"

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_run_manifest(tmp_path)


class TestEngineManifests:
    JOBS = [SimJob(app=app, policy=policy, length=4000, mode="misses")
            for app in ("tomcat", "python") for policy in ("lru", "srrip")]

    def test_two_worker_run_round_trip(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=2)
        results = engine.run(self.JOBS)
        assert engine.last_manifest is not None
        manifest = read_run_manifest(engine.last_manifest)

        summary = manifest.summary
        assert summary["jobs"] == len(self.JOBS) == len(manifest.rows)
        assert summary["workers"] == 2
        assert summary["cached_jobs"] == 0
        assert 0.0 < summary["worker_utilization"] <= 2.0
        # Worker telemetry made it across the process boundary: the
        # replay spans ran in the pool, not in this process.  Group
        # replay sweeps each app's policies in one "misses" span, so
        # spans count per group, not per job.
        spans = summary["telemetry"]["spans"]
        assert spans["misses"]["count"] == 2  # one sweep per app group
        assert summary["telemetry"]["counters"][
            "engine/multi_replay/sweeps"] == 2
        assert spans["trace"]["count"] == 2  # one per app, shared
        # Rows carry per-job BTB stats that match the returned results.
        by_key = {(r["app"], r["policy"]): r for r in manifest.rows}
        for result in results:
            row = by_key[(result.job.app, result.job.policy)]
            assert row["btb"]["misses"] == result.value.misses
        assert summary["exceptions"] == []

    def test_cached_rerun_and_report_render(self, tmp_path, capsys):
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1)
        engine.run(self.JOBS)
        engine.run(self.JOBS)  # second run: everything from the store
        manifest = read_run_manifest(engine.last_manifest)
        assert manifest.summary["cached_jobs"] == len(self.JOBS)
        assert manifest.summary["cache"]["hits"] > 0

        rendered = render_report(manifest)
        assert manifest.run_id in rendered
        assert "artifact cache" in rendered
        assert "per-policy event rates" in rendered

        from repro.tools.report import main as report_main
        assert report_main([str(engine.last_manifest)]) == 0
        out = capsys.readouterr().out
        assert manifest.run_id in out
        assert report_main([str(tmp_path), "--jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == len(self.JOBS)
        assert json.loads(lines[0])["app"] == "tomcat"

    def test_failed_run_still_writes_manifest(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1)
        bad = [SimJob(app="tomcat", policy="no-such-policy", length=2000,
                      mode="misses")]
        with pytest.raises(Exception):
            engine.run(bad)
        manifest = read_run_manifest(engine.last_manifest)
        assert len(manifest.summary["exceptions"]) == 1
        assert "no-such-policy" in manifest.summary["exceptions"][0]["error"]
        rendered = render_report(manifest)
        assert "exceptions" in rendered

    def test_write_manifest_false_disables(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1,
                                  write_manifest=False)
        engine.run(self.JOBS[:1])
        assert engine.last_manifest is None
        assert not (tmp_path / "runs").exists()


class TestSerialParallelConsistency:
    def test_serial_avoids_double_count(self, tmp_path):
        """Serial jobs record into the parent registry; the manifest must
        count each replay once, not once per job row + once in the
        parent delta."""
        from repro.telemetry.metrics import set_registry
        previous = set_registry(MetricsRegistry(enabled=True))
        try:
            engine = ExperimentEngine(cache_dir=tmp_path, jobs=1)
            jobs = [SimJob(app="tomcat", policy=p, length=3000,
                           mode="misses") for p in ("lru", "srrip")]
            engine.run(jobs)
        finally:
            set_registry(previous)
        manifest = read_run_manifest(engine.last_manifest)
        spans = manifest.summary["telemetry"]["spans"]
        # Both jobs share one app group, so group replay runs a single
        # "misses" sweep — counted once, not per job or per delta.
        assert spans["misses"]["count"] == 1
        assert spans["trace"]["count"] == 1
