"""Differential equivalence: the parallel engine vs. the serial Harness.

The artifact cache and the process-pool fan-out are only sound if they are
*invisible*: for any job, the engine must produce results bit-identical to
driving a plain in-memory :class:`~repro.harness.runner.Harness` by hand,
whether the cache is cold, warm, or shared between worker processes.
"""

from __future__ import annotations

import pytest

from repro.btb.config import BTBConfig
from repro.harness.engine import ExperimentEngine, SimJob
from repro.harness.runner import Harness, HarnessConfig

#: The differential matrix: enough apps/policies to cover hinted and
#: unhinted construction paths while staying fast.
APPS = ("tomcat", "python")
POLICIES = ("lru", "srrip", "thermometer")
LENGTH = 6000


def _jobs(mode: str):
    return [SimJob(app=app, policy=policy, length=LENGTH, mode=mode)
            for app in APPS for policy in POLICIES]


def _serial_reference(job: SimJob):
    """The pre-engine code path: a bare Harness, no store."""
    h = Harness(job.harness_config())
    trace = h.trace(job.app, job.input_id)
    hints = h.hints(job.app, job.input_id) if job.needs_hints else None
    if job.mode == "misses":
        return h.run_misses(trace, job.policy, hints=hints)
    return h.run_sim(trace, job.policy, hints=hints)


class TestSerialEquivalence:
    @pytest.mark.parametrize("mode", ["sim", "misses"])
    def test_engine_matches_bare_harness(self, tmp_path, mode):
        engine = ExperimentEngine(cache_dir=tmp_path / "store", jobs=1)
        results = engine.run(_jobs(mode))
        for result in results:
            reference = _serial_reference(result.job)
            assert result.value == reference, result.job

    def test_sim_results_identical_field_by_field(self, tmp_path):
        """Spot-check the fields the figures consume, not just __eq__."""
        job = SimJob(app="tomcat", policy="thermometer", length=LENGTH)
        engine = ExperimentEngine(cache_dir=tmp_path / "store", jobs=1)
        value = engine.run([job])[0].value
        reference = _serial_reference(job)
        assert value.cycles == reference.cycles
        assert value.instructions == reference.instructions
        assert value.ipc == reference.ipc
        assert value.btb_stats.hits == reference.btb_stats.hits
        assert value.btb_stats.misses == reference.btb_stats.misses
        assert value.btb_stats.bypasses == reference.btb_stats.bypasses

    def test_hint_maps_identical_through_store(self, tmp_path):
        from repro.harness.engine import ArtifactStore
        config = HarnessConfig(apps=APPS, length=LENGTH)
        bare = Harness(config)
        writer = Harness(config, store=ArtifactStore(tmp_path / "store"))
        reader = Harness(config, store=ArtifactStore(tmp_path / "store"))
        for app in APPS:
            expected = bare.hints(app)
            assert writer.hints(app) == expected   # computed, then stored
            assert reader.hints(app) == expected   # loaded from disk

    def test_no_store_engine_matches_store_engine(self, tmp_path):
        jobs = _jobs("sim")
        stored = ExperimentEngine(cache_dir=tmp_path / "store", jobs=1)
        bare = ExperimentEngine(cache_dir=None, jobs=1)
        assert ([r.value for r in stored.run(jobs)]
                == [r.value for r in bare.run(jobs)])


class TestWarmCacheEquivalence:
    def test_cold_and_warm_runs_identical(self, tmp_path):
        jobs = _jobs("sim")
        cold_engine = ExperimentEngine(cache_dir=tmp_path / "store", jobs=1)
        cold = cold_engine.run(jobs)
        assert not any(r.cached for r in cold)
        # A fresh engine (fresh process-equivalent) over the same store.
        warm_engine = ExperimentEngine(cache_dir=tmp_path / "store", jobs=1)
        warm = warm_engine.run(jobs)
        assert all(r.cached for r in warm)
        assert [r.value for r in warm] == [r.value for r in cold]
        assert warm_engine.stats.misses == 0
        assert warm_engine.stats.hits == len(jobs)

    def test_btb_stats_survive_pickling_roundtrip(self, tmp_path):
        job = SimJob(app="tomcat", policy="srrip", length=LENGTH,
                     mode="misses")
        engine = ExperimentEngine(cache_dir=tmp_path / "store", jobs=1)
        cold = engine.run([job])[0].value
        warm = ExperimentEngine(cache_dir=tmp_path / "store",
                                jobs=1).run([job])[0].value
        assert (warm.accesses, warm.hits, warm.misses, warm.evictions,
                warm.bypasses, warm.compulsory_fills) == (
            cold.accesses, cold.hits, cold.misses, cold.evictions,
            cold.bypasses, cold.compulsory_fills)


class TestParallelEquivalence:
    def test_process_pool_matches_serial(self, tmp_path):
        """Workers in separate processes produce bit-identical results
        (and return them in submission order)."""
        jobs = [SimJob(app=app, policy=policy, length=4000)
                for app in ("tomcat",) for policy in ("lru", "srrip",
                                                      "thermometer")]
        parallel = ExperimentEngine(cache_dir=tmp_path / "par", jobs=2)
        serial = ExperimentEngine(cache_dir=tmp_path / "ser", jobs=1)
        par_results = parallel.run(jobs)
        ser_results = serial.run(jobs)
        assert [r.job for r in par_results] == jobs
        assert [r.value for r in par_results] == [r.value
                                                  for r in ser_results]

    def test_parallel_run_warms_shared_store(self, tmp_path):
        jobs = [SimJob(app="python", policy=p, length=4000, mode="misses")
                for p in ("lru", "srrip")]
        ExperimentEngine(cache_dir=tmp_path / "store", jobs=2).run(jobs)
        warm = ExperimentEngine(cache_dir=tmp_path / "store", jobs=1)
        assert all(r.cached for r in warm.run(jobs))

    def test_different_configs_do_not_collide(self, tmp_path):
        """Two jobs differing only in BTB geometry must not share a cache
        entry — the engine's key covers the whole machine config."""
        small = SimJob(app="tomcat", policy="lru", length=4000,
                       mode="misses", btb_config=BTBConfig(entries=64,
                                                           ways=2))
        big = SimJob(app="tomcat", policy="lru", length=4000,
                     mode="misses")
        engine = ExperimentEngine(cache_dir=tmp_path / "store", jobs=1)
        first = engine.run([small, big])
        assert first[0].value.misses > first[1].value.misses
        again = ExperimentEngine(cache_dir=tmp_path / "store",
                                 jobs=1).run([small, big])
        assert again[0].value == first[0].value
        assert again[1].value == first[1].value
