"""Edge-case tests across modules (reset semantics, warmup extremes,
degenerate inputs)."""

import pytest

from repro.btb.btb import BTB, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.ghrp import GHRPPolicy
from repro.btb.replacement.hawkeye import HawkeyePolicy
from repro.btb.replacement.lru import LRUPolicy
from repro.btb.replacement.srrip import SRRIPPolicy
from repro.btb.replacement.thermometer import ThermometerPolicy
from repro.frontend.simulator import FrontendSimulator, simulate
from repro.trace.record import BranchTrace

from tests.helpers import branch, trace_of_pcs


class TestPolicyReset:
    @pytest.mark.parametrize("policy_factory", [
        LRUPolicy, SRRIPPolicy, GHRPPolicy, HawkeyePolicy,
        lambda: ThermometerPolicy({0x4: 2}, default_category=1),
    ])
    def test_reset_reproduces_first_run(self, policy_factory, small_trace,
                                        tiny_config):
        """After reset(), a policy must replay identically to a fresh
        instance (determinism requirement for the harness)."""
        policy = policy_factory()
        first = run_btb(small_trace, BTB(tiny_config, policy))
        first_hits = first.hits
        policy.reset()
        second = run_btb(small_trace, BTB(tiny_config, policy))
        assert second.hits == first_hits

    def test_reset_before_bind_is_noop(self):
        policy = LRUPolicy()
        policy.reset()          # must not raise


class TestWarmupExtremes:
    def test_high_warmup_fraction(self, small_trace):
        sim = FrontendSimulator(btb=BTB(BTBConfig(), LRUPolicy()))
        result = sim.simulate(small_trace, warmup_fraction=0.95)
        assert result.instructions > 0
        assert result.cycles > 0

    def test_zero_warmup_counts_everything(self, small_trace):
        sim = FrontendSimulator(btb=BTB(BTBConfig(), LRUPolicy()))
        result = sim.simulate(small_trace, warmup_fraction=0.0)
        assert result.instructions == small_trace.num_instructions

    def test_single_record_trace(self):
        trace = trace_of_pcs([0x40])
        result = simulate(trace, btb=BTB(BTBConfig(), LRUPolicy()))
        # Entirely consumed by the 20% warmup rounding to zero records.
        assert result.cycles >= 0


class TestDegenerateGeometry:
    def test_single_entry_btb(self):
        btb = BTB(BTBConfig(entries=1, ways=1), LRUPolicy())
        trace = trace_of_pcs([0x40, 0x44, 0x40])
        stats = run_btb(trace, btb)
        assert stats.accesses == 3
        assert stats.hits == 0              # every access displaces

    def test_fully_associative_btb(self, small_trace):
        config = BTBConfig(entries=64, ways=64)   # one set
        stats = run_btb(small_trace, BTB(config, LRUPolicy()))
        assert stats.accesses > 0

    def test_huge_btb_only_compulsory(self, small_trace):
        config = BTBConfig(entries=1 << 16, ways=4)
        stats = run_btb(small_trace, BTB(config, LRUPolicy()))
        assert stats.misses == stats.compulsory_fills


class TestEmptyInputs:
    def test_empty_trace_everywhere(self, tiny_config):
        empty = BranchTrace.empty()
        assert run_btb(empty, BTB(tiny_config, LRUPolicy())).accesses == 0
        from repro.core.profiler import profile_trace
        assert profile_trace(empty, tiny_config).num_branches == 0

    def test_all_not_taken_trace(self, tiny_config):
        from repro.trace.record import BranchKind
        records = [branch(0x40, kind=BranchKind.COND_DIRECT, taken=False)
                   for _ in range(5)]
        trace = BranchTrace.from_records(records)
        stats = run_btb(trace, BTB(tiny_config, LRUPolicy()))
        assert stats.accesses == 0          # BTB never consulted
