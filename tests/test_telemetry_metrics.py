"""Registry semantics the cross-process manifest merge leans on."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import (DEFAULT_BUCKETS, Histogram,
                                     MetricsRegistry, get_registry,
                                     merge_snapshots, set_registry,
                                     snapshot_delta)


@pytest.fixture
def registry():
    """A fresh enabled registry installed as the process default."""
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestHistogram:
    def test_observe_buckets(self):
        hist = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0, 1, 5, 50, 500):
            hist.observe(value)
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == 556
        assert hist.mean == pytest.approx(111.2)

    def test_merge_adds_bucketwise(self):
        a = Histogram(bounds=(1.0, 10.0))
        b = Histogram(bounds=(1.0, 10.0))
        a.observe(0.5)
        b.observe(5)
        b.observe(50)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3

    def test_merge_rejects_different_bounds(self):
        a = Histogram(bounds=(1.0, 10.0))
        b = Histogram(bounds=(2.0, 20.0))
        with pytest.raises(ValueError, match="bounds"):
            a.merge(b)

    def test_dict_round_trip(self):
        hist = Histogram()
        hist.observe(3)
        hist.observe(70000)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.bounds == DEFAULT_BUCKETS
        assert clone.counts == hist.counts
        assert clone.count == 2 and clone.sum == hist.sum


class TestSpans:
    def test_nesting_builds_paths(self, registry):
        with registry.span("sim"):
            with registry.span("warmup"):
                pass
            with registry.span("measure"):
                pass
        with registry.span("sim"):
            pass
        assert registry.spans["sim"][0] == 2
        assert registry.spans["sim/warmup"][0] == 1
        assert registry.spans["sim/measure"][0] == 1
        assert registry.spans["sim"][1] >= (
            registry.spans["sim/warmup"][1]
            + registry.spans["sim/measure"][1])

    def test_exception_closes_span_and_counts_error(self, registry):
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                with registry.span("inner"):
                    raise RuntimeError("boom")
        # Both spans recorded despite the exception, stack unwound.
        assert registry.spans["outer"] == [1, pytest.approx(
            registry.spans["outer"][1]), 1]
        assert registry.spans["outer/inner"][2] == 1
        assert registry._span_stack == []
        # A later span nests from the top level again.
        with registry.span("after"):
            pass
        assert "after" in registry.spans

    def test_span_seconds(self, registry):
        assert registry.span_seconds("missing") == 0.0
        with registry.span("x"):
            pass
        assert registry.span_seconds("x") >= 0.0


class TestDisabled:
    def test_mutators_are_noops(self):
        reg = MetricsRegistry(enabled=False)
        reg.count("a")
        reg.gauge("b", 1.0)
        reg.observe("c", 2.0)
        with reg.span("d"):
            pass
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {},
                        "spans": {}}

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert MetricsRegistry().enabled is False
        monkeypatch.setenv("REPRO_TELEMETRY", "on")
        assert MetricsRegistry().enabled is True


class TestMergeSnapshots:
    def _worker_snapshot(self, n):
        reg = MetricsRegistry(enabled=True)
        reg.count("jobs", n)
        reg.gauge("last_n", n)
        for value in range(n):
            reg.observe("sizes", float(value), bounds=(1.0, 10.0))
        with reg.span("work"):
            pass
        return reg.snapshot()

    def test_parent_merges_n_workers(self, registry):
        registry.count("jobs", 1)  # parent's own activity
        merged = merge_snapshots(
            [registry.snapshot()]
            + [self._worker_snapshot(n) for n in (2, 3, 4)])
        assert merged["counters"]["jobs"] == 1 + 2 + 3 + 4
        # Gauges are last-write-wins.
        assert merged["gauges"]["last_n"] == 4
        # Histogram buckets add element-wise: values 0..1, 0..2, 0..3
        # → six observations <= 1, three in (1, 10].
        sizes = merged["histograms"]["sizes"]
        assert sizes["count"] == 9
        assert sizes["counts"] == [6, 3, 0]
        assert merged["spans"]["work"]["count"] == 3

    def test_merge_mismatched_histogram_bounds_raises(self):
        a = MetricsRegistry(enabled=True)
        a.observe("h", 1.0, bounds=(1.0,))
        b = MetricsRegistry(enabled=True)
        b.observe("h", 1.0, bounds=(2.0,))
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])


class TestSnapshotDelta:
    def test_delta_subtracts_and_drops_unchanged(self, registry):
        registry.count("stable", 5)
        registry.observe("h", 1.0)
        before = registry.snapshot()
        registry.count("grew", 2)
        registry.observe("h", 3.0)
        with registry.span("s"):
            pass
        delta = snapshot_delta(registry.snapshot(), before)
        assert delta["counters"] == {"grew": 2}
        assert "stable" not in delta["counters"]
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["spans"]["s"]["count"] == 1

    def test_delta_then_merge_reconstructs_total(self, registry):
        registry.count("n", 3)
        before = registry.snapshot()
        registry.count("n", 4)
        delta = snapshot_delta(registry.snapshot(), before)
        merged = merge_snapshots([before, delta])
        assert merged["counters"]["n"] == 7


class TestProcessDefault:
    def test_set_registry_swaps_and_restores(self):
        original = get_registry()
        fresh = MetricsRegistry(enabled=True)
        assert set_registry(fresh) is original
        assert get_registry() is fresh
        set_registry(original)
        assert get_registry() is original
