"""The shared job-identity helpers (:mod:`repro.harness.engine.keys`).

These keys are what the replay planner, the shared-memory stream
export, and the service's request coalescer all agree on; their
semantics are pinned here so a refactor in any one consumer cannot
silently diverge from the others.
"""

from __future__ import annotations

from repro.btb.config import (BTBConfig, DEFAULT_BTB_CONFIG,
                              THERMOMETER_7979_CONFIG)
from repro.harness.engine import SimJob
from repro.harness.engine.keys import (batch_key, effective_btb_config,
                                       replay_group_key, stream_key)


def job(**kwargs) -> SimJob:
    defaults = dict(app="tomcat", policy="lru", length=4000,
                    mode="misses")
    defaults.update(kwargs)
    return SimJob(**defaults)


class TestEffectiveConfig:
    def test_default_policies_keep_nominal_geometry(self):
        config = BTBConfig(entries=2048, ways=4)
        for policy in ("lru", "srrip", "opt", "thermometer"):
            assert effective_btb_config(policy, config) is config

    def test_iso_storage_variant_overrides_geometry(self):
        nominal = BTBConfig(entries=8192, ways=4)
        assert (effective_btb_config("thermometer-7979", nominal)
                == THERMOMETER_7979_CONFIG)

    def test_override_ignores_nominal_config(self):
        a = effective_btb_config("thermometer-7979", DEFAULT_BTB_CONFIG)
        b = effective_btb_config("thermometer-7979",
                                 BTBConfig(entries=512, ways=2))
        assert a == b == THERMOMETER_7979_CONFIG


class TestReplayGroupKey:
    def test_policies_share_a_group(self):
        assert (replay_group_key(job(policy="lru"))
                == replay_group_key(job(policy="srrip"))
                == replay_group_key(job(policy="opt")))

    def test_sim_mode_is_not_groupable(self):
        assert replay_group_key(job(mode="sim")) is None

    def test_distinct_workloads_split_groups(self):
        base = replay_group_key(job())
        assert replay_group_key(job(app="kafka")) != base
        assert replay_group_key(job(input_id=1)) != base
        assert replay_group_key(job(length=8000)) != base

    def test_distinct_geometry_splits_groups(self):
        small = BTBConfig(entries=1024, ways=4)
        assert (replay_group_key(job(btb_config=small))
                != replay_group_key(job()))

    def test_iso_storage_variant_groups_by_effective_geometry(self):
        """thermometer-7979 replays the 7979-entry geometry no matter
        the nominal config, so it must never share a sweep with
        default-geometry jobs..."""
        assert (replay_group_key(job(policy="thermometer-7979"))
                != replay_group_key(job(policy="lru")))
        # ...but two 7979 jobs with different *nominal* configs replay
        # identically, and harness_config still separates their keys
        # (the harness builds nominal-config streams).
        a = replay_group_key(job(policy="thermometer-7979"))
        b = replay_group_key(job(policy="thermometer-7979",
                                 btb_config=BTBConfig(entries=512,
                                                      ways=2)))
        assert a[:4] == b[:4]
        assert a != b

    def test_harness_settings_split_groups(self):
        assert (replay_group_key(job(warmup_fraction=0.3))
                != replay_group_key(job()))


class TestStreamAndBatchKeys:
    def test_stream_key_uses_nominal_geometry(self):
        assert (stream_key(job(policy="thermometer-7979"))
                == stream_key(job(policy="lru")))

    def test_stream_key_splits_on_geometry(self):
        assert (stream_key(job(btb_config=BTBConfig(entries=1024,
                                                    ways=4)))
                != stream_key(job()))

    def test_batch_key_merges_policies_and_modes(self):
        assert (batch_key(job(policy="lru"))
                == batch_key(job(policy="srrip"))
                == batch_key(job(mode="sim")))

    def test_batch_key_splits_on_machine_config(self):
        assert batch_key(job(length=8000)) != batch_key(job())
        assert batch_key(job(app="kafka")) != batch_key(job())


class TestPlannerUsesSharedKeys:
    def test_plan_groups_by_replay_group_key(self):
        from repro.harness.engine import GroupReplay
        jobs = [job(policy="lru"), job(policy="srrip"),
                job(policy="lru", app="kafka"), job(mode="sim")]
        groups = GroupReplay.plan(jobs)
        assert groups[0] is not None and groups[0] is groups[1]
        assert groups[2] is None  # singleton group: no sweep payoff
        assert groups[3] is None  # sim mode never groups
