"""Unit tests for the branch-trace data model."""

import numpy as np
import pytest

from repro.trace.record import (INSTRUCTION_BYTES, BranchKind, BranchRecord,
                                BranchTrace)

from tests.helpers import branch, trace_of_pcs


class TestBranchKind:
    def test_conditional_flags(self):
        assert BranchKind.COND_DIRECT.is_conditional
        assert not BranchKind.UNCOND_DIRECT.is_conditional
        assert BranchKind.UNCOND_DIRECT.is_unconditional

    def test_indirect_flags(self):
        assert BranchKind.UNCOND_INDIRECT.is_indirect
        assert BranchKind.CALL_INDIRECT.is_indirect
        assert BranchKind.RETURN.is_indirect
        assert not BranchKind.COND_DIRECT.is_indirect

    def test_call_and_return_flags(self):
        assert BranchKind.CALL_DIRECT.is_call
        assert BranchKind.CALL_INDIRECT.is_call
        assert not BranchKind.RETURN.is_call
        assert BranchKind.RETURN.is_return

    def test_kinds_fit_in_uint8(self):
        assert max(BranchKind) < 256


class TestBranchRecord:
    def test_fallthrough(self):
        rec = branch(0x1000)
        assert rec.fallthrough == 0x1000 + INSTRUCTION_BYTES

    def test_fields(self):
        rec = BranchRecord(pc=8, target=16, kind=BranchKind.COND_DIRECT,
                           taken=False, ilen=3)
        assert (rec.pc, rec.target, rec.ilen) == (8, 16, 3)
        assert not rec.taken


class TestBranchTrace:
    def test_from_records_roundtrip(self):
        records = [branch(0x100, 0x200), branch(0x200, 0x100, ilen=7)]
        trace = BranchTrace.from_records(records)
        assert len(trace) == 2
        assert list(trace) == records

    def test_empty(self):
        trace = BranchTrace.empty("e")
        assert len(trace) == 0
        assert trace.num_instructions == 0
        trace.validate()

    def test_num_instructions_sums_ilens(self):
        trace = BranchTrace.from_records(
            [branch(4, ilen=3), branch(8, ilen=5)])
        assert trace.num_instructions == 8

    def test_getitem_scalar_and_slice(self):
        trace = trace_of_pcs([4, 8, 12, 16])
        assert trace[1].pc == 8
        sliced = trace[1:3]
        assert isinstance(sliced, BranchTrace)
        assert [r.pc for r in sliced] == [8, 12]

    def test_equality(self):
        a = trace_of_pcs([4, 8])
        b = trace_of_pcs([4, 8])
        c = trace_of_pcs([4, 12])
        assert a == b
        assert a != c

    def test_taken_view_filters_not_taken(self):
        records = [
            branch(4, kind=BranchKind.COND_DIRECT, taken=True),
            branch(8, kind=BranchKind.COND_DIRECT, taken=False),
            branch(12),
        ]
        trace = BranchTrace.from_records(records)
        view = trace.taken_view()
        assert [r.pc for r in view] == [4, 12]

    def test_unique_pcs(self):
        trace = trace_of_pcs([4, 8, 4, 8, 12])
        assert list(trace.unique_pcs()) == [4, 8, 12]

    def test_unique_taken_pcs_excludes_never_taken(self):
        records = [
            branch(4, kind=BranchKind.COND_DIRECT, taken=False),
            branch(8),
        ]
        trace = BranchTrace.from_records(records)
        assert list(trace.unique_taken_pcs()) == [8]

    def test_concatenate(self):
        joined = BranchTrace.concatenate(
            [trace_of_pcs([4]), trace_of_pcs([8, 12])])
        assert [r.pc for r in joined] == [4, 8, 12]

    def test_concatenate_empty_list(self):
        assert len(BranchTrace.concatenate([])) == 0


class TestValidation:
    def test_length_mismatch_rejected(self):
        trace = trace_of_pcs([4, 8])
        trace.targets = trace.targets[:1]
        with pytest.raises(ValueError, match="length mismatch"):
            trace.validate()

    def test_zero_ilen_rejected(self):
        trace = trace_of_pcs([4])
        trace.ilens = np.array([0], dtype=np.int32)
        with pytest.raises(ValueError, match="ilen"):
            trace.validate()

    def test_negative_pc_rejected(self):
        trace = trace_of_pcs([4])
        trace.pcs = np.array([-4], dtype=np.int64)
        with pytest.raises(ValueError, match="non-negative"):
            trace.validate()

    def test_not_taken_unconditional_rejected(self):
        records = [branch(4, taken=False)]
        trace = BranchTrace.from_records(records)
        with pytest.raises(ValueError, match="unconditional"):
            trace.validate()

    def test_unknown_kind_rejected(self):
        trace = trace_of_pcs([4])
        trace.kinds = np.array([250], dtype=np.uint8)
        with pytest.raises(ValueError, match="kind"):
            trace.validate()

    def test_valid_trace_passes(self, small_trace):
        small_trace.validate()
