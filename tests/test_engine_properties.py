"""Determinism properties underpinning the artifact cache.

The whole content-addressed design is unsound unless trace generation is a
pure function of its (app, input_id, length, seed) arguments: a cached
trace must be the trace any other process would have generated.  These
tests pin that down with hypothesis (in-process) and a real process pool
(cross-process).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.trace.stats import TraceStats
from repro.workloads.datacenter import app_names, make_app_trace

#: A representative spread of the 13 applications (keeps the hypothesis
#: budget on distinct generator code paths rather than 13 similar specs).
SAMPLE_APPS = ("cassandra", "drupal", "python", "tomcat", "verilator")


@settings(max_examples=12, deadline=None)
@given(app=st.sampled_from(SAMPLE_APPS),
       input_id=st.integers(min_value=0, max_value=3),
       length=st.integers(min_value=500, max_value=3000))
def test_make_app_trace_is_seed_deterministic(app, input_id, length):
    """Two generations with identical arguments are record-identical."""
    first = make_app_trace(app, input_id=input_id, length=length)
    second = make_app_trace(app, input_id=input_id, length=length)
    assert first == second                      # all five arrays
    assert first.name == second.name
    assert TraceStats.from_trace(first) == TraceStats.from_trace(second)


@settings(max_examples=8, deadline=None)
@given(app=st.sampled_from(SAMPLE_APPS),
       length=st.integers(min_value=500, max_value=2000))
def test_distinct_inputs_share_layout_but_differ(app, length):
    """input_id must actually select a different dynamic stream (otherwise
    Fig. 13's cross-input study degenerates), while static pcs stay within
    one shared layout."""
    base = make_app_trace(app, input_id=0, length=length)
    other = make_app_trace(app, input_id=1, length=length)
    assert not (np.array_equal(base.pcs, other.pcs)
                and np.array_equal(base.taken, other.taken))


def _generate_in_worker(args):
    """Module-level worker: regenerate a trace in a separate process."""
    app, input_id, length = args
    trace = make_app_trace(app, input_id=input_id, length=length)
    return (trace.pcs, trace.targets, trace.kinds, trace.taken,
            trace.ilens, TraceStats.from_trace(trace))


def test_make_app_trace_deterministic_across_processes():
    """A worker process regenerates bit-identical records and stats —
    the exact guarantee the shared on-disk store relies on."""
    cases = [(app, input_id, 2000)
             for app in ("tomcat", "python") for input_id in (0, 2)]
    with ProcessPoolExecutor(max_workers=2) as pool:
        remote = list(pool.map(_generate_in_worker, cases))
    for case, (pcs, targets, kinds, taken, ilens, stats) in zip(cases,
                                                                remote):
        local = make_app_trace(case[0], input_id=case[1], length=case[2])
        assert np.array_equal(local.pcs, pcs)
        assert np.array_equal(local.targets, targets)
        assert np.array_equal(local.kinds, kinds)
        assert np.array_equal(local.taken, taken)
        assert np.array_equal(local.ilens, ilens)
        assert TraceStats.from_trace(local) == stats


def test_every_app_generates():
    """All 13 paper applications stay constructible (guards the sampled
    strategies above against spec renames)."""
    assert len(app_names()) == 13
    for app in app_names():
        assert len(make_app_trace(app, length=600)) == 600
