"""Tests for text-chart rendering, CSV export, and replication stats."""

import math

import pytest

from repro.harness.charts import (bar_chart, grouped_bar_chart,
                                  result_chart, sparkline)
from repro.harness.reporting import ExperimentResult
from repro.harness.stats import (ReplicationResult, replicate,
                                 speedup_replication)


def demo_result():
    return ExperimentResult("figX", "demo", ["app", "a", "b"],
                            [["x", 3.0, 1.0], ["y", 2.0, 4.0],
                             ["Avg", 2.5, 2.5]])


class TestCharts:
    def test_bar_chart_scales_to_peak(self):
        text = bar_chart(["one", "two"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_bar_chart_mismatched_inputs(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_bar_chart_empty(self):
        assert "empty" in bar_chart([], [])

    def test_bar_chart_all_zero(self):
        text = bar_chart(["a"], [0.0])
        assert "0.00" in text

    def test_grouped_chart_structure(self):
        text = grouped_bar_chart(["x", "y"], [[1, 2], [3, 4]],
                                 ["s1", "s2"])
        assert text.count("s1") == 2
        assert text.count("s2") == 2

    def test_grouped_chart_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["x"], [[1, 2]], ["s1"])
        with pytest.raises(ValueError):
            grouped_bar_chart(["x"], [[1]], ["s1", "s2"])

    def test_sparkline_profile(self):
        line = sparkline([0, 10])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert sparkline([]) == ""
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_result_chart_selects_columns(self):
        text = result_chart(demo_result(), columns=["a"],
                            skip_rows=("Avg",))
        assert "figX" in text
        assert "b" not in text.splitlines()[1]
        assert "Avg" not in text


class TestCSV:
    def test_roundtrip_values(self):
        csv_text = demo_result().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "app,a,b"
        assert lines[1] == "x,3.0,1.0"

    def test_save_csv(self, tmp_path):
        path = tmp_path / "r.csv"
        demo_result().save_csv(path)
        assert path.read_text().startswith("app,a,b")


class TestReplication:
    def test_mean_std(self):
        rep = ReplicationResult("m", (1.0, 2.0, 3.0))
        assert rep.mean == 2.0
        assert rep.std == pytest.approx(1.0)
        assert rep.n == 3

    def test_ci_contains_mean(self):
        rep = ReplicationResult("m", (1.0, 2.0, 3.0, 4.0))
        lo, hi = rep.ci95
        assert lo < rep.mean < hi
        # t(3 dof) = 3.182
        assert rep.ci95_halfwidth == pytest.approx(
            3.182 * rep.std / math.sqrt(4), rel=1e-3)

    def test_single_sample_degenerate(self):
        rep = ReplicationResult("m", (5.0,))
        assert rep.std == 0.0
        assert rep.ci95_halfwidth == 0.0

    def test_replicate_calls_per_seed(self):
        rep = replicate(lambda seed: float(seed * 2), seeds=(1, 2, 3))
        assert rep.values == (2.0, 4.0, 6.0)

    def test_replicate_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate(lambda s: 0.0, seeds=())

    def test_str(self):
        assert "n=2" in str(ReplicationResult("m", (1.0, 2.0)))


class TestSpeedupReplication:
    # A small BTB so 20K-record traces actually contest capacity.
    from repro.btb.config import BTBConfig
    CONFIG = BTBConfig(entries=1024, ways=4)

    def test_miss_reduction_across_seeds(self):
        result = speedup_replication(
            "tomcat", policies=("srrip", "thermometer", "opt"),
            seeds=(0, 1), length=20_000, config=self.CONFIG)
        by_policy = {row[0]: row for row in result.rows}
        assert by_policy["opt"][1] >= by_policy["thermometer"][1]
        assert all(row[4] == 2 for row in result.rows)      # n column

    def test_consistent_ordering_is_statistically_stable(self):
        """Thermometer > SRRIP must hold in mean across replications."""
        result = speedup_replication(
            "tomcat", policies=("srrip", "thermometer"),
            seeds=(0, 1, 2), length=20_000, config=self.CONFIG)
        by_policy = {row[0]: row[1] for row in result.rows}
        assert by_policy["thermometer"] > by_policy["srrip"]
