"""Unit tests for the BTB prefetchers (Confluence, Shotgun, Twig)."""

import pytest

from repro.btb.btb import BTB, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.lru import LRUPolicy
from repro.prefetch.base import NullPrefetcher
from repro.prefetch.confluence import ConfluencePrefetcher
from repro.prefetch.shotgun import (METADATA_TAX, ShotgunPrefetcher,
                                    shotgun_btb_config)
from repro.prefetch.twig import TwigPrefetcher

from tests.helpers import trace_of_pcs


def big_btb():
    return BTB(BTBConfig(entries=1024, ways=4), LRUPolicy())


class TestNullPrefetcher:
    def test_does_nothing(self):
        btb = big_btb()
        pf = NullPrefetcher()
        pf.on_access(0x40, 0x80, False, btb, 0)
        assert pf.issued == 0
        assert btb.occupancy == 0


class TestConfluence:
    def test_replays_recorded_miss_stream(self):
        btb = big_btb()
        pf = ConfluencePrefetcher(degree=4)
        stream = [(0x40, 1), (0x80, 2), (0xC0, 3), (0x100, 4)]
        # First pass records the miss stream.
        for i, (pc, tgt) in enumerate(stream):
            hit = btb.access(pc, tgt, i)
            pf.on_access(pc, tgt, hit, btb, i)
        # Evict everything by hand to force a recurring miss.
        fresh = big_btb()
        hit = fresh.access(0x40, 1, 10)
        pf.on_access(0x40, 1, hit, fresh, 10)
        # The followers of 0x40's previous miss are now prefetched.
        assert fresh.contains(0x80)
        assert fresh.contains(0xC0)
        assert pf.replays == 1

    def test_hits_do_not_record(self):
        btb = big_btb()
        pf = ConfluencePrefetcher()
        btb.access(0x40, 1, 0)
        pf.on_access(0x40, 1, True, btb, 0)       # a hit
        assert pf._last_position == {}

    def test_log_wraps(self):
        pf = ConfluencePrefetcher(log_entries=4, degree=1)
        btb = big_btb()
        for i, pc in enumerate((0x10, 0x20, 0x30, 0x40, 0x50, 0x60)):
            pf.on_access(pc, 0, False, btb, i)
        assert len(pf._log) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfluencePrefetcher(log_entries=1)
        with pytest.raises(ValueError):
            ConfluencePrefetcher(degree=0)


class TestShotgun:
    def test_metadata_tax_shrinks_btb(self):
        cfg = shotgun_btb_config(BTBConfig(entries=8192, ways=4))
        assert cfg.entries == int(8192 * (1 - METADATA_TAX))
        assert cfg.ways == 4

    def test_tax_validation(self):
        with pytest.raises(ValueError):
            shotgun_btb_config(BTBConfig(), metadata_tax=1.0)

    def test_region_footprint_prefetched(self):
        btb = big_btb()
        pf = ShotgunPrefetcher(region_bytes=256)
        # Two branches inside region of 0x1000.
        pf.on_access(0x1000, 0x1040, False, btb, 0)
        pf.on_access(0x1040, 0x1080, False, btb, 1)
        # A jump into that region prefetches its recorded branches.
        pf.on_access(0x5000, 0x1004, False, btb, 2)
        assert btb.contains(0x1000)
        assert btb.contains(0x1040)

    def test_footprint_capacity_bounded(self):
        pf = ShotgunPrefetcher(footprint_branches=2)
        btb = big_btb()
        for i in range(4):
            pf.on_access(0x1000 + i * 4, 0, False, btb, i)
        footprint = pf._footprints[pf._region(0x1000)]
        assert len(footprint) == 2


class TestTwig:
    def test_training_finds_trigger_pairs(self, small_trace):
        twig = TwigPrefetcher.train(small_trace,
                                    BTBConfig(entries=64, ways=4),
                                    lookahead=8, min_occurrences=2)
        assert twig.table_size > 0

    def test_injections_fire(self):
        twig = TwigPrefetcher({0x40: [(0x80, 0x90), (0xC0, 0xD0)]})
        btb = big_btb()
        twig.on_access(0x40, 0, True, btb, 0)
        assert twig.triggers_fired == 1
        assert btb.contains(0x80)
        assert btb.contains(0xC0)
        assert btb.lookup(0x80) == 0x90

    def test_non_trigger_is_free(self):
        twig = TwigPrefetcher({0x40: [(0x80, 0x90)]})
        btb = big_btb()
        twig.on_access(0x44, 0, True, btb, 0)
        assert twig.issued == 0

    def test_prefetching_reduces_misses_on_repeating_pattern(self):
        """End-to-end: a thrashing loop gets fewer misses with Twig."""
        config = BTBConfig(entries=8, ways=2)
        pattern = [i * 4 for i in range(1, 40)] * 6
        trace = trace_of_pcs(pattern)
        baseline = run_btb(trace, BTB(config, LRUPolicy()))
        twig = TwigPrefetcher.train(trace, config, lookahead=4,
                                    min_occurrences=2, max_per_trigger=2)
        btb = BTB(config, LRUPolicy())
        from repro.btb.btb import btb_access_stream
        pcs, targets = btb_access_stream(trace)
        for i in range(len(pcs)):
            pc = int(pcs[i])
            hit = btb.access(pc, int(targets[i]), i)
            twig.on_access(pc, int(targets[i]), hit, btb, i)
        assert btb.stats.misses < baseline.misses
