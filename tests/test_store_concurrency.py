"""Concurrent :class:`~repro.harness.engine.ArtifactStore` access.

The asyncio service interleaves submitters over one shared store (and
its tenant namespaces), so the store must tolerate threaded and
async-interleaved put/get/fetch without torn writes, double-computes,
or cross-namespace leaks.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.harness.engine import (ArtifactStore, QuotaExceededError,
                                  TENANTS_DIR)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestThreadedAccess:
    def test_interleaved_put_get_same_key(self, store):
        """Writers racing on one key never expose a torn value: every
        read sees a complete payload from *some* writer."""
        key = store.key("misses", app="tomcat", n=0)
        payloads = [{"writer": w, "blob": list(range(200))}
                    for w in range(8)]

        def write(payload):
            for _ in range(10):
                store.put("misses", key, payload)

        def read():
            seen = []
            for _ in range(40):
                value = store.get("misses", key)
                if value is not None:
                    seen.append(value)
            return seen

        with ThreadPoolExecutor(max_workers=12) as pool:
            writers = [pool.submit(write, p) for p in payloads]
            readers = [pool.submit(read) for _ in range(4)]
            for future in writers:
                future.result()
            for future in readers:
                for value in future.result():
                    assert value in payloads
        assert store.stats.corrupt == 0
        assert store.get("misses", key) in payloads

    def test_interleaved_distinct_keys(self, store):
        """Parallel writers on distinct keys all land, stats intact."""
        def work(i):
            key = store.key("trace", app="tomcat", n=i)
            store.put("trace", key, {"n": i})
            assert store.get("trace", key) == {"n": i}

        with ThreadPoolExecutor(max_workers=8) as pool:
            for future in [pool.submit(work, i) for i in range(32)]:
                future.result()
        assert store.stats.hits == 32
        assert store.stats.corrupt == 0

    def test_fetch_single_flight(self, store):
        """Concurrent fetches of one key run the compute exactly once."""
        key = store.key("profile", app="tomcat")
        computes = []
        gate = threading.Event()

        def compute():
            computes.append(threading.get_ident())
            gate.wait(1.0)  # hold the flight open so others pile up
            return {"value": 42}

        def fetch():
            return store.fetch("profile", key, compute)

        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [pool.submit(fetch) for _ in range(6)]
            while not computes:  # one thread entered the compute
                pass
            gate.set()
            values = [future.result() for future in futures]
        assert len(computes) == 1
        assert values == [{"value": 42}] * 6

    def test_fetch_distinct_keys_do_not_serialize(self, store):
        """Single-flight is per key: two different keys compute
        concurrently rather than one blocking the other."""
        first_inside = threading.Event()
        release_first = threading.Event()

        def slow():
            first_inside.set()
            assert release_first.wait(5.0)
            return "slow"

        def fast():
            return "fast"

        with ThreadPoolExecutor(max_workers=2) as pool:
            slow_future = pool.submit(
                store.fetch, "trace", store.key("trace", n=1), slow)
            assert first_inside.wait(5.0)
            # While the slow compute holds its flight, another key's
            # fetch must complete unobstructed.
            assert store.fetch("trace", store.key("trace", n=2),
                               fast) == "fast"
            release_first.set()
            assert slow_future.result() == "slow"


class TestNamespaceConcurrency:
    def test_same_namespace_object_across_threads(self, store):
        """namespace() hands every thread the same child store."""
        children = []

        def grab():
            children.append(store.namespace("alice"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(child is children[0] for child in children)

    def test_namespaces_isolate_artifacts_and_stats(self, store):
        """Interleaved tenants never see each other's artifacts, and
        each namespace's stats count only its own traffic."""
        def work(tenant, n):
            ns = store.namespace(tenant)
            for i in range(n):
                key = ns.key("misses", tenant=tenant, i=i)
                ns.put("misses", key, {tenant: i})
                assert ns.get("misses", key) == {tenant: i}

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(work, "alice", 10),
                       pool.submit(work, "bob", 7)]
            for future in futures:
                future.result()
        alice, bob = store.namespace("alice"), store.namespace("bob")
        assert alice.stats.hits == 10 and bob.stats.hits == 7
        assert store.stats.hits == 0  # parent saw none of the traffic
        # No artifact leaked across roots: bob's key (content-addressed
        # from fields alice never wrote) is absent from alice's store.
        assert (store.root / TENANTS_DIR / "alice").is_dir()
        key = bob.key("misses", tenant="bob", i=0)
        assert bob.get("misses", key) is not None
        assert alice.get("misses", key) is None

    def test_quota_rejections_are_per_namespace(self, store):
        big = list(range(5000))
        tight = store.namespace("tight", quota_bytes=1)
        roomy = store.namespace("roomy")
        with pytest.raises(QuotaExceededError):
            tight.put("misses", tight.key("misses", n=0), big)
        roomy.put("misses", roomy.key("misses", n=0), big)
        assert tight.stats.quota_rejected == 1
        assert roomy.stats.quota_rejected == 0
        assert tight.namespace_summary()["cache"]["quota_rejected"] == 1

    def test_quota_tracks_usage_across_writes(self, store):
        ns = store.namespace("metered", quota_bytes=20_000)
        written = 0
        with pytest.raises(QuotaExceededError):
            for i in range(1000):
                ns.put("misses", ns.key("misses", n=i),
                       list(range(500)))
                written += 1
        assert 0 < written < 1000
        assert ns.usage_bytes() <= 20_000
        # Rejection left nothing partial behind and later small writes
        # that fit still succeed... or fail cleanly if nothing fits.
        assert ns.stats.quota_rejected == 1

    def test_overwrite_accounting_matches_disk(self, store):
        """Re-putting a key replaces its file; the tracked usage must
        subtract the replaced size, not accumulate every write."""
        ns = store.namespace("meter2", quota_bytes=1_000_000)
        key = ns.key("misses", n=0)
        ns.put("misses", key, list(range(100)))
        ns.put("misses", key, list(range(2000)))
        ns.put("misses", key, [1])
        assert ns.usage_bytes() == ns._scan_usage()

    def test_concurrent_puts_never_overshoot_quota(self, store):
        """The quota check reserves the bytes under the lock, so racing
        writers cannot each pass the check and overshoot together."""
        ns = store.namespace("raced")
        ns.put("misses", ns.key("misses", n="probe"),
               list(range(400)))
        blob = ns.usage_bytes()
        quota = blob * 5
        ns.set_quota(quota)
        rejected = []

        def writer(i):
            try:
                ns.put("misses", ns.key("misses", n=i),
                       list(range(400)))
            except QuotaExceededError:
                rejected.append(i)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rejected
        assert ns._scan_usage() <= quota
        assert ns.usage_bytes() == ns._scan_usage()


class TestAsyncInterleaving:
    def test_async_submitters_share_one_store(self, store):
        """Async tasks interleaving put/get/fetch over threads (the
        service's execution shape) neither tear writes nor
        double-compute."""
        computes = []

        async def tenant_task(tenant, n):
            loop = asyncio.get_running_loop()
            ns = store.namespace(tenant)

            def body(i):
                key = ns.key("profile", app="tomcat", i=i % 3)

                def compute():
                    computes.append((tenant, i % 3))
                    return {tenant: i % 3}

                assert ns.fetch("profile", key,
                                compute) == {tenant: i % 3}

            await asyncio.gather(*(loop.run_in_executor(
                None, body, i) for i in range(n)))

        async def main():
            await asyncio.gather(tenant_task("alice", 12),
                                 tenant_task("bob", 12))

        asyncio.run(main())
        # Each (tenant, key mod 3) computed exactly once: single-flight
        # plus store hits absorb the other 18 calls.
        assert sorted(set(computes)) == sorted(computes)
        assert len(computes) == 6
