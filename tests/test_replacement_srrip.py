"""Unit tests for SRRIP/BRRIP."""

import pytest

from repro.btb.btb import BTB
from repro.btb.config import BTBConfig
from repro.btb.replacement.srrip import BRRIPPolicy, SRRIPPolicy


def one_set_btb(policy, ways=3):
    return BTB(BTBConfig(entries=ways, ways=ways), policy)


class TestSRRIP:
    def test_insertion_rrpv_is_long(self):
        policy = SRRIPPolicy(rrpv_bits=2)
        assert policy.rrpv_max == 3
        assert policy.rrpv_insert == 2

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            SRRIPPolicy(rrpv_bits=0)

    def test_hit_promotes_to_zero(self):
        policy = SRRIPPolicy()
        btb = one_set_btb(policy)
        btb.access(0x4, 0)
        btb.access(0x4, 0)
        way = [w for w in range(3) if btb.entry(0, w)
               and btb.entry(0, w).pc == 0x4][0]
        assert policy._rrpv[0][way] == 0

    def test_scan_resistance(self):
        """A reused branch survives a scan of one-shot branches — the
        behavior LRU lacks and the paper's cold bursts punish."""
        policy = SRRIPPolicy()
        btb = one_set_btb(policy)
        btb.access(0x4, 0)
        btb.access(0x4, 0)          # promote to RRPV 0
        for pc in (0x8, 0xC, 0x10, 0x14, 0x18):
            btb.access(pc, 0)       # scanning stream
        assert btb.contains(0x4)

    def test_victim_is_distant_entry(self):
        policy = SRRIPPolicy()
        btb = one_set_btb(policy)
        for pc in (0x4, 0x8, 0xC):
            btb.access(pc, 0)
        btb.access(0x4, 0)          # 0x4 at RRPV 0, others at 2
        btb.access(0x20, 0)         # aging makes 0x8 (way order) RRPV 3
        assert not btb.contains(0x8)
        assert btb.contains(0x4)

    def test_aging_terminates(self):
        """Victim search must terminate even when all RRPVs are 0."""
        policy = SRRIPPolicy()
        btb = one_set_btb(policy)
        for pc in (0x4, 0x8, 0xC):
            btb.access(pc, 0)
            btb.access(pc, 0)       # all promoted to 0
        btb.access(0x20, 0)         # forces 3 aging rounds then evicts
        assert btb.stats.evictions == 1


class TestBRRIP:
    def test_mostly_inserts_distant(self):
        policy = BRRIPPolicy(long_probability=0.0)
        policy.bind(1, 2)
        assert policy._insertion_rrpv(0) == policy.rrpv_max

    def test_occasionally_inserts_long(self):
        policy = BRRIPPolicy(long_probability=1.0)
        policy.bind(1, 2)
        assert policy._insertion_rrpv(0) == policy.rrpv_insert

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            BRRIPPolicy(long_probability=1.5)

    def test_deterministic_under_seed(self):
        a = BRRIPPolicy(seed=3)
        b = BRRIPPolicy(seed=3)
        a.bind(1, 2)
        b.bind(1, 2)
        assert [a._insertion_rrpv(0) for _ in range(32)] == \
            [b._insertion_rrpv(0) for _ in range(32)]
