"""Tests for the executable reproduction claims."""

import pytest

from repro.harness.reporting import ExperimentResult
from repro.harness.validate import (CLAIMS, Claim, render_report,
                                    validate_results)


def fig(name, columns, rows):
    return ExperimentResult(name, name, columns, rows)


def good_fig1():
    return fig("fig1", ["app", "srrip", "ghrp", "hawkeye", "opt"],
               [["a", 1.0, 0.1, 2.0, 10.0], ["Avg", 1.0, 0.1, 2.0, 10.0]])


def test_all_claims_have_unique_names():
    names = [claim.name for claim in CLAIMS]
    assert len(names) == len(set(names))
    assert len(CLAIMS) >= 12


def test_missing_figures_skip():
    outcomes = validate_results({})
    assert all(o.status == "SKIP" for o in outcomes)


def test_pass_path():
    outcomes = validate_results({"fig1": good_fig1()})
    by_name = {o.claim.name: o for o in outcomes}
    assert by_name["priors-gap"].status == "PASS"
    assert "OPT" in by_name["priors-gap"].detail


def test_fail_path():
    bad = fig("fig1", ["app", "srrip", "ghrp", "hawkeye", "opt"],
              [["Avg", 5.0, 0.0, 0.0, 5.5]])
    outcomes = validate_results({"fig1": bad})
    by_name = {o.claim.name: o for o in outcomes}
    assert by_name["priors-gap"].status == "FAIL"


def test_render_report_counts():
    text = render_report(validate_results({"fig1": good_fig1()}))
    assert "[PASS] priors-gap" in text
    assert "passed" in text and "skipped" in text


def test_custom_claim_list():
    claim = Claim("custom", "demo", ("fig1",),
                  lambda r: "ok")
    outcomes = validate_results({"fig1": good_fig1()}, claims=[claim])
    assert len(outcomes) == 1
    assert outcomes[0].status == "PASS"


@pytest.mark.slow
def test_claims_pass_on_scaled_real_run():
    """At a pressured small-BTB configuration even a quick run should
    satisfy the core claims."""
    from repro.btb.config import BTBConfig
    from repro.harness.experiments import fig1, fig11, fig12
    from repro.harness.runner import Harness, HarnessConfig
    harness = Harness(HarnessConfig(apps=("tomcat", "kafka"),
                                    length=40_000,
                                    btb_config=BTBConfig(entries=2048,
                                                         ways=4)))
    results = {"fig1": fig1(harness), "fig11": fig11(harness),
               "fig12": fig12(harness)}
    outcomes = validate_results(results)
    failures = [o for o in outcomes if o.status == "FAIL"]
    assert not failures, render_report(outcomes)
