"""Shared fixtures: small deterministic traces and BTB configurations."""

from __future__ import annotations

import os

import pytest

from repro.btb.config import BTBConfig
from repro.trace.record import BranchKind, BranchRecord, BranchTrace
from repro.workloads.datacenter import make_app_trace
from repro.workloads.generator import (LayoutParams, MixParams,
                                       SyntheticWorkload, WorkloadSpec)


from tests.helpers import branch, trace_of_pcs  # noqa: F401 (re-export)


@pytest.fixture(scope="session", autouse=True)
def _hermetic_artifact_cache(tmp_path_factory):
    """Point the persistent artifact store at a per-session tmpdir so tests
    never read from (or pollute) the user-level cache, and skip the
    engine's retry-backoff sleeps (REPRO_TEST_FAST) suite-wide."""
    root = tmp_path_factory.mktemp("artifact-store")
    previous = {name: os.environ.get(name)
                for name in ("REPRO_CACHE_DIR", "REPRO_TEST_FAST")}
    os.environ["REPRO_CACHE_DIR"] = str(root)
    os.environ["REPRO_TEST_FAST"] = "1"
    yield root
    for name, value in previous.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value


@pytest.fixture
def tiny_config():
    """A 4-set, 2-way BTB (8 entries) — easy to reason about by hand."""
    return BTBConfig(entries=8, ways=2)


@pytest.fixture(scope="session")
def small_workload_spec():
    return WorkloadSpec(
        name="unit-small",
        layout=LayoutParams(n_hot_loops=12, hot_loop_branches=(4, 8),
                            n_warm_funcs=10, n_cold_branches=200,
                            region_gap_bytes=8, loop_trips_max=12),
        mix=MixParams(active_loops=6, core_loops=2, phase_len=2000,
                      p_call=0.2, p_cold_burst=0.05,
                      cold_burst_len=(5, 20)),
        default_length=8000)


@pytest.fixture(scope="session")
def small_trace(small_workload_spec):
    """A small but structured synthetic trace (shared, treat as
    read-only)."""
    return SyntheticWorkload(small_workload_spec).generate()


@pytest.fixture(scope="session")
def small_app_trace():
    """A shortened real application model trace (shared, read-only)."""
    return make_app_trace("tomcat", length=30_000)
