"""Unit tests for trace statistics."""

from repro.trace.record import BranchKind, BranchTrace
from repro.trace.stats import TraceStats

from tests.helpers import branch


def make_trace():
    records = [
        branch(4, ilen=4),                                      # taken
        branch(8, kind=BranchKind.COND_DIRECT, taken=False, ilen=6),
        branch(8, kind=BranchKind.COND_DIRECT, taken=True, ilen=6),
        branch(16, kind=BranchKind.RETURN, ilen=4),
    ]
    return BranchTrace.from_records(records, name="stats")


def test_counts():
    stats = TraceStats.from_trace(make_trace())
    assert stats.num_branches == 4
    assert stats.num_taken == 3
    assert stats.num_instructions == 20
    assert stats.unique_branches == 3
    assert stats.unique_taken_branches == 3


def test_ratios():
    stats = TraceStats.from_trace(make_trace())
    assert stats.taken_ratio == 0.75
    assert stats.branch_mpki == 1000.0 * 4 / 20
    assert stats.taken_mpki == 1000.0 * 3 / 20
    assert stats.avg_block_length == 5.0


def test_kind_fraction():
    stats = TraceStats.from_trace(make_trace())
    assert stats.kind_fraction(BranchKind.COND_DIRECT) == 0.5
    assert stats.kind_fraction(BranchKind.RETURN) == 0.25
    assert stats.kind_fraction(BranchKind.CALL_DIRECT) == 0.0


def test_empty_trace():
    stats = TraceStats.from_trace(BranchTrace.empty())
    assert stats.taken_ratio == 0.0
    assert stats.branch_mpki == 0.0
    assert stats.avg_block_length == 0.0


def test_summary_mentions_name_and_counts():
    text = TraceStats.from_trace(make_trace()).summary()
    assert "stats" in text
    assert "COND_DIRECT" in text


def test_real_workload_sanity(small_app_trace):
    stats = TraceStats.from_trace(small_app_trace)
    # Data center apps: most branches taken, blocks a handful of
    # instructions long.
    assert 0.5 < stats.taken_ratio <= 1.0
    assert 3.0 < stats.avg_block_length < 12.0
    assert stats.unique_taken_branches > 1000
