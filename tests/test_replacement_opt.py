"""Unit tests for Belady-optimal replacement — including optimality proofs
against brute force on small cases."""

import itertools

import numpy as np
import pytest

from repro.btb.btb import BTB, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.lru import LRUPolicy
from repro.btb.replacement.opt import (NEVER, BeladyOptimalPolicy,
                                       compute_next_use,
                                       compute_occurrences)

from tests.helpers import trace_of_pcs


class TestNextUse:
    def test_simple_sequence(self):
        nxt = compute_next_use([1, 2, 1, 3, 2])
        assert list(nxt) == [2, 4, NEVER, NEVER, NEVER]

    def test_empty(self):
        assert len(compute_next_use([])) == 0

    def test_all_unique(self):
        assert (compute_next_use([1, 2, 3]) == NEVER).all()

    def test_occurrences(self):
        occ = compute_occurrences([5, 7, 5, 5])
        assert occ == {5: [0, 2, 3], 7: [1]}


def run_opt(pcs, config, bypass=True):
    policy = BeladyOptimalPolicy.from_stream(pcs, bypass_enabled=bypass)
    btb = BTB(config, policy)
    hits = sum(btb.access(pc * 4, 0, i) for i, pc in enumerate(pcs))
    return hits, btb


def brute_force_best_hits(pcs, ways):
    """Exhaustive search over all eviction/bypass decisions for a single
    fully-associative set of ``ways`` entries."""
    best = 0

    def recurse(i, resident, hits):
        nonlocal best
        if i == len(pcs):
            best = max(best, hits)
            return
        pc = pcs[i]
        if pc in resident:
            recurse(i + 1, resident, hits + 1)
            return
        if len(resident) < ways:
            recurse(i + 1, resident | {pc}, hits)
            return
        # bypass
        recurse(i + 1, resident, hits)
        for victim in resident:
            recurse(i + 1, (resident - {victim}) | {pc}, hits)

    recurse(0, frozenset(), 0)
    return best


@pytest.mark.parametrize("pcs", [
    [1, 2, 3, 1, 2, 3],
    [1, 2, 3, 4, 1, 2, 3, 4],
    [1, 1, 2, 3, 4, 2, 1, 3],
    [1, 2, 1, 3, 1, 4, 1, 5, 1],
])
def test_opt_matches_brute_force(pcs):
    """Belady-with-bypass achieves the brute-force optimum on a single
    2-way set."""
    config = BTBConfig(entries=2, ways=2)
    hits, _ = run_opt(pcs, config)
    assert hits == brute_force_best_hits(pcs, ways=2)


def test_opt_beats_lru_on_thrash():
    pcs = [1, 2, 3, 4] * 10
    config = BTBConfig(entries=3, ways=3)
    opt_hits, _ = run_opt(pcs, config)
    btb = BTB(config, LRUPolicy())
    lru_hits = sum(btb.access(pc * 4, 0, i) for i, pc in enumerate(pcs))
    assert lru_hits == 0
    # OPT pins three of the four branches.
    assert opt_hits == 3 * 9


def test_opt_never_worse_than_lru_on_trace(small_trace, tiny_config):
    from repro.btb.btb import btb_access_stream
    pcs, _ = btb_access_stream(small_trace)
    opt = run_btb(small_trace, BTB(
        tiny_config, BeladyOptimalPolicy.from_stream(pcs)))
    lru = run_btb(small_trace, BTB(tiny_config, LRUPolicy()))
    assert opt.hits >= lru.hits


def test_bypass_disabled_still_inserts():
    pcs = [1, 2, 3, 4, 1, 2]
    config = BTBConfig(entries=2, ways=2)
    _, btb = run_opt(pcs, config, bypass=False)
    assert btb.stats.bypasses == 0


def test_bypass_chooses_not_to_insert_dead_branch():
    # 3 and 4 never recur: with residents 1,2 reused soon, OPT bypasses.
    pcs = [1, 2, 3, 4, 1, 2, 1, 2]
    config = BTBConfig(entries=2, ways=2)
    hits, btb = run_opt(pcs, config)
    assert btb.stats.bypasses == 2
    assert hits == 4


def test_index_out_of_stream_rejected():
    policy = BeladyOptimalPolicy.from_stream([1, 2, 3])
    policy.bind(1, 2)
    with pytest.raises(IndexError, match="outside the stream"):
        policy.on_fill(0, 0, 4, index=10)


def test_prefetch_fill_uses_occurrence_lookup():
    """A prefetched pc (different from the stream pc at that index) must
    get its true next use, not the stream entry's."""
    pcs = [1, 2, 1, 2, 5]
    policy = BeladyOptimalPolicy.from_stream(pcs)
    policy.bind(1, 2)
    # At index 0, pc 5's next use is stream position 4.
    assert policy._next_use_of(5, 0) == 4
    # After its only occurrence it is never used again.
    assert policy._next_use_of(5, 4) == NEVER
    # Unknown pc: never used.
    assert policy._next_use_of(42, 0) == NEVER
