"""The asyncio simulation service: coalescing, streaming, tenancy.

The centerpiece is the differential test: a sweep submitted through the
service by two concurrent (coalesced) clients must be *byte-identical*
— artifact files, cache stats, manifest ``canonical_rows`` — to the
same jobs run through the CLI engine path, with the coalesced group
executing exactly one shared-stream sweep.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro.harness.engine import ExperimentEngine, SimJob
from repro.service.client import ServiceClient, request_once
from repro.service.protocol import (ProtocolError, job_from_dict,
                                    job_to_dict, jobs_from_request)
from repro.service.server import ServiceRunError, SimulationService
from repro.telemetry.manifest import canonical_rows, read_run_manifest
from repro.telemetry.metrics import MetricsRegistry, set_registry

LENGTH = 4000

#: Stats counters that must match between the CLI and service paths
#: (timings legitimately differ; these cannot).
STAT_FIELDS = ("hits", "misses", "corrupt", "digest_failures",
               "quarantined", "quota_rejected", "bytes_read",
               "bytes_written")


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry(enabled=True))
    try:
        yield
    finally:
        set_registry(previous)


def sweep_request(policies, tenant="alice"):
    return {"op": "sweep", "tenant": tenant, "apps": ["tomcat"],
            "policies": list(policies), "mode": "misses",
            "length": LENGTH}


async def _serve_and_request(service, *requests):
    """Start ``service``, fire ``requests`` concurrently, return each
    request's event list."""
    server = await service.start("127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    try:
        return await asyncio.gather(
            *(request_once(host, port, request)
              for request in requests))
    finally:
        server.close()
        await server.wait_closed()


def artifact_files(root: Path):
    """Relative path → bytes for every artifact under a store root."""
    files = {}
    for path in sorted(root.rglob("*.pkl")):
        rel = path.relative_to(root)
        if rel.parts[0] in ("runs", ".quarantine"):
            continue
        files[str(rel)] = path.read_bytes()
    return files


class TestDifferentialEquivalence:
    def test_coalesced_service_run_matches_cli_engine_path(self,
                                                           tmp_path):
        """Two concurrent clients, overlapping policy sweeps → one
        shared run whose artifacts, stats, and canonical manifest rows
        are byte-identical to the CLI engine running the merged jobs."""
        # --- service path: two coalescible clients ---------------------
        service = SimulationService(tmp_path / "svc", jobs=1,
                                    coalesce_window=0.25)
        events_a, events_b = asyncio.run(_serve_and_request(
            service,
            sweep_request(["lru", "srrip"]),
            sweep_request(["srrip", "opt"])))
        done_a, done_b = events_a[-1], events_b[-1]
        assert done_a["ok"] and done_b["ok"]
        # Coalesced: one engine run, the srrip overlap deduplicated.
        assert done_a["coalesced"] and done_b["coalesced"]
        assert done_a["run_id"] == done_b["run_id"]
        assert done_a["batch_jobs"] == 3
        assert done_a["requests"] == 2
        # Exactly one shared-stream multi-policy sweep for the group.
        assert done_a["sweeps"] == 1

        # --- CLI engine path: the same merged job list -----------------
        jobs = [SimJob(app="tomcat", policy=policy, length=LENGTH,
                       mode="misses")
                for policy in ("lru", "srrip", "opt")]
        engine = ExperimentEngine(cache_dir=tmp_path / "cli", jobs=1)
        engine.run(jobs)

        # --- byte-identical artifacts ----------------------------------
        service_store = tmp_path / "svc" / "tenants" / "alice"
        cli_files = artifact_files(tmp_path / "cli")
        svc_files = artifact_files(service_store)
        assert cli_files.keys() == svc_files.keys()
        assert set(p.split("/")[0] for p in cli_files) >= {"trace",
                                                           "misses"}
        for rel, blob in cli_files.items():
            assert svc_files[rel] == blob, f"artifact differs: {rel}"

        # --- identical manifest canonical rows -------------------------
        svc_manifest = read_run_manifest(Path(done_a["manifest"]))
        cli_manifest = read_run_manifest(engine.last_manifest)
        assert (canonical_rows(svc_manifest.rows)
                == canonical_rows(cli_manifest.rows))

        # --- identical cache stats -------------------------------------
        svc_cache = svc_manifest.summary["cache"]
        cli_cache = cli_manifest.summary["cache"]
        for field in STAT_FIELDS:
            assert svc_cache[field] == cli_cache[field], field
        assert svc_cache["stage_counts"] == cli_cache["stage_counts"]

        # --- both runs did one sweep over three jobs -------------------
        assert svc_manifest.summary["jobs"] == 3
        assert (cli_manifest.summary["telemetry"]["counters"]
                ["engine/multi_replay/sweeps"] == 1)

    def test_streamed_rows_match_manifest_rows(self, tmp_path):
        """The result events a client streams are exactly the manifest
        rows its jobs produced (same shape, same values)."""
        service = SimulationService(tmp_path / "svc", jobs=1,
                                    coalesce_window=0.0)
        (events,) = asyncio.run(_serve_and_request(
            service, sweep_request(["lru", "srrip"])))
        done = events[-1]
        rows = [e["row"] for e in events if e["event"] == "result"]
        assert len(rows) == 2
        manifest = read_run_manifest(Path(done["manifest"]))
        key = lambda r: (r["app"], r["policy"])
        assert (sorted(rows, key=key)
                == sorted(manifest.rows, key=key))


class TestCoalescing:
    def test_shared_results_fan_out_to_both_subscribers(self, tmp_path):
        """The overlapping job is computed once and both clients
        receive the identical row."""
        service = SimulationService(tmp_path / "svc", jobs=1,
                                    coalesce_window=0.25)
        events_a, events_b = asyncio.run(_serve_and_request(
            service,
            sweep_request(["lru", "srrip"]),
            sweep_request(["srrip", "opt"])))

        def rows(events):
            return {e["row"]["policy"]: e["row"] for e in events
                    if e["event"] == "result"}

        rows_a, rows_b = rows(events_a), rows(events_b)
        # Each client sees exactly its requested policies...
        assert set(rows_a) == {"lru", "srrip"}
        assert set(rows_b) == {"srrip", "opt"}
        # ...and the shared job's row is the same object's serialization.
        assert rows_a["srrip"] == rows_b["srrip"]

    def test_requests_after_the_window_start_a_new_batch(self, tmp_path):
        service = SimulationService(tmp_path / "svc", jobs=1,
                                    coalesce_window=0.0)

        async def scenario():
            server = await service.start("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                first = await request_once(host, port,
                                           sweep_request(["lru",
                                                          "srrip"]))
                second = await request_once(host, port,
                                            sweep_request(["lru",
                                                           "srrip"]))
                return first, second
            finally:
                server.close()
                await server.wait_closed()

        first, second = asyncio.run(scenario())
        assert first[-1]["run_id"] != second[-1]["run_id"]
        assert not second[-1]["coalesced"]
        # The second run is fully cache-served: no new sweep.
        assert second[-1]["sweeps"] == 0


class TestTenancy:
    def test_distinct_tenants_never_share_runs_or_artifacts(self,
                                                            tmp_path):
        service = SimulationService(tmp_path / "svc", jobs=1,
                                    coalesce_window=0.25)
        events_a, events_c = asyncio.run(_serve_and_request(
            service,
            sweep_request(["lru", "srrip"], tenant="alice"),
            sweep_request(["lru", "srrip"], tenant="carol")))
        done_a, done_c = events_a[-1], events_c[-1]
        assert done_a["ok"] and done_c["ok"]
        assert done_a["run_id"] != done_c["run_id"]
        assert not done_a["coalesced"] and not done_c["coalesced"]
        # Both tenants computed from cold: no cross-tenant cache hits.
        for done in (done_a, done_c):
            summary = read_run_manifest(Path(done["manifest"])).summary
            assert summary["cache"]["misses"] > 0
        alice_root = tmp_path / "svc" / "tenants" / "alice"
        carol_root = tmp_path / "svc" / "tenants" / "carol"
        assert artifact_files(alice_root).keys() \
            == artifact_files(carol_root).keys()
        assert (alice_root / "runs").is_dir()
        assert (carol_root / "runs").is_dir()

    def test_tenant_quota_surfaces_in_status(self, tmp_path):
        service = SimulationService(tmp_path / "svc", jobs=1,
                                    coalesce_window=0.0,
                                    quotas={"tiny": 1})

        async def scenario():
            server = await service.start("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                events = await request_once(
                    host, port,
                    sweep_request(["lru"], tenant="tiny"))
                status = await request_once(host, port,
                                            {"op": "status"})
                return events, status[-1]
            finally:
                server.close()
                await server.wait_closed()

        events, status = asyncio.run(scenario())
        # A 1-byte quota rejects every artifact write, but the store is
        # a cache: the jobs compute their values uncached, the run
        # succeeds, and the rejections are counted against the tenant.
        done = events[-1]
        assert done["event"] == "done"
        assert done["ok"] is True
        tiny = status["tenants"]["tiny"]
        assert tiny["quota_bytes"] == 1
        assert tiny["cache"]["quota_rejected"] > 0

    def test_invalid_tenant_name_is_rejected_up_front(self, tmp_path):
        """A tenant name the store would refuse ('a/b' escapes the
        tenants directory) gets an error event instead of an accepted
        event that never resolves — and the connection stays usable."""
        service = SimulationService(tmp_path / "svc", jobs=1,
                                    coalesce_window=0.0)

        async def scenario():
            server = await service.start("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                bad = await asyncio.wait_for(
                    request_once(host, port,
                                 sweep_request(["lru"], tenant="a/b")),
                    timeout=30)
                follow_up = await asyncio.wait_for(
                    request_once(host, port, {"op": "status"}),
                    timeout=30)
                return bad, follow_up
            finally:
                server.close()
                await server.wait_closed()

        bad, follow_up = asyncio.run(scenario())
        assert [event["event"] for event in bad] == ["error"]
        assert "invalid namespace" in bad[0]["error"]
        assert follow_up[-1]["event"] == "status"

    def test_direct_submit_with_bad_tenant_resolves(self, tmp_path):
        """Library callers bypass the wire validation; the batch must
        still resolve (raising ServiceRunError) instead of leaving the
        submitter awaiting a future that never completes."""
        service = SimulationService(tmp_path / "svc", jobs=1,
                                    coalesce_window=0.0)
        job = SimJob(app="tomcat", policy="lru", length=LENGTH,
                     mode="misses")

        async def scenario():
            with pytest.raises(ServiceRunError) as err:
                await asyncio.wait_for(
                    service.submit("-bad/tenant-", [job]), timeout=30)
            return err.value

        error = asyncio.run(scenario())
        assert error.summary["ok"] is False
        assert "invalid namespace" in error.summary["error"]


class TestProtocol:
    def test_job_round_trips_through_wire_dict(self):
        job = SimJob(app="tomcat", policy="srrip", length=LENGTH,
                     mode="misses")
        assert job_from_dict(job_to_dict(job)) == job

    def test_sweep_expansion_matches_manual_jobs(self):
        jobs = jobs_from_request(sweep_request(["lru", "srrip"]))
        assert jobs == [SimJob(app="tomcat", policy="lru",
                               length=LENGTH, mode="misses"),
                        SimJob(app="tomcat", policy="srrip",
                               length=LENGTH, mode="misses")]

    def test_profile_builds_hinted_jobs(self):
        jobs = jobs_from_request({"op": "profile", "apps": ["tomcat"],
                                  "length": LENGTH})
        assert len(jobs) == 1
        assert jobs[0].policy == "thermometer"
        assert jobs[0].mode == "misses"
        assert jobs[0].needs_hints

    def test_bad_requests_raise_protocol_errors(self):
        for request in ({"op": "simulate"},
                        {"op": "sweep", "apps": ["tomcat"]},
                        {"op": "warp"},
                        {"op": "simulate", "jobs": [{"policy": "lru"}]}):
            with pytest.raises(ProtocolError):
                jobs_from_request(request)

    def test_malformed_line_gets_error_event_and_connection_survives(
            self, tmp_path):
        service = SimulationService(tmp_path / "svc", jobs=1,
                                    coalesce_window=0.0)

        async def scenario():
            server = await service.start("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                writer.write(b"not json\n")
                await writer.drain()
                error = json.loads(await reader.readline())
                writer.write(json.dumps({"id": "s1",
                                         "op": "status"}).encode()
                             + b"\n")
                await writer.drain()
                status = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return error, status
            finally:
                server.close()
                await server.wait_closed()

        error, status = asyncio.run(scenario())
        assert error["event"] == "error"
        assert status["event"] == "status"

    def test_connection_level_error_does_not_end_a_request(self,
                                                           tmp_path):
        """An id-null error (some other line on the connection was
        malformed) must not terminate a pipelined request's wait — the
        client keeps collecting until *its* done event."""
        service = SimulationService(tmp_path / "svc", jobs=1,
                                    coalesce_window=0.0)

        async def scenario():
            server = await service.start("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                client = await ServiceClient.connect(host, port)
                # The server reports this line with id null, before it
                # sees the request that follows on the same connection.
                client._writer.write(b"not json\n")
                seen = []
                events = await asyncio.wait_for(
                    client.request(sweep_request(["lru"]),
                                   on_event=seen.append),
                    timeout=120)
                await client.close()
                return events, seen
            finally:
                server.close()
                await server.wait_closed()

        events, seen = asyncio.run(scenario())
        assert events[-1]["event"] == "done"
        assert all(event.get("id") is not None for event in events)
        assert any(event.get("id") is None
                   and event["event"] == "error" for event in seen)
