"""Unit tests for profile merging and drift monitoring."""

import pytest

from repro.btb.config import BTBConfig
from repro.core.merging import (merge_profiles, merge_temperatures,
                                profile_drift)
from repro.core.profiler import BranchProfile, OptProfile


def profile_of(name, branches, config=BTBConfig()):
    profile = OptProfile(trace_name=name, config=config)
    for pc, (taken, hits) in branches.items():
        profile.branches[pc] = BranchProfile(pc=pc, taken=taken, hits=hits)
    return profile


class TestMerge:
    def test_counts_add(self):
        a = profile_of("a", {0x4: (10, 5), 0x8: (4, 4)})
        b = profile_of("b", {0x4: (10, 9)})
        merged = merge_profiles([a, b])
        assert merged.branches[0x4].taken == 20
        assert merged.branches[0x4].hits == 14
        assert merged.branches[0x8].taken == 4
        assert merged.trace_name == "a+b"

    def test_weights_scale(self):
        a = profile_of("a", {0x4: (10, 10)})
        b = profile_of("b", {0x4: (10, 0)})
        merged = merge_profiles([a, b], weights=[3.0, 1.0])
        assert merged.branches[0x4].hit_to_taken == pytest.approx(75.0)

    def test_mixed_configs_rejected(self):
        a = profile_of("a", {0x4: (1, 1)})
        b = profile_of("b", {0x4: (1, 1)}, config=BTBConfig(entries=1024,
                                                            ways=4))
        with pytest.raises(ValueError, match="different BTB"):
            merge_profiles([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            merge_profiles([])

    def test_bad_weights_rejected(self):
        a = profile_of("a", {0x4: (1, 1)})
        with pytest.raises(ValueError):
            merge_profiles([a], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            merge_profiles([a], weights=[-1.0])

    def test_merge_temperatures(self):
        a = profile_of("a", {0x4: (10, 10)})
        b = profile_of("b", {0x4: (10, 0)})
        temps = merge_temperatures([a, b])
        assert temps.percentages[0x4] == pytest.approx(50.0)

    def test_merged_profile_improves_on_either_input(self, small_trace,
                                                     tiny_config):
        """A profile merged across inputs works on both (the deployment
        story: many profiling runs feed one hint set)."""
        from repro.core.profiler import profile_trace
        from repro.core.hints import ThresholdQuantizer
        from repro.core.temperature import TemperatureProfile
        from repro.btb.btb import BTB, run_btb
        from repro.btb.replacement.thermometer import ThermometerPolicy
        from repro.btb.replacement.lru import LRUPolicy

        half = len(small_trace) // 2
        first, second = small_trace[:half], small_trace[half:]
        merged = merge_profiles([
            profile_trace(first, tiny_config),
            profile_trace(second, tiny_config)])
        hints = ThresholdQuantizer().quantize(
            TemperatureProfile.from_opt_profile(merged),
            default_category=1)
        therm = run_btb(small_trace, BTB(
            tiny_config, ThermometerPolicy(hints, default_category=1)))
        lru = run_btb(small_trace, BTB(tiny_config, LRUPolicy()))
        assert therm.hits >= lru.hits


class TestDrift:
    def test_identical_profiles_no_drift(self):
        a = profile_of("a", {0x4: (10, 9), 0x8: (10, 1)})
        drift = profile_drift(a, a)
        assert drift["category_change_rate"] == 0.0
        assert drift["new_branch_rate"] == 0.0
        assert drift["mean_abs_delta"] == 0.0

    def test_category_flip_detected(self):
        old = profile_of("old", {0x4: (10, 9)})       # hot
        new = profile_of("new", {0x4: (10, 2)})       # cold
        drift = profile_drift(old, new)
        assert drift["category_change_rate"] == 1.0
        assert drift["mean_abs_delta"] == pytest.approx(70.0)

    def test_new_branches_counted(self):
        old = profile_of("old", {0x4: (10, 9)})
        new = profile_of("new", {0x4: (10, 9), 0x8: (5, 5)})
        drift = profile_drift(old, new)
        assert drift["new_branch_rate"] == pytest.approx(0.5)

    def test_disjoint_profiles(self):
        old = profile_of("old", {0x4: (1, 1)})
        new = profile_of("new", {0x8: (1, 1)})
        drift = profile_drift(old, new)
        assert drift["new_branch_rate"] == 1.0
        assert drift["category_change_rate"] == 0.0
