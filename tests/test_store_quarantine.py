"""Quarantine-then-rebuild for corrupt artifact-store entries.

The store must never serve bytes that fail their integrity digest — and
it must not destroy the evidence either: the corrupt file moves into
``.quarantine/`` (preserving its bytes for forensics) and the artifact
is recomputed fresh.
"""

from __future__ import annotations

import pytest

from repro.harness.engine import ArtifactStore, QUARANTINE_DIR
from repro.telemetry.metrics import MetricsRegistry, set_registry


@pytest.fixture
def registry():
    previous = set_registry(MetricsRegistry(enabled=True))
    yield
    set_registry(previous)


def _seed(store: ArtifactStore, tag: str = "q"):
    key = store.key("misc", tag=tag)
    store.put("misc", key, {"payload": tag})
    return key, store.path("misc", key)


class TestQuarantine:
    def test_corrupt_file_moves_to_quarantine_with_bytes_intact(
            self, tmp_path):
        store = ArtifactStore(tmp_path)
        key, path = _seed(store)
        damaged = b"not an artifact at all"
        path.write_bytes(damaged)

        assert store.get("misc", key) is None
        assert not path.exists()
        parked = store.quarantine_path("misc", key)
        assert parked.read_bytes() == damaged
        assert store.stats.quarantined == 1
        # Quarantined bytes are invisible to the addressable tree.
        assert store.get("misc", key) is None

    def test_digest_failure_quarantines_and_counts(self, tmp_path,
                                                   registry):
        from repro.telemetry.metrics import get_registry
        store = ArtifactStore(tmp_path)
        key, path = _seed(store)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))

        assert store.get("misc", key) is None
        assert store.stats.digest_failures == 1
        assert store.stats.quarantined == 1
        assert get_registry().counters["store/quarantined"] == 1

    def test_rebuild_after_quarantine_is_fresh(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key, path = _seed(store)
        path.write_bytes(b"junk")
        assert store.get("misc", key) is None
        value = store.fetch("misc", key, lambda: {"payload": "rebuilt"})
        assert value == {"payload": "rebuilt"}
        # The rebuilt artifact reads back clean; the quarantined one
        # still sits aside untouched.
        assert store.get("misc", key) == {"payload": "rebuilt"}
        assert store.quarantine_path("misc", key).exists()

    def test_second_corruption_overwrites_quarantine_slot(self, tmp_path):
        """Re-corruption of the same key must not fail on the occupied
        quarantine slot (os.replace semantics)."""
        store = ArtifactStore(tmp_path)
        key, path = _seed(store)
        path.write_bytes(b"first corruption")
        assert store.get("misc", key) is None
        store.put("misc", key, {"payload": "again"})
        store.path("misc", key).write_bytes(b"second corruption")
        assert store.get("misc", key) is None
        assert store.stats.quarantined == 2
        parked = store.quarantine_path("misc", key)
        assert parked.read_bytes() == b"second corruption"

    def test_quarantine_dir_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key, path = _seed(store, tag="layout")
        path.write_bytes(b"x")
        store.get("misc", key)
        parked = store.quarantine_path("misc", key)
        assert parked == (tmp_path / QUARANTINE_DIR / "misc"
                          / f"{key}.pkl")

    def test_quarantined_stat_merges(self):
        from repro.harness.reporting import CacheStats
        a, b = CacheStats(quarantined=2), CacheStats(quarantined=3)
        a.merge(b)
        assert a.quarantined == 5
        assert "quarantined" in a.render()
