"""Unit tests for the synthetic workload generator."""

import pytest

from repro.trace.record import BranchKind
from repro.workloads.generator import (LayoutParams, MixParams,
                                       SyntheticWorkload, WorkloadSpec)


def make_workload(**layout_kw):
    spec = WorkloadSpec(
        name="gen-test",
        layout=LayoutParams(n_hot_loops=8, hot_loop_branches=(4, 6),
                            n_warm_funcs=6, n_cold_branches=50,
                            **layout_kw),
        mix=MixParams(active_loops=4, core_loops=2, phase_len=500,
                      p_call=0.3, p_cold_burst=0.1, cold_burst_len=(3, 8)),
        default_length=3000)
    return SyntheticWorkload(spec)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        w = make_workload()
        assert w.generate(seed=7) == w.generate(seed=7)

    def test_different_seed_different_trace(self):
        w = make_workload()
        assert w.generate(seed=1) != w.generate(seed=2)

    def test_different_inputs_differ_dynamically(self):
        w = make_workload()
        assert w.generate(input_id=0) != w.generate(input_id=1)

    def test_layout_stable_across_instances(self):
        pcs_a = {b.pc for b in make_workload().static_branches}
        pcs_b = {b.pc for b in make_workload().static_branches}
        assert pcs_a == pcs_b


class TestTraceShape:
    def test_requested_length(self):
        trace = make_workload().generate(length=1234)
        assert len(trace) == 1234

    def test_zero_length(self):
        assert len(make_workload().generate(length=0)) == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            make_workload().generate(length=-1)

    def test_trace_validates(self):
        make_workload().generate().validate()

    def test_metadata_recorded(self):
        trace = make_workload().generate(input_id=2, seed=5)
        assert trace.metadata["workload"] == "gen-test"
        assert trace.metadata["input_id"] == 2
        assert trace.metadata["seed"] == 5

    def test_contains_expected_kinds(self):
        trace = make_workload().generate(length=5000)
        kinds = {BranchKind(int(k)) for k in trace.kinds}
        assert BranchKind.COND_DIRECT in kinds
        assert BranchKind.UNCOND_DIRECT in kinds    # cold chain
        assert BranchKind.CALL_DIRECT in kinds
        assert BranchKind.RETURN in kinds


class TestStaticStructure:
    def test_static_pcs_unique(self):
        branches = make_workload().static_branches
        pcs = [b.pc for b in branches]
        assert len(pcs) == len(set(pcs))

    def test_dynamic_pcs_only_from_layout(self):
        w = make_workload()
        static = {b.pc for b in w.static_branches}
        trace = w.generate(length=4000)
        assert set(int(p) for p in trace.pcs) <= static

    def test_cross_input_pcs_shared(self):
        """Different inputs exercise the same binary (Fig. 13 premise)."""
        w = make_workload()
        pcs0 = set(int(p) for p in w.generate(input_id=0).pcs)
        pcs1 = set(int(p) for p in w.generate(input_id=1).pcs)
        overlap = len(pcs0 & pcs1) / max(1, len(pcs0 | pcs1))
        assert overlap > 0.5

    def test_trip_counts_descend_with_rank(self):
        w = make_workload()
        loops = w._lay.loops
        assert loops[0].trips[1] >= loops[-1].trips[1]
        assert loops[-1].trips == (1, 2)

    def test_indirect_branches_have_fanout(self):
        w = make_workload(indirect_loop_fraction=1.0)
        indirect = [b for b in w.static_branches
                    if b.kind is BranchKind.UNCOND_INDIRECT]
        assert indirect
        assert all(len(b.targets) >= 2 for b in indirect)


class TestHotColdStructure:
    def test_hot_branches_dominate_dynamic_execution(self):
        """Zipf-weighted loop selection concentrates execution (Fig. 7
        premise)."""
        trace = make_workload().generate(length=6000)
        from collections import Counter
        counts = Counter(int(p) for p in trace.pcs)
        total = sum(counts.values())
        top_half = sum(c for _, c in
                       counts.most_common(len(counts) // 2))
        assert top_half / total > 0.75

    def test_scaled_spec(self):
        spec = make_workload().spec
        assert spec.scaled(0.5).default_length == spec.default_length // 2
        assert spec.scaled(0.0).default_length == 1


class TestDegenerateLayouts:
    def test_no_loops_emits_cold_chain(self):
        spec = WorkloadSpec(
            name="coldonly",
            layout=LayoutParams(n_hot_loops=0, n_warm_funcs=0,
                                n_cold_branches=30),
            mix=MixParams(active_loops=0, core_loops=0),
            default_length=100)
        trace = SyntheticWorkload(spec).generate()
        assert len(trace) == 100

    def test_nothing_to_emit_raises(self):
        spec = WorkloadSpec(
            name="empty",
            layout=LayoutParams(n_hot_loops=0, n_warm_funcs=0,
                                n_cold_branches=0),
            mix=MixParams(active_loops=0, core_loops=0),
            default_length=10)
        with pytest.raises(ValueError, match="nothing to emit"):
            SyntheticWorkload(spec).generate()
