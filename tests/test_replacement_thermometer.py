"""Unit tests for Thermometer's hardware policy (Algorithm 1)."""

import pytest

from repro.btb.btb import BTB
from repro.btb.config import BTBConfig
from repro.btb.replacement.thermometer import ThermometerPolicy

HOT, WARM, COLD = 2, 1, 0


def one_set_btb(hints, ways=3, **kwargs):
    policy = ThermometerPolicy(hints, **kwargs)
    return BTB(BTBConfig(entries=ways, ways=ways), policy), policy


class TestAlgorithm1:
    def test_evicts_coldest_resident(self):
        hints = {0x4: HOT, 0x8: COLD, 0xC: HOT, 0x10: HOT}
        btb, _ = one_set_btb(hints)
        for pc in (0x4, 0x8, 0xC):
            btb.access(pc, 0)
        btb.access(0x10, 0)
        assert not btb.contains(0x8)
        assert btb.contains(0x4) and btb.contains(0xC)

    def test_bypass_when_incoming_unique_coldest(self):
        hints = {0x4: HOT, 0x8: WARM, 0xC: HOT, 0x10: COLD}
        btb, _ = one_set_btb(hints)
        for pc in (0x4, 0x8, 0xC):
            btb.access(pc, 0)
        btb.access(0x10, 0)                   # cold vs hot/warm residents
        assert btb.stats.bypasses == 1
        assert not btb.contains(0x10)

    def test_cold_on_cold_inserts(self):
        """When a resident shares the coldest class, Algorithm 1 evicts the
        LRU member instead of bypassing."""
        hints = {0x4: COLD, 0x8: HOT, 0xC: HOT, 0x10: COLD}
        btb, _ = one_set_btb(hints)
        for pc in (0x4, 0x8, 0xC):
            btb.access(pc, 0)
        btb.access(0x10, 0)
        assert btb.contains(0x10)
        assert not btb.contains(0x4)
        assert btb.stats.bypasses == 0

    def test_lru_tiebreak_within_class(self):
        hints = {pc: HOT for pc in (0x4, 0x8, 0xC, 0x10)}
        btb, _ = one_set_btb(hints)
        for pc in (0x4, 0x8, 0xC):
            btb.access(pc, 0)
        btb.access(0x4, 0)                    # refresh
        btb.access(0x10, 0)
        assert not btb.contains(0x8)          # LRU within the tie
        assert btb.contains(0x4)

    def test_static_tiebreak_ignores_recency(self):
        hints = {pc: HOT for pc in (0x4, 0x8, 0xC, 0x10)}
        btb, _ = one_set_btb(hints, tiebreak="static")
        for pc in (0x4, 0x8, 0xC):
            btb.access(pc, 0)
        btb.access(0x4, 0)
        btb.access(0x10, 0)
        assert not btb.contains(0x4)          # way 0 regardless of recency

    def test_bypass_disabled_evicts_lru_anywhere(self):
        hints = {0x4: HOT, 0x8: WARM, 0xC: HOT, 0x10: COLD}
        btb, _ = one_set_btb(hints, bypass_enabled=False)
        for pc in (0x4, 0x8, 0xC):
            btb.access(pc, 0)
        btb.access(0x10, 0)
        assert btb.contains(0x10)
        assert btb.stats.bypasses == 0


class TestHintsAndDefaults:
    def test_default_category_for_unprofiled(self):
        policy = ThermometerPolicy({}, default_category=WARM)
        assert policy.temperature_of(0xDEAD) == WARM

    def test_invalid_tiebreak_rejected(self):
        with pytest.raises(ValueError, match="tiebreak"):
            ThermometerPolicy({}, tiebreak="fifo")

    def test_hint_map_consulted(self):
        policy = ThermometerPolicy({0x4: HOT}, default_category=COLD)
        assert policy.temperature_of(0x4) == HOT
        assert policy.temperature_of(0x8) == COLD


class TestCoverage:
    def test_uniform_temperatures_are_uncovered(self):
        hints = {pc: HOT for pc in (0x4, 0x8, 0xC, 0x10)}
        btb, policy = one_set_btb(hints)
        for pc in (0x4, 0x8, 0xC, 0x10):
            btb.access(pc, 0)
        assert policy.covered_decisions == 0
        assert policy.uncovered_decisions == 1
        assert policy.coverage == 0.0

    def test_mixed_temperatures_are_covered(self):
        hints = {0x4: HOT, 0x8: COLD, 0xC: HOT, 0x10: HOT}
        btb, policy = one_set_btb(hints)
        for pc in (0x4, 0x8, 0xC, 0x10):
            btb.access(pc, 0)
        assert policy.covered_decisions == 1
        assert policy.coverage == 1.0

    def test_coverage_empty(self):
        policy = ThermometerPolicy({})
        assert policy.coverage == 0.0
