"""Stage-decoupled fast simulate: differential + dispatch tests.

The fast path in :mod:`repro.frontend.kernels` must be *invisible*:
whenever ``simulate()`` dispatches to it, every ``SimResult`` field
(cycles and stall breakdowns included — same float-addition order),
every event count, the BTB stats, and the end state of every frontend
component must be bit-identical to the reference ``_replay_region``
loop.  Anything the passes cannot reproduce exactly — prefetchers,
observer-carrying or subclassed BTBs, subclassed or monkeypatched
components — must force the reference loop.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.btb.btb import BTB
from repro.btb.compressed import PartialTagBTB
from repro.btb.config import BTBConfig
from repro.btb.observer import EventRecorder
from repro.frontend import kernels as simk
from repro.frontend.branch_predictor import (AlwaysTakenPredictor,
                                             BimodalPredictor,
                                             GSharePredictor,
                                             PerceptronPredictor,
                                             PerfectPredictor,
                                             TageLitePredictor)
from repro.frontend.simulator import FrontendSimulator
from repro.prefetch import NullPrefetcher
from repro.trace.record import BranchKind, BranchRecord, BranchTrace
from repro.trace.stream import clear_stream_cache
from repro.workloads import make_app_trace
from repro.workloads.datacenter import app_names

#: Small geometry so short traces still churn through evictions.
CONFIG = BTBConfig(entries=128, ways=4)
LENGTH = 3000


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_stream_cache()
    yield
    clear_stream_cache()


# ----------------------------------------------------------------------
# Differential matrix: 13 apps x 6 configurations
# ----------------------------------------------------------------------

#: name -> (simulator kwargs factory, fast path expected?)
VARIANTS = {
    "default": (lambda: dict(btb=BTB(CONFIG)), True),
    "perfect_btb": (lambda: dict(btb=None, perfect_btb=True), True),
    "perfect_icache": (lambda: dict(btb=BTB(CONFIG), perfect_icache=True),
                       True),
    "perfect_bp": (lambda: dict(btb=BTB(CONFIG), perfect_bp=True), True),
    "compressed": (lambda: dict(btb=PartialTagBTB(CONFIG)), False),
    "prefetcher": (lambda: dict(btb=BTB(CONFIG),
                                prefetcher=NullPrefetcher()), False),
}


def _simulate(trace, kwargs, fast: bool, expect_fast: bool = True):
    sim = FrontendSimulator(**kwargs())
    prev = simk.set_fast_sim_enabled(fast)
    try:
        if fast:
            reason = simk.fast_sim_supported(sim)
            if expect_fast:
                assert reason is None, reason
            else:
                assert reason is not None
        result = sim.simulate(trace, warmup_fraction=0.2)
    finally:
        simk.set_fast_sim_enabled(prev)
    return result, sim


def _component_state(sim: FrontendSimulator) -> dict:
    state = {
        "ras": (list(sim.ras._stack), sim.ras.pushes, sim.ras.pops,
                sim.ras.mispredictions, sim.ras.overflows),
        "ibtb": (dict(sim.ibtb._table), sim.ibtb._history,
                 sim.ibtb.hits, sim.ibtb.misses),
        "fdip": (sim.fdip.credit, sim.fdip.hidden_latency,
                 sim.fdip.exposed_latency, sim.fdip.resets),
        "icache": [(c.accesses, c.misses, [list(s) for s in c._sets])
                   for c in (sim.icache.l1i, sim.icache.l2,
                             sim.icache.llc)],
        "l2_warm": sim._l2_misses_at_warmup,
    }
    if sim.btb is not None:
        state["btb"] = (sim.btb._tags.tolist(), sim.btb._targets.tolist(),
                        dataclasses.asdict(sim.btb.stats))
    return state


def _predictor_state(predictor) -> dict:
    """Structural snapshot of a predictor (nested objects flattened so
    equality is by value, with TAGE's provider mapped to a table index)."""

    def norm(value):
        if isinstance(value, list):
            return [norm(v) for v in value]
        if hasattr(value, "__dict__"):
            return {k: norm(v) for k, v in vars(value).items()}
        return value

    state = {k: norm(v) for k, v in vars(predictor).items()}
    provider = getattr(predictor, "_provider", None)
    if provider is not None:
        state["_provider"] = predictor._tables.index(provider)
    return state


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("app", app_names())
def test_fast_simulate_bit_identical(app, variant):
    kwargs, expect_fast = VARIANTS[variant]
    trace = make_app_trace(app, length=LENGTH)
    fast_result, fast_sim = _simulate(trace, kwargs, fast=True,
                                      expect_fast=expect_fast)
    clear_stream_cache()
    ref_result, ref_sim = _simulate(trace, kwargs, fast=False)
    assert dataclasses.asdict(fast_result) == dataclasses.asdict(ref_result)
    assert _component_state(fast_sim) == _component_state(ref_sim)


@pytest.mark.parametrize("predictor_cls",
                         [AlwaysTakenPredictor, BimodalPredictor,
                          GSharePredictor, PerceptronPredictor,
                          PerfectPredictor, TageLitePredictor])
def test_fast_simulate_matches_per_predictor(predictor_cls):
    trace = make_app_trace("kafka", length=LENGTH)
    results = {}
    for fast in (True, False):
        clear_stream_cache()
        sim = FrontendSimulator(btb=BTB(CONFIG),
                                predictor=predictor_cls())
        prev = simk.set_fast_sim_enabled(fast)
        try:
            results[fast] = (dataclasses.asdict(sim.simulate(trace)),
                             _component_state(sim),
                             _predictor_state(sim.predictor))
        finally:
            simk.set_fast_sim_enabled(prev)
    assert results[True] == results[False]


def test_fast_simulate_repeated_runs_match():
    """A second simulate() on the same simulator sees a warmed BTB, which
    routes the BTB pass through the scalar loop — still bit-identical."""
    trace = make_app_trace("tomcat", length=LENGTH)
    results = {}
    for fast in (True, False):
        clear_stream_cache()
        sim = FrontendSimulator(btb=BTB(CONFIG))
        prev = simk.set_fast_sim_enabled(fast)
        try:
            sim.simulate(trace)
            results[fast] = (dataclasses.asdict(sim.simulate(trace)),
                             _component_state(sim))
        finally:
            simk.set_fast_sim_enabled(prev)
    assert results[True] == results[False]


# ----------------------------------------------------------------------
# Dispatch: every fallback condition must be detected
# ----------------------------------------------------------------------

def _stock_sim(**kwargs) -> FrontendSimulator:
    return FrontendSimulator(btb=BTB(CONFIG), **kwargs)


def test_dispatch_default_supported():
    assert simk.fast_sim_supported(_stock_sim()) is None


def test_dispatch_kill_switch():
    prev = simk.set_fast_sim_enabled(False)
    try:
        assert simk.fast_sim_supported(_stock_sim()) is not None
    finally:
        simk.set_fast_sim_enabled(prev)


def test_dispatch_env_kill_switch(monkeypatch):
    monkeypatch.setenv("REPRO_FAST_SIM", "0")
    assert simk._env_enabled() is False
    monkeypatch.setenv("REPRO_FAST_SIM", "1")
    assert simk._env_enabled() is True


def test_dispatch_rejects_prefetcher():
    sim = _stock_sim(prefetcher=NullPrefetcher())
    assert "prefetcher" in simk.fast_sim_supported(sim)


def test_dispatch_rejects_subclassed_btb():
    sim = FrontendSimulator(btb=PartialTagBTB(CONFIG))
    assert "BTB" in simk.fast_sim_supported(sim)


def test_dispatch_rejects_btb_observers():
    sim = _stock_sim()
    sim.btb.add_observer(EventRecorder())
    assert "observer" in simk.fast_sim_supported(sim)


def test_dispatch_rejects_instance_false_hit_attr():
    sim = _stock_sim()
    sim.btb.last_hit_was_false = False
    assert simk.fast_sim_supported(sim) is not None


def test_dispatch_rejects_subclassed_simulator():
    class Custom(FrontendSimulator):
        pass

    assert simk.fast_sim_supported(Custom(btb=BTB(CONFIG))) is not None


@pytest.mark.parametrize("hook", simk._SIM_HOOKS)
def test_dispatch_rejects_patched_simulator_hooks(hook):
    sim = _stock_sim()
    setattr(sim, hook, lambda *a, **k: None)
    assert "monkeypatched" in simk.fast_sim_supported(sim)


@pytest.mark.parametrize("component,hooks", [
    ("fdip", simk._FDIP_HOOKS),
    ("ras", simk._RAS_HOOKS),
    ("ibtb", simk._IBTB_HOOKS),
    ("icache", simk._ICACHE_HOOKS),
    ("predictor", simk._PREDICTOR_HOOKS),
])
def test_dispatch_rejects_patched_component_hooks(component, hooks):
    for hook in hooks:
        sim = _stock_sim()
        setattr(getattr(sim, component), hook, lambda *a, **k: None)
        assert simk.fast_sim_supported(sim) is not None, hook


def test_dispatch_rejects_patched_cache_level():
    sim = _stock_sim()
    sim.icache.l2.access_line = lambda *a, **k: 0
    assert simk.fast_sim_supported(sim) is not None


def test_dispatch_rejects_unknown_predictor():
    class Oracle(PerfectPredictor):
        pass

    sim = _stock_sim(predictor=Oracle())
    assert "predictor" in simk.fast_sim_supported(sim)


def test_fallback_still_simulates():
    """A rejected configuration must flow through the reference loop and
    produce a populated result, not an error."""
    trace = make_app_trace("tomcat", length=500)
    sim = FrontendSimulator(btb=PartialTagBTB(CONFIG))
    result = sim.simulate(trace)
    assert result.cycles > 0.0
    assert result.instructions > 0


def test_try_fast_simulate_returns_none_when_rejected():
    trace = make_app_trace("tomcat", length=500)
    sim = _stock_sim(prefetcher=NullPrefetcher())
    assert simk.try_fast_simulate(sim, trace, 0.2, None) is None


# ----------------------------------------------------------------------
# Property: randomized traces over every branch kind
# ----------------------------------------------------------------------

_KINDS = [BranchKind.COND_DIRECT, BranchKind.UNCOND_DIRECT,
          BranchKind.CALL_DIRECT, BranchKind.RETURN,
          BranchKind.UNCOND_INDIRECT, BranchKind.CALL_INDIRECT]

records = st.lists(
    st.tuples(st.integers(0, 31),          # pc slot
              st.integers(0, 15),          # target slot
              st.integers(0, len(_KINDS) - 1),
              st.booleans()),              # taken
    min_size=0, max_size=160)


def _trace_of(raw) -> BranchTrace:
    recs = [BranchRecord(pc=0x1000 + pc * 4, target=0x8000 + t * 4,
                         kind=_KINDS[k],
                         # unconditional branches are architecturally taken
                         taken=taken or _KINDS[k] != BranchKind.COND_DIRECT,
                         ilen=4 + (pc % 3) * 4)
            for pc, t, k, taken in raw]
    return BranchTrace.from_records(recs, name="prop")


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(raw=records, warm=st.sampled_from([0.0, 0.2, 0.5]))
def test_property_fast_matches_reference(raw, warm):
    trace = _trace_of(raw)
    results = {}
    for fast in (True, False):
        clear_stream_cache()
        sim = FrontendSimulator(btb=BTB(BTBConfig(entries=8, ways=2)))
        prev = simk.set_fast_sim_enabled(fast)
        try:
            results[fast] = (
                dataclasses.asdict(sim.simulate(trace,
                                                warmup_fraction=warm)),
                _component_state(sim))
        finally:
            simk.set_fast_sim_enabled(prev)
    assert results[True] == results[False]
