"""Unit tests for trace persistence (binary and text formats)."""

import gzip

import pytest

from repro.trace.formats import (FORMAT_VERSION, MAGIC, TraceFormatError,
                                 read_trace, write_trace)
from repro.trace.record import BranchKind, BranchRecord, BranchTrace

from tests.helpers import branch, trace_of_pcs


def mixed_trace():
    records = [
        branch(0x1000, 0x2000, BranchKind.CALL_DIRECT),
        branch(0x2004, 0x3000, BranchKind.COND_DIRECT, taken=False, ilen=2),
        branch(0x2010, 0x1004, BranchKind.RETURN, ilen=9),
        branch(0x1008, 0x4000, BranchKind.UNCOND_INDIRECT),
    ]
    trace = BranchTrace.from_records(records, name="mixed trace")
    trace.metadata["workload"] = "unit"
    return trace


@pytest.mark.parametrize("suffix", [".btrc", ".btrc.gz", ".btxt",
                                    ".btxt.gz"])
def test_roundtrip_all_formats(tmp_path, suffix):
    trace = mixed_trace()
    path = tmp_path / f"trace{suffix}"
    write_trace(trace, path)
    loaded = read_trace(path)
    assert loaded == trace
    assert loaded.name == trace.name


def test_binary_preserves_metadata(tmp_path):
    trace = mixed_trace()
    path = tmp_path / "t.btrc"
    write_trace(trace, path)
    assert read_trace(path).metadata == {"workload": "unit"}


def test_empty_trace_roundtrip(tmp_path):
    path = tmp_path / "empty.btrc"
    write_trace(BranchTrace.empty("none"), path)
    assert len(read_trace(path)) == 0


def test_gzip_actually_compresses(tmp_path):
    trace = trace_of_pcs(list(range(4, 40_004, 4)))
    plain = tmp_path / "t.btrc"
    compressed = tmp_path / "t.btrc.gz"
    write_trace(trace, plain)
    write_trace(trace, compressed)
    assert compressed.stat().st_size < plain.stat().st_size
    assert read_trace(compressed) == trace


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bad.btrc"
    path.write_bytes(b"NOPE" + b"\x00" * 32)
    with pytest.raises(TraceFormatError, match="magic"):
        read_trace(path)


def test_wrong_version_rejected(tmp_path):
    import struct
    path = tmp_path / "v.btrc"
    header = struct.pack("<4sHIQ", MAGIC, FORMAT_VERSION + 1, 0, 0)
    path.write_bytes(header + b"\x00" * 16)
    with pytest.raises(TraceFormatError, match="version"):
        read_trace(path)


def test_truncated_file_rejected(tmp_path):
    trace = trace_of_pcs([4, 8, 12])
    path = tmp_path / "t.btrc"
    write_trace(trace, path)
    data = path.read_bytes()
    path.write_bytes(data[:len(data) // 2])
    with pytest.raises(TraceFormatError, match="truncated"):
        read_trace(path)


def test_text_malformed_line_reports_lineno(tmp_path):
    path = tmp_path / "t.btxt"
    path.write_text("# trace x\n0x4 0x8 UNCOND_DIRECT 1 4\nnot a record\n")
    with pytest.raises(TraceFormatError, match=":3"):
        read_trace(path)


def test_text_bad_kind_rejected(tmp_path):
    path = tmp_path / "t.btxt"
    path.write_text("0x4 0x8 NO_SUCH_KIND 1 4\n")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_text_preserves_name(tmp_path):
    trace = trace_of_pcs([4], name="named-trace")
    path = tmp_path / "t.btxt"
    write_trace(trace, path)
    assert read_trace(path).name == "named-trace"


def test_synthetic_trace_roundtrip(tmp_path, small_trace):
    path = tmp_path / "small.btrc.gz"
    write_trace(small_trace, path)
    assert read_trace(path) == small_trace
