"""Table 1 configuration tests."""

import pytest

from repro.btb.config import DEFAULT_BTB_CONFIG
from repro.frontend.params import DEFAULT_FRONTEND_PARAMS, FrontendParams


def test_table1_core_parameters():
    p = DEFAULT_FRONTEND_PARAMS
    assert p.width == 6
    assert p.ftq_entries == 24
    assert p.ftq_runahead_instructions == 192
    assert p.decode_queue == 60
    assert p.rob_entries == 352
    assert p.reservation_stations == 128
    assert p.ras_entries == 32


def test_table1_btb_parameters():
    assert DEFAULT_BTB_CONFIG.entries == 8192
    assert DEFAULT_BTB_CONFIG.ways == 4


def test_table1_cache_parameters():
    p = DEFAULT_FRONTEND_PARAMS
    assert p.line_bytes == 64
    assert p.l1i_bytes == 32 * 1024 and p.l1i_ways == 8
    assert p.l2_bytes == 512 * 1024 and p.l2_ways == 8
    assert p.llc_bytes == 2 * 1024 * 1024 and p.llc_ways == 16


def test_runahead_capacity_scales_with_ftq():
    p = DEFAULT_FRONTEND_PARAMS
    doubled = p.with_ftq_entries(48)
    assert doubled.ftq_runahead_instructions == 384
    assert doubled.ftq_runahead_cycles == pytest.approx(
        2 * p.ftq_runahead_cycles)


def test_latency_ordering():
    p = DEFAULT_FRONTEND_PARAMS
    assert 0 < p.l2_latency < p.llc_latency < p.memory_latency


def test_validation():
    with pytest.raises(ValueError):
        FrontendParams(width=0)
    with pytest.raises(ValueError):
        FrontendParams(ftq_entries=0)
    with pytest.raises(ValueError):
        FrontendParams(l1i_bytes=0)


def test_frozen():
    with pytest.raises(Exception):
        DEFAULT_FRONTEND_PARAMS.width = 8  # type: ignore[misc]
