"""Unit tests for the policy registry and the FIFO/Random baselines."""

import pytest

from repro.btb.btb import BTB
from repro.btb.config import BTBConfig
from repro.btb.replacement.fifo import FIFOPolicy, RandomPolicy
from repro.btb.replacement.registry import (make_policy, policy_names,
                                            register_policy)


class TestRegistry:
    def test_all_names_constructible(self):
        from repro.btb.replacement.registry import HINTED_POLICY_FACTORIES
        for name in policy_names():
            if name == "opt":
                policy = make_policy(name, stream=[4, 8])
            elif name in HINTED_POLICY_FACTORIES:
                policy = make_policy(name, hints={})
            else:
                policy = make_policy(name)
            assert policy.name in (name, "thermometer")

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="srrip"):
            make_policy("nru")

    def test_opt_requires_stream(self):
        with pytest.raises(ValueError, match="stream"):
            make_policy("opt")

    def test_thermometer_requires_hints(self):
        with pytest.raises(ValueError, match="hints"):
            make_policy("thermometer")

    def test_kwargs_forwarded(self):
        policy = make_policy("srrip", rrpv_bits=3)
        assert policy.rrpv_max == 7

    def test_register_custom_policy(self):
        calls = []

        def factory():
            calls.append(1)
            return FIFOPolicy()

        register_policy("unit-custom", factory)
        try:
            policy = make_policy("unit-custom")
            assert isinstance(policy, FIFOPolicy)
            assert calls == [1]
        finally:
            from repro.btb.replacement import registry
            registry._SIMPLE_POLICIES.pop("unit-custom")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("lru", FIFOPolicy)


class TestFIFO:
    def test_evicts_oldest_fill_despite_hits(self):
        btb = BTB(BTBConfig(entries=2, ways=2), FIFOPolicy())
        btb.access(0x4, 0)
        btb.access(0x8, 0)
        btb.access(0x4, 0)      # hit must NOT refresh FIFO order
        btb.access(0xC, 0)
        assert not btb.contains(0x4)
        assert btb.contains(0x8)


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(seed=11)
        b = RandomPolicy(seed=11)
        a.bind(1, 4)
        b.bind(1, 4)
        picks_a = [a.choose_victim(0, [], 0, 0) for _ in range(20)]
        picks_b = [b.choose_victim(0, [], 0, 0) for _ in range(20)]
        assert picks_a == picks_b
        assert set(picks_a) <= {0, 1, 2, 3}

    def test_reset_reseeds(self):
        policy = RandomPolicy(seed=5)
        policy.bind(1, 4)
        first = [policy.choose_victim(0, [], 0, 0) for _ in range(10)]
        policy.reset()
        assert [policy.choose_victim(0, [], 0, 0)
                for _ in range(10)] == first
