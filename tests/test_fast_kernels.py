"""Set-partitioned fast-path kernels: dispatch, equivalence, and the
shared-memory stream transfer.

The kernels in :mod:`repro.btb.kernels` must be *invisible*: whenever
``replay_stream`` takes the fast path, the resulting stats, BTB storage,
per-set directory, and policy-internal state must be bit-identical to
the reference per-access loop — and anything the kernels cannot model
exactly (observers, per-branch recording, subclassed policies, a
pre-touched BTB) must force the slow path.  The property tests drive
randomized streams through every kernel policy on both paths and diff
everything that is reachable afterwards.
"""

from __future__ import annotations

import copy
import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.btb import kernels
from repro.btb.btb import BTB, replay_stream, run_btb
from repro.btb.config import BTBConfig
from repro.btb.observer import EventRecorder
from repro.btb.replacement.lru import LRUPolicy
from repro.btb.replacement.registry import make_policy, policy_names
from repro.core.hints import HintMap
from repro.trace.record import BranchKind, BranchRecord, BranchTrace
from repro.trace.stream import access_stream_for, clear_stream_cache
from repro.workloads import make_app_trace

#: Tiny geometry so short randomized streams still overflow sets and
#: exercise eviction / bypass decisions.
CONFIG = BTBConfig(entries=8, ways=2)

#: Attributes that, together, capture every kernel policy's mutable
#: state (missing attributes are simply skipped per policy).
_POLICY_ATTRS = ("_stamps", "_clock", "_rrpv", "_temps", "_resident_next",
                 "_last_index", "covered_decisions", "uncovered_decisions",
                 # PLRU / DIP / dueling Thermometer
                 "_bits", "_psel", "_bip_counter", "_role",
                 # SHiP / GHRP
                 "_shct", "_signature", "_outcome", "_dead", "_tables",
                 "_history",
                 # Hawkeye / online Thermometer
                 "_counters", "_friendly", "_taken", "_hits")


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_stream_cache()
    yield
    clear_stream_cache()


def _trace_of(pairs) -> BranchTrace:
    """Always-taken branches over a small pc/target alphabet."""
    records = [BranchRecord(pc=0x1000 + pc * 4, target=0x4000 + t * 4,
                            kind=BranchKind.UNCOND_DIRECT, taken=True,
                            ilen=4)
               for pc, t in pairs]
    return BranchTrace.from_records(records, name="prop")


def _policy(name: str, stream):
    if name == "opt":
        return make_policy("opt", stream=stream)
    if name in ("thermometer", "thermometer-dueling"):
        pcs = set(int(pc) for pc in stream.pcs)
        hints = HintMap({pc: (pc >> 2) % 3 for pc in pcs},
                        num_categories=3)
        return make_policy(name, hints=hints)
    return make_policy(name)


def _policy_state(policy) -> dict:
    state = {a: copy.deepcopy(getattr(policy, a))
             for a in _POLICY_ATTRS if hasattr(policy, a)}
    # Hawkeye's OPTgen objects compare by identity; snapshot their
    # observable state instead.
    gens = getattr(policy, "_optgen", None)
    if gens is not None:
        state["_optgen"] = {s: (g.time, dict(g.last_time), list(g._occ))
                            for s, g in gens.items()}
    return state


def _btb_state(btb: BTB) -> dict:
    return {
        "stats": dataclasses.asdict(btb.stats),
        "tags": btb._tags.tolist(),
        "targets": btb._targets.tolist(),
        "reused": btb._reused.tolist(),
        "fill_index": btb._fill_index.tolist(),
        "dir": btb._dir,
    }


def _replay(trace: BranchTrace, name: str, fast: bool) -> BTB:
    stream = access_stream_for(trace, CONFIG)
    btb = BTB(CONFIG, _policy(name, stream))
    previous = kernels.set_fast_path_enabled(fast)
    try:
        run_btb(trace, btb)
    finally:
        kernels.set_fast_path_enabled(previous)
    return btb


pairs = st.lists(st.tuples(st.integers(0, 15), st.integers(0, 7)),
                 min_size=0, max_size=120)


# ----------------------------------------------------------------------
# Property: fast path is bit-identical for every kernel policy
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(pairs=pairs)
def test_fast_replay_bit_identical(pairs):
    trace = _trace_of(pairs)
    for name in kernels.kernel_policy_names():
        clear_stream_cache()
        fast_btb = _replay(trace, name, fast=True)
        clear_stream_cache()
        reference_btb = _replay(trace, name, fast=False)
        assert _btb_state(fast_btb) == _btb_state(reference_btb), name
        assert _policy_state(fast_btb.policy) == \
            _policy_state(reference_btb.policy), name


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(pairs=pairs)
def test_lru_stack_stats_matches_replay(pairs):
    """The analytic stack-distance kernel equals a simulated LRU replay."""
    trace = _trace_of(pairs)
    clear_stream_cache()
    stream = access_stream_for(trace, CONFIG)
    replayed = run_btb(trace, BTB(CONFIG, make_policy("lru")))
    assert dataclasses.asdict(kernels.lru_stack_stats(stream)) == \
        dataclasses.asdict(replayed)


# ----------------------------------------------------------------------
# Dispatch rules
# ----------------------------------------------------------------------

def _spy(monkeypatch):
    """Count (and forward) try_fast_replay calls out of replay_stream."""
    calls = []
    real = kernels.try_fast_replay

    def wrapped(stream, btb):
        calls.append(1)
        return real(stream, btb)

    monkeypatch.setattr(kernels, "try_fast_replay", wrapped)
    return calls


def test_kernel_selected_for_every_kernel_policy():
    trace = make_app_trace("tomcat", length=3000)
    stream = access_stream_for(trace, CONFIG)
    for name in kernels.kernel_policy_names():
        btb = BTB(CONFIG, _policy(name, stream))
        assert kernels.select_kernel(btb, stream) is not None, name


def test_observer_forces_slow_path(monkeypatch):
    trace = make_app_trace("tomcat", length=3000)
    calls = _spy(monkeypatch)
    observed = BTB(CONFIG, make_policy("lru"))
    recorder = observed.add_observer(EventRecorder())
    observed_stats = run_btb(trace, observed)
    assert not calls, "observed replay must not consult the fast path"
    assert recorder.events  # the slow path actually emitted events

    plain = BTB(CONFIG, make_policy("lru"))
    plain_stats = run_btb(trace, plain)
    assert calls, "unobserved replay should try the fast path"
    assert dataclasses.asdict(plain_stats) == \
        dataclasses.asdict(observed_stats)


def test_record_per_branch_forces_slow_path(monkeypatch):
    trace = make_app_trace("tomcat", length=3000)
    stream = access_stream_for(trace, CONFIG)
    calls = _spy(monkeypatch)
    stats, per_branch = replay_stream(stream, BTB(CONFIG, make_policy("lru")),
                                      record_per_branch=True)
    assert not calls
    assert per_branch and stats.accesses > 0


def test_kill_switch_disables_dispatch():
    trace = make_app_trace("tomcat", length=3000)
    stream = access_stream_for(trace, CONFIG)
    btb = BTB(CONFIG, make_policy("lru"))
    previous = kernels.set_fast_path_enabled(False)
    try:
        assert not kernels.fast_path_enabled()
        assert kernels.select_kernel(btb, stream) is None
        assert kernels.try_fast_replay(stream, btb) is None
    finally:
        kernels.set_fast_path_enabled(previous)
    assert kernels.select_kernel(btb, stream) is not None


def test_pretouched_btb_forces_slow_path():
    trace = make_app_trace("tomcat", length=3000)
    stream = access_stream_for(trace, CONFIG)
    btb = BTB(CONFIG, make_policy("lru"))
    btb.access(0x1000, 0x2000, 0)
    assert kernels.select_kernel(btb, stream) is None


def test_subclassed_policy_forces_slow_path():
    """Exact-type dispatch: semantic subclasses take the reference loop."""
    trace = make_app_trace("tomcat", length=3000)
    stream = access_stream_for(trace, CONFIG)
    btb = BTB(CONFIG, make_policy("brrip"))
    assert kernels.select_kernel(btb, stream) is None


def test_choose_victim_override_falls_back_not_raises():
    """A subclass that overrides ``choose_victim`` of a kernelized base
    must silently fall back to the reference loop — never dispatch to the
    base class's kernel, never raise."""
    class PinnedWayZero(LRUPolicy):
        def choose_victim(self, set_idx, resident_pcs, incoming_pc,
                          index):
            return 0

    trace = make_app_trace("tomcat", length=3000)
    stream = access_stream_for(trace, CONFIG)
    btb = BTB(CONFIG, PinnedWayZero())
    assert kernels.select_kernel(btb, stream) is None
    stats = run_btb(trace, btb)
    assert stats.evictions > 0
    # The override was actually honored: every eviction hit way 0, so a
    # set's other way only ever holds its first (compulsory) fill.
    plain = run_btb(trace, BTB(CONFIG, make_policy("lru")))
    assert dataclasses.asdict(stats) != dataclasses.asdict(plain)


def test_instance_patched_hook_falls_back():
    """Hooks monkeypatched onto a policy *instance* would be silently
    ignored by a kernel; dispatch must detect them and fall back."""
    trace = make_app_trace("tomcat", length=3000)
    stream = access_stream_for(trace, CONFIG)
    btb = BTB(CONFIG, make_policy("lru"))
    assert kernels.select_kernel(btb, stream) is not None
    calls = []
    original = btb.policy.choose_victim

    def spying(set_idx, resident_pcs, incoming_pc, index):
        calls.append(set_idx)
        return original(set_idx, resident_pcs, incoming_pc, index)

    btb.policy.choose_victim = spying
    assert kernels.select_kernel(btb, stream) is None
    stats = run_btb(trace, btb)
    assert calls, "the instance patch must be honored by the replay"
    assert stats.evictions == len(calls)


def test_every_registry_policy_has_a_fast_path_story():
    """The dispatch matrix: every policy in the registry is either
    kernelized or explicitly reference-loop-only — never undecided."""
    kernelized = set(kernels.kernel_policy_names())
    reference_only = set(kernels.REFERENCE_ONLY)
    registry = set(policy_names())
    assert not kernelized & reference_only, (
        f"policies {sorted(kernelized & reference_only)} are listed both "
        "in KERNELS and REFERENCE_ONLY — pick one")
    undecided = registry - kernelized - reference_only
    assert not undecided, (
        f"registry policies {sorted(undecided)} have no fast-path story. "
        "Either add a kernel to repro.btb.kernels.KERNELS (see the "
        "add-a-kernel checklist in docs/ARCHITECTURE.md) or list the "
        "policy in repro.btb.kernels.REFERENCE_ONLY with the reason it "
        "cannot be kernelized bit-identically.")
    stale = (kernelized | reference_only) - registry
    assert not stale, (
        f"fast-path entries {sorted(stale)} name policies that are not "
        "in the registry — remove or rename them")
    for name, reason in kernels.REFERENCE_ONLY.items():
        assert reason.strip(), f"REFERENCE_ONLY[{name!r}] needs a reason"


# ----------------------------------------------------------------------
# Shared-memory stream transfer
# ----------------------------------------------------------------------

class TestSharedMemoryStreams:
    def test_round_trip_and_replay_equivalence(self):
        from repro.trace import shm
        trace = make_app_trace("tomcat", length=4000)
        stream = access_stream_for(trace, CONFIG)
        exported = shm.export_stream(stream, "tomcat", 0, 4000)
        try:
            attached = shm.attach_stream(exported.handle)
            assert attached.config == stream.config
            np.testing.assert_array_equal(attached.pcs, stream.pcs)
            np.testing.assert_array_equal(attached.targets, stream.targets)
            np.testing.assert_array_equal(attached.set_indices,
                                          stream.set_indices)
            np.testing.assert_array_equal(attached.next_use,
                                          stream.next_use)
            np.testing.assert_array_equal(attached.trace.pcs, trace.pcs)
            part, ref_part = attached.partition(), stream.partition()
            np.testing.assert_array_equal(part.order, ref_part.order)
            np.testing.assert_array_equal(part.starts, ref_part.starts)
            assert part.pcs == ref_part.pcs
            assert part.positions == ref_part.positions

            via_shm = replay_stream(attached,
                                    BTB(CONFIG, make_policy("lru")))
            direct = replay_stream(stream, BTB(CONFIG, make_policy("lru")))
            assert dataclasses.asdict(via_shm) == dataclasses.asdict(direct)
        finally:
            exported.close()
            exported.close()  # idempotent

    def test_attach_after_unlink_raises(self):
        from repro.trace import shm
        trace = make_app_trace("python", length=2000)
        stream = access_stream_for(trace, CONFIG)
        exported = shm.export_stream(stream, "python", 0, 2000)
        exported.close()
        # Drop the process-level attach cache so a genuine re-attach is
        # attempted against the unlinked block.
        shm._attached.pop(exported.handle.shm_name, None)
        with pytest.raises(FileNotFoundError):
            shm.attach_stream(exported.handle)


class TestEngineSharedMemoryEquivalence:
    def test_parallel_shm_matches_serial_store_path(self, tmp_path,
                                                    monkeypatch):
        from repro.harness.engine import ExperimentEngine, SimJob
        jobs = [SimJob(app=app, policy=policy, length=4000, mode="misses")
                for app in ("tomcat", "python")
                for policy in ("lru", "thermometer")]

        monkeypatch.setenv("REPRO_SHM", "0")
        serial = ExperimentEngine(cache_dir=tmp_path / "serial", jobs=1)
        expected = [r.value for r in serial.run(jobs)]

        monkeypatch.setenv("REPRO_SHM", "1")
        parallel = ExperimentEngine(cache_dir=tmp_path / "parallel", jobs=2)
        assert [r.value for r in parallel.run(jobs)] == expected
