"""Unit tests for 3C BTB miss classification."""

import pytest

from repro.analysis.threec import classify_misses
from repro.btb.config import BTBConfig

from tests.helpers import trace_of_pcs


def test_all_first_touches_are_compulsory(tiny_config):
    trace = trace_of_pcs([0x4, 0x8, 0xC])
    result = classify_misses(trace, config=tiny_config)
    assert result.compulsory == 3
    assert result.capacity == 0
    assert result.conflict == 0


def test_hits_counted(tiny_config):
    trace = trace_of_pcs([0x4, 0x4, 0x4])
    result = classify_misses(trace, config=tiny_config)
    assert result.compulsory == 1
    assert result.hits == 2


def test_capacity_miss_detected():
    # One set, 2 ways; cyclic footprint of 3 -> reuse distance 2 >= ways.
    config = BTBConfig(entries=2, ways=2)
    trace = trace_of_pcs([0x4, 0x8, 0xC] * 4)
    result = classify_misses(trace, config=config)
    assert result.compulsory == 3
    assert result.capacity == 9
    assert result.conflict == 0


def test_conflict_miss_detected():
    """A policy that evicts the MRU way creates conflict misses LRU
    wouldn't."""
    from repro.btb.replacement.lru import MRUPolicy
    config = BTBConfig(entries=2, ways=2)
    # A B A B ... : distances are 1 < ways, so all misses after the first
    # touch are the policy's fault.
    trace = trace_of_pcs([0x4, 0x8] * 10 + [0xC] + [0x4, 0x8] * 3)
    result = classify_misses(trace, MRUPolicy(), config=config)
    assert result.conflict > 0


def test_fractions_and_summary(tiny_config):
    trace = trace_of_pcs([0x4, 0x8, 0x4])
    result = classify_misses(trace, config=tiny_config)
    assert result.fraction("compulsory") == 1.0
    assert "compulsory" in result.summary()
    assert result.accesses == 3


def test_lru_has_no_conflict_misses(small_trace, tiny_config):
    """By construction, LRU misses are never 'conflict' under the
    set-local stack-distance definition (its victim is always the
    furthest-back entry)."""
    result = classify_misses(small_trace, config=tiny_config)
    assert result.conflict == 0
    assert result.total_misses > 0


def test_policy_name_recorded(small_trace, tiny_config):
    from repro.btb.replacement.srrip import SRRIPPolicy
    result = classify_misses(small_trace, SRRIPPolicy(), tiny_config)
    assert result.policy_name == "srrip"
