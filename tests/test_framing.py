"""The shared line-JSON framing layer and its two socket consumers.

:mod:`repro.service.framing` is the one wire format in the repo — the
asyncio service client and the fabric's blocking endpoints both decode
through :class:`LineFrameBuffer`.  These are the regression tests for
the failure modes that used to be hand-rolled per endpoint: torn reads
reassembling, oversized frames raising *and resynchronizing*, and a
connection dying mid-line being reported as a torn frame on both the
blocking (:class:`SocketFrameReader`) and asyncio
(:class:`~repro.service.client.ServiceClient`) paths.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.service.client import ServiceClient
from repro.service.framing import (FrameTooLargeError, LineFrameBuffer,
                                   ProtocolError, SocketFrameReader,
                                   TornFrameError, decode_line,
                                   encode_line, send_frame)


class TestLineFrameBuffer:
    def test_torn_chunks_reassemble(self):
        buf = LineFrameBuffer()
        assert buf.feed(b'{"a": ') == []
        assert buf.pending_bytes > 0
        assert buf.feed(b'1}\n{"b": 2}\n{"c"') == [{"a": 1}, {"b": 2}]
        assert buf.feed(b": 3}\n") == [{"c": 3}]
        buf.eof()

    def test_single_byte_feeds_reassemble(self):
        buf = LineFrameBuffer()
        frames = []
        for byte in b'{"x": 42}\n':
            frames.extend(buf.feed(bytes([byte])))
        assert frames == [{"x": 42}]

    def test_blank_lines_are_skipped(self):
        buf = LineFrameBuffer()
        assert buf.feed(b'\n  \n{"a": 1}\n\n') == [{"a": 1}]

    def test_oversized_line_raises_and_resynchronizes(self):
        buf = LineFrameBuffer(max_frame_bytes=16)
        with pytest.raises(FrameTooLargeError):
            buf.feed(b"x" * 40)
        # The tail of the oversized line is discarded up to its newline;
        # the next frame decodes normally.
        assert buf.feed(b'yyy\n{"ok": 1}\n') == [{"ok": 1}]
        buf.eof()

    def test_oversized_line_with_newline_in_one_feed(self):
        buf = LineFrameBuffer(max_frame_bytes=16)
        with pytest.raises(FrameTooLargeError):
            buf.feed(b"x" * 40 + b'\n{"ok": 1}\n')
        # The good frame after the bad line is not lost.
        assert buf.feed(b"") == [{"ok": 1}]

    def test_frames_decoded_before_an_error_are_not_lost(self):
        buf = LineFrameBuffer()
        with pytest.raises(ProtocolError):
            buf.feed(b'{"a": 1}\nnot json\n{"b": 2}\n')
        assert buf.feed(b"") == [{"a": 1}, {"b": 2}]

    def test_non_object_frame_is_a_protocol_error(self):
        buf = LineFrameBuffer()
        with pytest.raises(ProtocolError):
            buf.feed(b"[1, 2, 3]\n")

    def test_eof_with_a_partial_line_is_a_torn_frame(self):
        buf = LineFrameBuffer()
        buf.feed(b'{"partial": ')
        with pytest.raises(TornFrameError):
            buf.eof()
        # eof() drained the partial line: the buffer is reusable.
        assert buf.pending_bytes == 0
        buf.eof()

    def test_eof_mid_oversized_discard_is_a_torn_frame(self):
        buf = LineFrameBuffer(max_frame_bytes=16)
        with pytest.raises(FrameTooLargeError):
            buf.feed(b"x" * 40)
        with pytest.raises(TornFrameError):
            buf.eof()

    def test_encode_decode_round_trip(self):
        frame = {"op": "fetch", "kind": "trace", "key": "ab" * 8}
        line = encode_line(frame)
        assert line.endswith(b"\n")
        assert decode_line(line[:-1]) == frame


class TestSocketFrameReader:
    @pytest.fixture()
    def pair(self):
        a, b = socket.socketpair()
        yield a, b
        a.close()
        b.close()

    def test_torn_sends_reassemble(self, pair):
        a, b = pair
        reader = SocketFrameReader(b)
        a.sendall(b'{"x": ')
        a.sendall(b'1}\n')
        assert reader.read_frame() == {"x": 1}
        a.close()
        assert reader.read_frame() is None

    def test_send_frame_is_readable_verbatim(self, pair):
        a, b = pair
        send_frame(a, {"op": "lease", "host": "h0"})
        assert (SocketFrameReader(b).read_frame()
                == {"op": "lease", "host": "h0"})

    def test_connection_severed_mid_frame_is_torn(self, pair):
        a, b = pair
        reader = SocketFrameReader(b)
        a.sendall(b'{"partial": ')
        a.close()
        with pytest.raises(TornFrameError):
            reader.read_frame()

    def test_oversized_frame_raises_then_resynchronizes(self, pair):
        a, b = pair
        reader = SocketFrameReader(b, max_frame_bytes=64)
        a.sendall(b"y" * 200 + b'\n')
        with pytest.raises(FrameTooLargeError):
            reader.read_frame()
        a.sendall(b'{"ok": 1}\n')
        assert reader.read_frame() == {"ok": 1}


def _scripted_server(payload: bytes):
    """An asyncio server that answers any one request line with
    ``payload`` and closes the connection."""

    async def handler(reader, writer):
        await reader.readline()
        writer.write(payload)
        await writer.drain()
        writer.close()

    return asyncio.start_server(handler, "127.0.0.1", 0)


async def _client_request(payload: bytes, max_frame_bytes: int):
    server = await _scripted_server(payload)
    host, port = server.sockets[0].getsockname()[:2]
    try:
        reader, writer = await asyncio.open_connection(host, port)
        client = ServiceClient(reader, writer,
                               max_frame_bytes=max_frame_bytes)
        try:
            return await asyncio.wait_for(
                client.request({"op": "status"}), timeout=30)
        finally:
            await client.close()
    finally:
        server.close()
        await server.wait_closed()


class TestServiceClientFraming:
    """The asyncio client rides the same buffer: the same oversized and
    torn failure modes must surface as the same framing errors."""

    def test_oversized_response_line_raises(self):
        payload = b'{"pad": "' + b"x" * 4096 + b'"}\n'
        with pytest.raises(FrameTooLargeError):
            asyncio.run(_client_request(payload, max_frame_bytes=256))

    def test_connection_severed_mid_line_is_torn(self):
        with pytest.raises(TornFrameError):
            asyncio.run(_client_request(b'{"event": "done", ',
                                        max_frame_bytes=1 << 20))

    def test_intact_response_still_round_trips(self):
        events = asyncio.run(_client_request(
            b'{"id": "c1", "event": "status", "ok": true}\n',
            max_frame_bytes=1 << 20))
        assert events == [{"id": "c1", "event": "status", "ok": True}]
