"""Tests for the command-line tools (the Fig. 10 deployment workflow)."""

import json

import pytest

from repro.tools import profile as profile_tool
from repro.tools import simulate as simulate_tool
from repro.tools import tracegen


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "t.btrc.gz"
    tracegen.main(["tomcat", "--length", "12000", "-o", str(path)])
    return path


class TestTracegen:
    def test_writes_trace(self, trace_file, capsys):
        from repro.trace.formats import read_trace
        trace = read_trace(trace_file)
        assert len(trace) == 12000

    def test_suite_reference(self, tmp_path):
        path = tmp_path / "s.btrc"
        assert tracegen.main(["cbp5:3", "--length", "2000",
                              "-o", str(path)]) == 0
        from repro.trace.formats import read_trace
        assert read_trace(path).name == "cbp5_003#0"

    def test_stats_flag(self, tmp_path, capsys):
        path = tmp_path / "t.btrc"
        tracegen.main(["python", "--length", "2000", "-o", str(path),
                       "--stats"])
        out = capsys.readouterr().out
        assert "unique branch pcs" in out

    def test_unknown_workload_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            tracegen.main(["redis", "-o", str(tmp_path / "x.btrc")])

    def test_bad_suite_index_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            tracegen.main(["cbp5:abc", "-o", str(tmp_path / "x.btrc")])

    def test_generate_api(self):
        trace = tracegen.generate("ipc1:2", length=1500)
        assert len(trace) == 1500


class TestProfileTool:
    def test_emits_hints_json(self, trace_file, tmp_path, capsys):
        hints_path = tmp_path / "h.json"
        assert profile_tool.main([str(trace_file), "-o", str(hints_path),
                                  "--entries", "1024"]) == 0
        payload = json.loads(hints_path.read_text())
        assert payload["num_categories"] == 3
        assert len(payload["categories"]) > 100
        assert "profiled" in capsys.readouterr().out

    def test_custom_thresholds(self, trace_file, tmp_path):
        hints_path = tmp_path / "h.json"
        assert profile_tool.main([str(trace_file), "-o", str(hints_path),
                                  "--thresholds", "25,50,75"]) == 0
        payload = json.loads(hints_path.read_text())
        assert payload["num_categories"] == 4

    def test_bad_thresholds_rejected(self, trace_file, tmp_path):
        with pytest.raises(SystemExit):
            profile_tool.main([str(trace_file), "--thresholds", "abc"])


class TestSimulateTool:
    def test_basic_replay(self, trace_file, capsys):
        assert simulate_tool.main([str(trace_file), "--policy",
                                   "srrip"]) == 0
        out = capsys.readouterr().out
        assert "hit_rate=" in out

    def test_thermometer_requires_hints(self, trace_file):
        with pytest.raises(SystemExit):
            simulate_tool.main([str(trace_file), "--policy",
                                "thermometer"])

    def test_full_pipeline_with_baseline(self, trace_file, tmp_path,
                                         capsys):
        hints_path = tmp_path / "h.json"
        profile_tool.main([str(trace_file), "-o", str(hints_path),
                           "--entries", "1024"])
        capsys.readouterr()
        assert simulate_tool.main(
            [str(trace_file), "--policy", "thermometer",
             "--hints", str(hints_path), "--entries", "1024",
             "--baseline", "lru"]) == 0
        out = capsys.readouterr().out
        assert "miss reduction vs lru" in out

    def test_ipc_mode(self, trace_file, capsys):
        assert simulate_tool.main([str(trace_file), "--policy", "lru",
                                   "--ipc"]) == 0
        assert "IPC" in capsys.readouterr().out
