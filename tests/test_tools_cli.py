"""Tests for the command-line tools (the Fig. 10 deployment workflow)."""

import json

import pytest

from repro.tools import profile as profile_tool
from repro.tools import simulate as simulate_tool
from repro.tools import tracegen


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "t.btrc.gz"
    tracegen.main(["tomcat", "--length", "12000", "-o", str(path)])
    return path


class TestTracegen:
    def test_writes_trace(self, trace_file, capsys):
        from repro.trace.formats import read_trace
        trace = read_trace(trace_file)
        assert len(trace) == 12000

    def test_suite_reference(self, tmp_path):
        path = tmp_path / "s.btrc"
        assert tracegen.main(["cbp5:3", "--length", "2000",
                              "-o", str(path)]) == 0
        from repro.trace.formats import read_trace
        assert read_trace(path).name == "cbp5_003#0"

    def test_stats_flag(self, tmp_path, capsys):
        path = tmp_path / "t.btrc"
        tracegen.main(["python", "--length", "2000", "-o", str(path),
                       "--stats"])
        out = capsys.readouterr().out
        assert "unique branch pcs" in out

    def test_unknown_workload_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            tracegen.main(["redis", "-o", str(tmp_path / "x.btrc")])

    def test_bad_suite_index_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            tracegen.main(["cbp5:abc", "-o", str(tmp_path / "x.btrc")])

    def test_generate_api(self):
        trace = tracegen.generate("ipc1:2", length=1500)
        assert len(trace) == 1500


class TestProfileTool:
    def test_emits_hints_json(self, trace_file, tmp_path, capsys):
        hints_path = tmp_path / "h.json"
        assert profile_tool.main([str(trace_file), "-o", str(hints_path),
                                  "--entries", "1024"]) == 0
        payload = json.loads(hints_path.read_text())
        assert payload["num_categories"] == 3
        assert len(payload["categories"]) > 100
        assert "profiled" in capsys.readouterr().out

    def test_custom_thresholds(self, trace_file, tmp_path):
        hints_path = tmp_path / "h.json"
        assert profile_tool.main([str(trace_file), "-o", str(hints_path),
                                  "--thresholds", "25,50,75"]) == 0
        payload = json.loads(hints_path.read_text())
        assert payload["num_categories"] == 4

    def test_bad_thresholds_rejected(self, trace_file, tmp_path):
        with pytest.raises(SystemExit):
            profile_tool.main([str(trace_file), "--thresholds", "abc"])


class TestSimulateTool:
    def test_basic_replay(self, trace_file, capsys):
        assert simulate_tool.main([str(trace_file), "--policy",
                                   "srrip"]) == 0
        out = capsys.readouterr().out
        assert "hit_rate=" in out

    def test_thermometer_requires_hints(self, trace_file):
        with pytest.raises(SystemExit):
            simulate_tool.main([str(trace_file), "--policy",
                                "thermometer"])

    def test_full_pipeline_with_baseline(self, trace_file, tmp_path,
                                         capsys):
        hints_path = tmp_path / "h.json"
        profile_tool.main([str(trace_file), "-o", str(hints_path),
                           "--entries", "1024"])
        capsys.readouterr()
        assert simulate_tool.main(
            [str(trace_file), "--policy", "thermometer",
             "--hints", str(hints_path), "--entries", "1024",
             "--baseline", "lru"]) == 0
        out = capsys.readouterr().out
        assert "miss reduction vs lru" in out

    def test_ipc_mode(self, trace_file, capsys):
        assert simulate_tool.main([str(trace_file), "--policy", "lru",
                                   "--ipc"]) == 0
        assert "IPC" in capsys.readouterr().out


class TestSimulateSweepFaultFlags:
    """--resume/--max-retries/--job-timeout on the sweep path."""

    SWEEP = ["--apps", "tomcat", "--policies", "lru,srrip",
             "--length", "2000"]

    def test_sweep_then_resume_latest(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path)]
        assert simulate_tool.main(self.SWEEP + cache) == 0
        capsys.readouterr()
        assert simulate_tool.main(self.SWEEP + cache
                                  + ["--resume", "latest",
                                     "--max-retries", "2",
                                     "--job-timeout", "60"]) == 0
        assert "2 jobs" in capsys.readouterr().out

    def test_resume_conflicts_with_no_cache(self, capsys):
        assert simulate_tool.main(self.SWEEP
                                  + ["--no-cache", "--resume",
                                     "latest"]) == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_unknown_resume_id_is_a_usage_error(self, tmp_path, capsys):
        assert simulate_tool.main(self.SWEEP
                                  + ["--cache-dir", str(tmp_path),
                                     "--resume", "nope"]) == 2
        assert "no run" in capsys.readouterr().err

    def test_failed_sweep_prints_resume_hint(self, tmp_path, capsys,
                                             monkeypatch):
        import os
        from repro.testing.faults import Fault, FaultPlan, PLAN_ENV_VAR
        plan = FaultPlan(faults=(Fault("raise", 0,
                                       attempts=(0, 1, 2, 3)),))
        monkeypatch.setenv(PLAN_ENV_VAR, plan.to_json())
        assert simulate_tool.main(self.SWEEP
                                  + ["--cache-dir", str(tmp_path),
                                     "--max-retries", "1"]) == 1
        err = capsys.readouterr().err
        assert "--resume" in err
        # The crashed sweep converges once the transient fault clears.
        monkeypatch.delenv(PLAN_ENV_VAR)
        assert simulate_tool.main(self.SWEEP
                                  + ["--cache-dir", str(tmp_path),
                                     "--resume", "latest"]) == 0


class TestChaosTool:
    def test_converges_and_reports(self, tmp_path, capsys):
        from repro.tools import chaos
        assert chaos.main(["--seed", "7", "--apps", "tomcat",
                           "--policies", "lru,srrip", "--length", "2000",
                           "--jobs", "1", "--rate", "1.0",
                           "--max-retries", "2", "--job-timeout", "1.0",
                           "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fault plan" in out
        assert "bit-identical" in out

    def test_seeded_plan_is_logged_verbatim(self, tmp_path, capsys):
        """The logged plan JSON must replay the run: same seed, same
        schedule."""
        from repro.testing.faults import FaultPlan
        from repro.tools import chaos
        assert chaos.main(["--seed", "11", "--apps", "tomcat",
                           "--policies", "lru", "--length", "1500",
                           "--jobs", "1", "--rate", "1.0",
                           "--job-timeout", "1.0",
                           "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        logged = out.split("fault plan: ", 1)[1].splitlines()[0]
        assert FaultPlan.from_json(logged) == FaultPlan.random(
            11, 1, rate=1.0, hang_seconds=2.0)


class TestLoggingFlags:
    """-v/-q tune the stderr diagnostics channel; results stay on
    stdout until -qq."""

    def test_quiet_keeps_results_on_stdout(self, trace_file, capsys):
        assert simulate_tool.main([str(trace_file), "--policy", "lru",
                                   "-q"]) == 0
        captured = capsys.readouterr()
        assert "hit_rate=" in captured.out
        assert "hit_rate=" not in captured.err

    def test_double_quiet_silences_results(self, tmp_path, capsys):
        path = tmp_path / "t.btrc"
        assert tracegen.main(["python", "--length", "1000",
                              "-o", str(path), "-qq"]) == 0
        assert capsys.readouterr().out == ""
        assert path.exists()

    def test_verbose_diagnostics_go_to_stderr(self, trace_file, tmp_path,
                                              capsys):
        hints_path = tmp_path / "h.json"
        assert profile_tool.main([str(trace_file), "-o", str(hints_path),
                                  "--no-cache", "-v"]) == 0
        captured = capsys.readouterr()
        assert "profiled" in captured.out

    def test_unknown_sweep_app_logs_error(self, capsys):
        assert simulate_tool.main(["--apps", "redis",
                                   "--policies", "lru"]) == 2
        captured = capsys.readouterr()
        assert "unknown app" in captured.err
        assert "unknown app" not in captured.out


class TestBenchKernel:
    def test_records_telemetry_overhead(self, tmp_path, capsys):
        from repro.tools import bench_kernel
        out = tmp_path / "BENCH_kernel.json"
        code = bench_kernel.main(["--apps", "tomcat", "--policies",
                                  "lru,srrip", "--length", "4000",
                                  "--max-overhead-pct", "0",
                                  "--output", str(out)])
        assert code == 0  # <= 0 disables the budget check
        record = json.loads(out.read_text())
        assert record["jobs"] == 2
        assert record["shared_seconds"] > 0
        assert record["replay_seconds"] > 0
        assert record["telemetry_replay_seconds"] > 0
        assert "telemetry_overhead_pct" in record
        assert "telemetry_overhead_pct" in capsys.readouterr().out

    def test_overhead_budget_exit_code(self, tmp_path, monkeypatch):
        from repro.tools import bench_kernel
        monkeypatch.setattr(
            bench_kernel, "run_benchmark",
            lambda *a, **k: {"telemetry_overhead_pct": 50.0,
                             "bench": "kernel"})
        assert bench_kernel.main(["--output", "-",
                                  "--max-overhead-pct", "3"]) == 1
