"""Structural smoke tests over every experiment function.

Each figure function must run at tiny scale, produce well-formed rows, and
keep its row labels aligned with the harness configuration.  (The headline
*values* are checked at realistic scale by the benchmarks.)
"""

import pytest

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Harness, HarnessConfig

APPS = ("tomcat", "python")

#: Per-experiment kwargs that shrink the slow ones to smoke scale.
SMOKE_KWARGS = {
    "fig6": {"apps": APPS},
    "fig7": {"apps": APPS},
    "fig13": {"inputs": (1,)},
    "fig17": {"count": 2, "length": 8000},
    "fig18": {"count": 2, "length": 8000},
    "fig19": {"apps": ("tomcat",), "entry_sweep": (256, 512),
              "way_sweep": (4,)},
    "fig20": {"apps": ("tomcat",), "category_sweep": (2, 3),
              "ftq_sweep": (192,)},
}

#: fig19/fig20 sweep percent-of-OPT, which needs a BTB small enough to be
#: contested at smoke-test trace lengths.
PRESSURED_EXPERIMENTS = ("fig19", "fig20")

FAST_EXPERIMENTS = ["fig3", "fig5", "fig9", "fig14", "fig15"]
SLOW_EXPERIMENTS = [name for name in ALL_EXPERIMENTS
                    if name not in FAST_EXPERIMENTS]


@pytest.fixture(scope="module")
def tiny_harness():
    return Harness(HarnessConfig(apps=APPS, length=8000))


@pytest.fixture(scope="module")
def pressured_harness():
    from repro.btb.config import BTBConfig
    return Harness(HarnessConfig(apps=APPS, length=8000,
                                 btb_config=BTBConfig(entries=512,
                                                      ways=4)))


def _check(result: ExperimentResult, name: str) -> None:
    assert isinstance(result, ExperimentResult)
    assert result.experiment == name
    assert result.rows, f"{name} produced no rows"
    width = len(result.columns)
    assert all(len(row) == width for row in result.rows)
    assert result.notes      # every figure carries its paper reference


@pytest.mark.parametrize("name", FAST_EXPERIMENTS)
def test_fast_experiments_smoke(tiny_harness, name):
    result = ALL_EXPERIMENTS[name](tiny_harness,
                                   **SMOKE_KWARGS.get(name, {}))
    _check(result, name)


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_EXPERIMENTS)
def test_slow_experiments_smoke(tiny_harness, pressured_harness, name):
    harness = (pressured_harness if name in PRESSURED_EXPERIMENTS
               else tiny_harness)
    result = ALL_EXPERIMENTS[name](harness, **SMOKE_KWARGS.get(name, {}))
    _check(result, name)
