"""The columnar access stream (repro.trace.stream)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.btb.config import BTBConfig
from repro.trace.record import BranchKind, BranchRecord, BranchTrace
from repro.trace.stream import (AccessStream, NEVER, access_stream_for,
                                clear_stream_cache, compute_next_use_indices,
                                compute_set_indices)

from .helpers import branch, trace_of_pcs


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_stream_cache()
    yield
    clear_stream_cache()


def mixed_trace():
    """Taken/not-taken/return mix exercising the access mask."""
    records = [
        branch(0x100),                                        # access 0
        branch(0x200, kind=BranchKind.COND_DIRECT, taken=False),
        branch(0x300, kind=BranchKind.CALL_DIRECT),           # access 1
        branch(0x400, kind=BranchKind.RETURN),                # masked out
        branch(0x100),                                        # access 2
        branch(0x500, kind=BranchKind.UNCOND_INDIRECT),       # access 3
    ]
    return BranchTrace.from_records(records, name="mixed")


class TestNextUse:
    def test_pinned_values(self):
        got = compute_next_use_indices(np.array([1, 2, 1, 3, 2]))
        assert got.tolist() == [2, 4, NEVER, NEVER, NEVER]

    def test_matches_naive_reference(self):
        rng = np.random.default_rng(7)
        pcs = rng.integers(0, 40, size=500)
        naive = []
        for i in range(len(pcs)):
            later = np.flatnonzero(pcs[i + 1:] == pcs[i])
            naive.append(int(later[0]) + i + 1 if len(later) else NEVER)
        assert compute_next_use_indices(pcs).tolist() == naive

    def test_empty_and_singleton(self):
        assert compute_next_use_indices(np.array([], dtype=np.int64)).size == 0
        assert compute_next_use_indices(np.array([5])).tolist() == [NEVER]


class TestSetIndices:
    def test_matches_scalar_set_index(self):
        config = BTBConfig(entries=256, ways=4)
        pcs = np.arange(0, 4096, 12, dtype=np.int64)
        expected = [config.set_index(int(pc)) for pc in pcs]
        assert compute_set_indices(pcs, config).tolist() == expected

    def test_subclass_override_uses_scalar_fallback(self):
        class OddConfig(BTBConfig):
            def set_index(self, pc):
                return (pc // 8) % self.num_sets

        config = OddConfig(entries=64, ways=2)
        pcs = np.arange(0, 512, 4, dtype=np.int64)
        expected = [config.set_index(int(pc)) for pc in pcs]
        assert compute_set_indices(pcs, config).tolist() == expected


class TestAccessStream:
    def test_masks_not_taken_and_returns(self):
        stream = AccessStream(mixed_trace(), BTBConfig(entries=64, ways=2))
        assert stream.pcs_list == [0x100, 0x300, 0x100, 0x500]
        assert stream.trace_positions.tolist() == [0, 2, 4, 5]
        assert len(stream) == 4

    def test_set_indices_and_lists_are_plain_ints(self):
        config = BTBConfig(entries=64, ways=2)
        stream = AccessStream(mixed_trace(), config)
        assert stream.sets_list == [config.set_index(pc)
                                    for pc in stream.pcs_list]
        assert all(type(v) is int for v in stream.pcs_list)
        assert all(type(v) is int for v in stream.sets_list)

    def test_next_use_column(self):
        stream = AccessStream(mixed_trace(), BTBConfig(entries=64, ways=2))
        assert stream.next_use.tolist() == [2, NEVER, NEVER, NEVER]

    def test_next_use_of_demand_and_prefetch_paths(self):
        stream = AccessStream(mixed_trace(), BTBConfig(entries=64, ways=2))
        # Demand path: pc is the stream record at the index.
        assert stream.next_use_of(0x100, 0) == 2
        # Prefetch path: pc differs from the record -> occurrence bisect.
        assert stream.next_use_of(0x100, 1) == 2
        assert stream.next_use_of(0x100, 2) == NEVER
        assert stream.next_use_of(0xDEAD, 0) == NEVER

    def test_trace_columns_cover_full_trace(self):
        trace = mixed_trace()
        stream = AccessStream(trace, BTBConfig(entries=64, ways=2))
        pcs, targets, kinds, taken, ilens = stream.trace_columns()
        assert pcs == trace.pcs.tolist()
        assert taken == trace.taken.tolist()
        assert len(kinds) == len(trace) == len(ilens) == len(targets)
        assert stream.trace_columns() is stream._trace_columns  # memoized

    def test_empty_trace(self):
        trace = BranchTrace.from_records([], name="empty")
        stream = AccessStream(trace, BTBConfig(entries=64, ways=2))
        assert len(stream) == 0
        assert stream.next_use.size == 0
        assert stream.pcs_list == []


class TestMemo:
    def test_same_trace_and_config_share_one_stream(self):
        trace = trace_of_pcs([0x10, 0x20, 0x10])
        config = BTBConfig(entries=64, ways=2)
        first = access_stream_for(trace, config)
        assert access_stream_for(trace, config) is first

    def test_distinct_configs_get_distinct_streams(self):
        trace = trace_of_pcs([0x10, 0x20, 0x10])
        a = access_stream_for(trace, BTBConfig(entries=64, ways=2))
        b = access_stream_for(trace, BTBConfig(entries=128, ways=4))
        assert a is not b
        assert a.config != b.config

    def test_clear_drops_entries(self):
        trace = trace_of_pcs([0x10, 0x20])
        config = BTBConfig(entries=64, ways=2)
        first = access_stream_for(trace, config)
        clear_stream_cache()
        assert access_stream_for(trace, config) is not first
