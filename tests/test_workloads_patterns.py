"""Unit tests for the canonical access-pattern micro-workloads —
including the analytic hit counts that make them useful as oracles."""

import pytest

from repro.btb.btb import BTB, btb_access_stream, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.lru import LRUPolicy, MRUPolicy
from repro.btb.replacement.opt import BeladyOptimalPolicy
from repro.workloads.patterns import (cyclic_trace, sawtooth_trace,
                                      scan_trace, two_phase_trace,
                                      zipf_trace)

ONE_SET = BTBConfig(entries=4, ways=4)


def hits(trace, policy, config=ONE_SET):
    return run_btb(trace, BTB(config, policy)).hits


class TestCyclic:
    def test_shape(self):
        trace = cyclic_trace(3, 2)
        assert len(trace) == 6
        trace.validate()

    def test_lru_zero_hits_over_capacity(self):
        trace = cyclic_trace(5, 10)
        assert hits(trace, LRUPolicy()) == 0

    def test_lru_all_hits_within_capacity(self):
        trace = cyclic_trace(4, 10)
        assert hits(trace, LRUPolicy()) == 4 * 9

    def test_opt_pins_capacity_entries(self):
        """Analytic OPT result: on a cyclic set of W > C, OPT keeps C-1
        pinned plus reuses the bypass slot, hitting (C-1) per lap after
        the first."""
        trace = cyclic_trace(6, 11)
        pcs, _ = btb_access_stream(trace)
        opt_hits = hits(trace, BeladyOptimalPolicy.from_stream(pcs))
        assert opt_hits >= 4 * 10 - 4      # ~capacity per lap
        assert opt_hits > hits(trace, LRUPolicy())

    def test_validation(self):
        with pytest.raises(ValueError):
            cyclic_trace(0, 1)


class TestScan:
    def test_scans_are_fresh(self):
        trace = scan_trace(resident=2, scan_length=3, rounds=2)
        pcs = [int(p) for p in trace.pcs]
        scan_pcs = [pc for pc in pcs if pc >= 0x10000 + 2 * 4]
        assert len(scan_pcs) == len(set(scan_pcs)) == 6

    def test_resident_set_survives_under_opt_not_lru(self):
        config = BTBConfig(entries=2, ways=2)
        trace = scan_trace(resident=2, scan_length=8, rounds=5,
                           resident_repeats=3)
        pcs, _ = btb_access_stream(trace)
        lru_hits = hits(trace, LRUPolicy(), config)
        opt_hits = hits(trace, BeladyOptimalPolicy.from_stream(pcs), config)
        assert opt_hits > lru_hits

    def test_validation(self):
        with pytest.raises(ValueError):
            scan_trace(0, 1, 1)


class TestZipf:
    def test_deterministic(self):
        assert zipf_trace(10, 100, seed=3) == zipf_trace(10, 100, seed=3)

    def test_rank_zero_hottest(self):
        trace = zipf_trace(20, 2000, s=1.2)
        from collections import Counter
        counts = Counter(int(p) for p in trace.pcs)
        hottest = max(counts, key=counts.get)
        assert hottest == 0x10000

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_trace(0, 10)


class TestTwoPhase:
    def test_disjoint_phases(self):
        trace = two_phase_trace(4, 20, overlap=0.0)
        half = len(trace) // 2
        first = set(int(p) for p in trace.pcs[:half])
        second = set(int(p) for p in trace.pcs[half:])
        assert not (first & second)

    def test_full_overlap_is_one_phase(self):
        trace = two_phase_trace(4, 20, overlap=1.0)
        assert len(set(int(p) for p in trace.pcs)) == 4

    def test_overlap_bounds(self):
        with pytest.raises(ValueError):
            two_phase_trace(4, 10, overlap=1.5)

    def test_stale_profile_worst_case(self, tiny_config):
        """Hints trained on phase 1 know nothing about phase 2 — the
        policy must degrade gracefully to ~LRU, not collapse."""
        from repro.core.pipeline import ThermometerPipeline
        trace = two_phase_trace(24, 600, overlap=0.1)
        half = len(trace) // 2
        pipeline = ThermometerPipeline(config=tiny_config)
        hints = pipeline.build_hints(trace[:half])
        stats = pipeline.run(trace[half:], hints=hints)
        lru = run_btb(trace[half:], BTB(tiny_config, LRUPolicy()))
        assert stats.misses <= lru.misses * 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            two_phase_trace(0, 10)


class TestSawtooth:
    def test_period(self):
        trace = sawtooth_trace(4, 1)
        assert [int(p - 0x10000) // 4 for p in trace.pcs] == \
            [0, 1, 2, 3, 2, 1]

    def test_sawtooth_favors_lru_over_mru_at_edges(self):
        """Direction reversal gives recent entries immediate reuse."""
        config = BTBConfig(entries=3, ways=3)
        trace = sawtooth_trace(6, 10)
        assert hits(trace, LRUPolicy(), config) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            sawtooth_trace(1, 1)
