"""Unit tests for the Hawkeye policy and its OPTgen component."""

import pytest

from repro.btb.btb import BTB
from repro.btb.config import BTBConfig
from repro.btb.replacement.hawkeye import HawkeyePolicy, _OptGen


class TestOptGen:
    def test_compulsory_access_is_none(self):
        gen = _OptGen(ways=2)
        assert gen.access(0x4) is None

    def test_short_reuse_in_capacity_hits(self):
        gen = _OptGen(ways=2)
        gen.access(0x4)
        gen.access(0x8)
        assert gen.access(0x4) is True

    def test_over_capacity_interval_misses(self):
        gen = _OptGen(ways=1, window_factor=8)
        gen.access(0x4)
        # Two other blocks whose intervals saturate the single way.
        gen.access(0x8)
        gen.access(0xC)
        gen.access(0x8)            # occupies [1, 3]
        assert gen.access(0x4) is False

    def test_reuse_beyond_window_is_compulsory(self):
        gen = _OptGen(ways=1, window_factor=2)   # window = 2
        gen.access(0x4)
        gen.access(0x8)
        gen.access(0xC)
        assert gen.access(0x4) is None

    def test_capacity_respected(self):
        """With 2 ways, three interleaved streams can't all hit."""
        gen = _OptGen(ways=2)
        for pc in (0x4, 0x8, 0xC):
            gen.access(pc)
        verdicts = [gen.access(pc) for pc in (0x4, 0x8, 0xC)]
        assert verdicts.count(True) == 2
        assert verdicts.count(False) == 1


class TestHawkeyePolicy:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            HawkeyePolicy(predictor_bits=2)
        with pytest.raises(ValueError):
            HawkeyePolicy(sample_every=0)

    def test_initially_weakly_friendly(self):
        policy = HawkeyePolicy()
        policy.bind(8, 2)
        assert policy._predict_friendly(0x40)

    def test_training_flips_prediction(self):
        policy = HawkeyePolicy()
        policy.bind(8, 2)
        for _ in range(5):
            policy._train(0x40, friendly=False)
        assert not policy._predict_friendly(0x40)
        for _ in range(8):
            policy._train(0x40, friendly=True)
        assert policy._predict_friendly(0x40)

    def test_averse_entry_evicted_first(self):
        policy = HawkeyePolicy(sample_every=1)
        btb = BTB(BTBConfig(entries=2, ways=2), policy)
        btb.access(0x4, 0, 0)
        btb.access(0x8, 0, 1)
        # Force way 1 averse.
        policy._rrpv[0][1] = 7
        btb.access(0xC, 0, 2)
        assert not btb.contains(0x8)
        assert btb.contains(0x4)

    def test_sampled_sets_only(self):
        policy = HawkeyePolicy(sample_every=4)
        policy.bind(8, 2)
        assert set(policy._optgen) == {0, 4}

    def test_friendly_learning_on_reuse_pattern(self):
        """A tight reuse loop in a sampled set trains friendliness."""
        policy = HawkeyePolicy(sample_every=1)
        btb = BTB(BTBConfig(entries=4, ways=4), policy)
        for _ in range(20):
            btb.access(0x4, 0, 0)
            btb.access(0x8, 0, 0)
        idx = policy._predictor_index(0x4)
        assert policy._counters[idx] >= 4

    def test_detrains_on_dead_friendly_eviction(self):
        policy = HawkeyePolicy(sample_every=10_000)  # no OPTgen noise
        btb = BTB(BTBConfig(entries=2, ways=2), policy)
        idx = policy._predictor_index(0x4)
        before = policy._counters[idx]
        btb.access(0x4, 0, 0)      # friendly fill, never reused
        btb.access(0x8, 0, 1)
        policy._rrpv[0][0] = 7     # make 0x4 the victim
        btb.access(0xC, 0, 2)
        assert policy._counters[idx] < before
