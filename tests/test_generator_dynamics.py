"""Behavioral tests for the workload generator's dynamic structure —
the properties the paper's characterization depends on."""

from collections import Counter

import pytest

from repro.btb.btb import btb_access_stream
from repro.workloads.generator import (LayoutParams, MixParams,
                                       SyntheticWorkload, WorkloadSpec)


def make_workload(p_revisit=0.4, **mix_kw):
    spec = WorkloadSpec(
        name="dyn-test",
        layout=LayoutParams(n_hot_loops=30, hot_loop_branches=(6, 10),
                            n_warm_funcs=10, n_cold_branches=300,
                            loop_trips_max=10),
        mix=MixParams(active_loops=20, core_loops=4, phase_len=3000,
                      p_call=0.1, p_cold_burst=0.05,
                      cold_burst_len=(5, 20), p_revisit_loop=p_revisit,
                      **mix_kw),
        default_length=20_000)
    return SyntheticWorkload(spec)


def loop_base_sequence(workload, trace):
    """Map each dynamic branch to its loop region (backedge target)."""
    base_of = {}
    for loop in workload._lay.loops:
        for br in (*loop.body, loop.backedge):
            base_of[br.pc] = loop.base
    return [base_of[pc] for pc in map(int, trace.pcs) if pc in base_of]


def revisit_rate(sequence):
    """How often consecutive loop-branch runs belong to the same loop."""
    runs = [sequence[0]]
    for base in sequence[1:]:
        if base != runs[-1]:
            runs.append(base)
    if len(sequence) <= 1:
        return 0.0
    # Fewer distinct runs = more burstiness.
    return 1.0 - len(runs) / len(sequence)


def test_revisit_probability_increases_burstiness():
    low = make_workload(p_revisit=0.0)
    high = make_workload(p_revisit=0.8)
    seq_low = loop_base_sequence(low, low.generate())
    seq_high = loop_base_sequence(high, high.generate())
    assert revisit_rate(seq_high) > revisit_rate(seq_low)


def test_core_loops_present_in_every_phase():
    workload = make_workload()
    trace = workload.generate()
    core_bases = {loop.base for loop in workload._lay.loops[:4]}
    phase_len = workload.spec.mix.phase_len
    for start in range(0, len(trace) - phase_len, phase_len):
        window = trace[start:start + phase_len]
        bases = set(loop_base_sequence(workload, window))
        assert core_bases & bases, "core loops missing from a phase"


def test_zipf_weights_skew_visit_counts():
    workload = make_workload()
    trace = workload.generate()
    counts = Counter(loop_base_sequence(workload, trace))
    loops = workload._lay.loops
    top = counts.get(loops[0].base, 0)
    tail = counts.get(loops[-1].base, 0)
    assert top > tail


def test_cold_chain_accessed_in_bursts():
    workload = make_workload()
    trace = workload.generate()
    cold_pcs = {br.pc for br in workload._lay.cold}
    is_cold = [int(pc) in cold_pcs for pc in trace.pcs]
    # Cold accesses should be clustered: the probability the next record is
    # cold given the current one is cold must far exceed the base rate.
    cold_count = sum(is_cold)
    if cold_count < 50:
        pytest.skip("too few cold accesses in this draw")
    followers = sum(1 for i in range(len(is_cold) - 1)
                    if is_cold[i] and is_cold[i + 1])
    conditional = followers / cold_count
    base_rate = cold_count / len(is_cold)
    assert conditional > 3 * base_rate


def test_taken_branch_stream_dominated_by_loops():
    workload = make_workload()
    trace = workload.generate()
    pcs, _ = btb_access_stream(trace)
    loop_pcs = set()
    for loop in workload._lay.loops:
        loop_pcs.update(br.pc for br in (*loop.body, loop.backedge))
    in_loops = sum(1 for pc in map(int, pcs) if pc in loop_pcs)
    assert in_loops / len(pcs) > 0.5
