"""Unit tests for the FDIP run-ahead credit model."""

import pytest

from repro.frontend.fdip import FDIPEngine
from repro.frontend.params import FrontendParams


def engine(**kwargs):
    return FDIPEngine(FrontendParams(**kwargs))


def test_credit_builds_with_gain():
    e = engine(runahead_gain=5.0)
    e.advance(2.0)
    assert e.credit == 10.0


def test_credit_capped_by_ftq():
    e = engine()
    e.advance(10_000.0)
    assert e.credit == e.capacity
    assert e.capacity == pytest.approx(
        e.params.ftq_runahead_instructions * e.params.backend_cpi)


def test_fill_fully_hidden_when_credit_sufficient():
    e = engine()
    e.advance(100.0)
    exposed = e.absorb(10.0)
    assert exposed == 0.0
    assert e.hidden_latency == 10.0


def test_fill_partially_exposed():
    e = engine(runahead_gain=1.0)
    e.advance(4.0)
    exposed = e.absorb(10.0)
    assert exposed == 6.0
    assert e.hidden_latency == 4.0
    assert e.exposed_latency == 6.0


def test_exposure_rebuilds_credit():
    """While the core stalls on exposed latency, fetch keeps running
    ahead."""
    e = engine(runahead_gain=2.0)
    exposed = e.absorb(10.0)
    assert exposed == 10.0
    assert e.credit == 20.0


def test_zero_fill_free():
    e = engine()
    assert e.absorb(0.0) == 0.0


def test_redirect_resets_credit():
    e = engine()
    e.advance(50.0)
    e.redirect()
    assert e.credit == 0.0
    assert e.resets == 1


def test_hide_rate():
    e = engine(runahead_gain=1.0)
    assert e.hide_rate == 0.0
    e.advance(5.0)
    e.absorb(10.0)          # 5 hidden, 5 exposed
    assert e.hide_rate == pytest.approx(0.5)
