"""Unit tests for branch temperature classification."""

import numpy as np
import pytest

from repro.core.temperature import (COLD, HOT, WARM, TemperatureProfile,
                                    classify_temperature,
                                    temperature_class_name)


def make_profile():
    return TemperatureProfile(
        trace_name="t",
        percentages={0x4: 95.0, 0x8: 65.0, 0xC: 10.0, 0x10: 50.0,
                     0x14: 80.0},
        taken_counts={0x4: 900, 0x8: 50, 0xC: 30, 0x10: 10, 0x14: 10})


class TestClassify:
    def test_paper_thresholds(self):
        assert classify_temperature(10.0) == COLD
        assert classify_temperature(50.0) == COLD       # boundary: <= y1
        assert classify_temperature(65.0) == WARM
        assert classify_temperature(80.0) == WARM       # boundary: <= y2
        assert classify_temperature(95.0) == HOT

    def test_custom_thresholds(self):
        assert classify_temperature(25.0, (20.0, 40.0, 60.0)) == 1

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ValueError):
            classify_temperature(50.0, ())
        with pytest.raises(ValueError):
            classify_temperature(50.0, (80.0, 50.0))
        with pytest.raises(ValueError):
            classify_temperature(50.0, (-5.0, 120.0))

    def test_class_names(self):
        assert temperature_class_name(COLD) == "cold"
        assert temperature_class_name(WARM) == "warm"
        assert temperature_class_name(HOT) == "hot"
        with pytest.raises(ValueError):
            temperature_class_name(7)


class TestProfile:
    def test_classify_map(self):
        categories = make_profile().classify()
        assert categories == {0x4: HOT, 0x8: WARM, 0xC: COLD, 0x10: COLD,
                              0x14: WARM}

    def test_class_fractions_sum_to_one(self):
        fractions = make_profile().class_fractions()
        assert sum(fractions) == pytest.approx(1.0)
        assert fractions == [pytest.approx(0.4), pytest.approx(0.4),
                             pytest.approx(0.2)]

    def test_dynamic_fractions_weighted_by_taken(self):
        fractions = make_profile().dynamic_fractions()
        assert fractions[HOT] == pytest.approx(900 / 1000)

    def test_sorted_curve_descending(self):
        xs, ys = make_profile().sorted_curve()
        assert list(ys) == sorted(ys, reverse=True)
        assert xs[-1] == pytest.approx(100.0)

    def test_dynamic_cdf_monotone(self):
        xs, cdf = make_profile().dynamic_cdf()
        assert (np.diff(cdf) >= 0).all()
        assert cdf[-1] == pytest.approx(100.0)

    def test_empty_profile_curves(self):
        empty = TemperatureProfile("e", {})
        assert len(empty.sorted_curve()[0]) == 0
        assert len(empty.dynamic_cdf()[0]) == 0
        assert len(empty) == 0

    def test_agreement_identical(self):
        profile = make_profile()
        assert profile.agreement_with(profile) == 1.0

    def test_agreement_partial(self):
        a = make_profile()
        b = TemperatureProfile(
            "b", {0x4: 95.0, 0x8: 10.0, 0xFF: 50.0})   # 0x8 flips to cold
        assert a.agreement_with(b) == pytest.approx(0.5)

    def test_agreement_disjoint_is_zero(self):
        a = make_profile()
        b = TemperatureProfile("b", {0x999: 50.0})
        assert a.agreement_with(b) == 0.0
