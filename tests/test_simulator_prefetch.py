"""Integration of BTB prefetchers with the frontend simulator (Figs. 4 and
21 machinery)."""

import pytest

from repro.btb.btb import BTB
from repro.btb.config import BTBConfig
from repro.btb.replacement.lru import LRUPolicy
from repro.frontend.simulator import FrontendSimulator
from repro.prefetch.confluence import ConfluencePrefetcher
from repro.prefetch.shotgun import ShotgunPrefetcher
from repro.prefetch.twig import TwigPrefetcher

CONFIG = BTBConfig(entries=512, ways=4)


@pytest.fixture(scope="module")
def trace():
    from repro.workloads.datacenter import make_app_trace
    return make_app_trace("tomcat", length=25_000)


def run(trace, prefetcher=None, config=CONFIG):
    sim = FrontendSimulator(btb=BTB(config, LRUPolicy()),
                            prefetcher=prefetcher)
    return sim.simulate(trace)


def test_confluence_reduces_btb_misses(trace):
    base = run(trace)
    pf = ConfluencePrefetcher()
    with_pf = run(trace, prefetcher=pf)
    assert pf.issued > 0
    assert with_pf.btb_stats.misses < base.btb_stats.misses


def test_shotgun_issues_prefetches(trace):
    pf = ShotgunPrefetcher()
    run(trace, prefetcher=pf)
    assert pf.issued > 0
    assert pf.installed <= pf.issued


def test_twig_reduces_btb_misses(trace):
    base = run(trace)
    twig = TwigPrefetcher.train(trace, CONFIG)
    with_twig = run(trace, prefetcher=twig)
    assert twig.triggers_fired > 0
    assert with_twig.btb_stats.misses < base.btb_stats.misses


def test_twig_improves_ipc(trace):
    base = run(trace)
    twig = TwigPrefetcher.train(trace, CONFIG)
    with_twig = run(trace, prefetcher=twig)
    assert with_twig.ipc > base.ipc


def test_prefetch_respects_replacement_policy(trace):
    """Prefetch fills go through policy.choose_victim — with an OPT policy
    the insertions use occurrence-based next-use lookups and never crash."""
    from repro.btb.btb import btb_access_stream
    from repro.btb.replacement.opt import BeladyOptimalPolicy
    pcs, _ = btb_access_stream(trace)
    btb = BTB(CONFIG, BeladyOptimalPolicy.from_stream(pcs))
    sim = FrontendSimulator(btb=btb, prefetcher=ConfluencePrefetcher())
    result = sim.simulate(trace)
    assert result.btb_stats.accesses == len(pcs)
