"""The distributed sweep fabric: differential identity, chaos, peers.

The centerpiece is the differential suite: a sweep distributed over
worker hosts must be *bit-identical* to the serial engine running the
same job list — result values, canonical manifest rows, the union of
artifact digests across the coordinator store and every host shard, and
the merged cache stats.  The chaos tests then prove the identity
survives a worker host SIGKILLing itself mid-sweep and a host severing
its coordinator socket (``partition``), with the coordinator's
re-leasing counters matching the injected faults exactly.

Faults are injected through real :mod:`repro.testing.faults` plans in
the environment, so the process-mode cases kill genuine forked worker
hosts rather than mocks.
"""

from __future__ import annotations

import os
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fabric import (ArtifactServer, FabricCoordinator,
                          PeerBackedStore, run_fabric_sweep)
from repro.harness.engine import ExperimentEngine, JobState, SimJob
from repro.harness.engine.store import ArtifactStore
from repro.telemetry.manifest import canonical_rows, read_run_manifest
from repro.telemetry.metrics import (MetricsRegistry, get_registry,
                                     set_registry)
from repro.testing.faults import (Fault, FaultPlan, PLAN_ENV_VAR,
                                  corrupt_file)
from repro.tools.fabric import _merged_fabric_digests, artifact_digests

LENGTH = 2500

#: Stats counters that must match between the serial and fabric paths
#: (timings legitimately differ; these cannot).
STAT_FIELDS = ("hits", "misses", "corrupt", "digest_failures",
               "quarantined", "quota_rejected", "bytes_read",
               "bytes_written")


@pytest.fixture(autouse=True)
def _clean_slate():
    """Each test gets its own telemetry registry and a clean fault-plan
    slot (chaos tests publish plans into the real environment)."""
    previous_plan = os.environ.pop(PLAN_ENV_VAR, None)
    previous_registry = set_registry(MetricsRegistry(enabled=True))
    yield
    set_registry(previous_registry)
    if previous_plan is None:
        os.environ.pop(PLAN_ENV_VAR, None)
    else:
        os.environ[PLAN_ENV_VAR] = previous_plan


def sweep_jobs(apps=("tomcat", "kafka"), inputs=(0,),
               policies=("lru", "srrip", "thermometer")):
    return [SimJob(app=app, policy=policy, input_id=input_id,
                   length=LENGTH, mode="misses")
            for app in apps for input_id in inputs
            for policy in policies]


def serial_reference(root, jobs):
    """The serial engine's run of ``jobs``: (engine, results)."""
    engine = ExperimentEngine(cache_dir=root, jobs=1)
    return engine, engine.run(jobs)


def value_bytes(results):
    return [pickle.dumps(r.value) for r in results]


def assert_bit_identical(serial_engine, serial_results, coord,
                         fabric_results):
    """The full identity contract: values, canonical rows, digests."""
    assert (value_bytes(fabric_results)
            == value_bytes(serial_results))
    serial_manifest = read_run_manifest(serial_engine.last_manifest)
    fabric_manifest = read_run_manifest(coord.engine.last_manifest)
    assert (canonical_rows(fabric_manifest.rows)
            == canonical_rows(serial_manifest.rows))
    serial_digests = artifact_digests(serial_engine.cache_dir)
    merged, conflicts = _merged_fabric_digests(coord.engine.cache_dir)
    assert not conflicts, f"cross-host divergence: {conflicts}"
    assert merged == serial_digests
    return serial_manifest, fabric_manifest


class TestDifferentialIdentity:
    def test_three_host_sweep_is_bit_identical_to_serial(self, tmp_path):
        """13 apps would take minutes; two apps x two inputs x three
        policies (four batch groups over three hosts, so one host
        steals) exercise every scheduling path the full matrix does.
        The CI ``fabric-smoke`` job runs the full matrix via the CLI."""
        jobs = sweep_jobs(inputs=(0, 1))
        serial_engine, serial_results = serial_reference(
            tmp_path / "serial", jobs)

        coord = FabricCoordinator(tmp_path / "fabric", hosts=3)
        fabric_results = run_fabric_sweep(jobs, coordinator=coord)

        serial_manifest, fabric_manifest = assert_bit_identical(
            serial_engine, serial_results, coord, fabric_results)

        # Merged cache stats: leases are whole batch groups, so each
        # host replays exactly the serial store-op sequence for its
        # groups and the per-job deltas sum to the serial run's.
        serial_cache = serial_manifest.summary["cache"]
        fabric_cache = fabric_manifest.summary["cache"]
        for field in STAT_FIELDS:
            assert fabric_cache[field] == serial_cache[field], field
        assert (fabric_cache["stage_counts"]
                == serial_cache["stage_counts"])

        # Group leases keep the shared-stream multi-policy sweep: the
        # merged worker telemetry shows the same sweep count.
        serial_sweeps = (serial_engine.last_run_telemetry["counters"]
                         ["engine/multi_replay/sweeps"])
        fabric_sweeps = (coord.engine.last_run_telemetry["counters"]
                         ["engine/multi_replay/sweeps"])
        assert fabric_sweeps == serial_sweeps > 0

        # Every artifact was mirrored home exactly once.
        counters = coord.engine.last_run_telemetry["counters"]
        assert counters["fabric/mirrored"] == len(jobs)
        assert counters["fabric/leases"] >= 4

    def test_resume_leg_completes_without_any_worker_host(self,
                                                          tmp_path):
        """A resumed fabric run whose jobs all verify in the store must
        complete without a single worker registering: the engine skips
        everything and the coordinator sees an empty pending list."""
        jobs = sweep_jobs(apps=("tomcat",), policies=("lru", "srrip"))
        coord = FabricCoordinator(tmp_path / "fabric", hosts=2)
        run_fabric_sweep(jobs, coordinator=coord)
        run_id = read_run_manifest(coord.engine.last_manifest).run_id

        resumed_coord = FabricCoordinator(tmp_path / "fabric", hosts=2)
        resumed = resumed_coord.run(jobs, resume=run_id)
        assert [r.state for r in resumed] == [JobState.SKIPPED] * 2
        assert not resumed_coord.live_hosts()
        manifest = read_run_manifest(resumed_coord.engine.last_manifest)
        assert manifest.summary["status"] == "resumed"


class TestChaos:
    def test_host_death_and_partition_are_re_leased_bit_identically(
            self, tmp_path):
        """One host SIGKILLs itself at its first job and another severs
        its coordinator socket at its own first job; the coordinator
        must detect both, re-lease the orphaned groups, and still
        converge to the serial run's exact bytes — with the loss
        counters matching the injected faults one for one."""
        apps = ("tomcat", "kafka", "mysql")
        jobs = sweep_jobs(apps=apps, policies=("lru", "srrip"))
        serial_engine, serial_results = serial_reference(
            tmp_path / "serial", jobs)

        # Three batch groups over three hosts: each host's first lease
        # is its own group, so the two faults hit two distinct hosts.
        FaultPlan(faults=(Fault("die", index=0),
                          Fault("partition", index=4))).install()
        coord = FabricCoordinator(tmp_path / "fabric", hosts=3,
                                  max_retries=2)
        fabric_results = run_fabric_sweep(jobs, coordinator=coord)
        os.environ.pop(PLAN_ENV_VAR, None)

        assert_bit_identical(serial_engine, serial_results, coord,
                             fabric_results)

        counters = coord.engine.last_run_telemetry["counters"]
        assert counters["fabric/hosts_lost"] == 2
        assert counters["fabric/releases"] == 2
        # Whether the supervisor's replacement hosts registered before
        # the survivors finished the retries is a race; the initial
        # three registrations are not.
        assert counters["fabric/hosts_registered"] >= 3
        assert counters["fabric/mirrored"] == len(jobs)
        # The ghost failures went through the normal retry budget.
        assert counters["engine/jobs/retried"] >= 2


class TestPartitionProperty:
    @given(partition_seed=st.integers(0, 10_000),
           hosts=st.integers(2, 4))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[
                  HealthCheck.function_scoped_fixture])
    def test_any_seeded_partition_converges_to_the_same_manifest(
            self, shared_fabric_root, partition_seed, hosts):
        """The partition seed only decides *who computes what*: every
        seeded shuffle of the job groups across any host count must
        produce the reference canonical rows."""
        root, jobs, reference_rows = shared_fabric_root
        coord = FabricCoordinator(root / "fabric", hosts=hosts,
                                  partition_seed=partition_seed)
        results = run_fabric_sweep(jobs, coordinator=coord,
                                   mode="thread")
        assert all(r.state == JobState.SUCCEEDED for r in results)
        manifest = read_run_manifest(coord.engine.last_manifest)
        assert canonical_rows(manifest.rows) == reference_rows
        merged, conflicts = _merged_fabric_digests(root / "fabric")
        assert not conflicts


@pytest.fixture(scope="module")
def shared_fabric_root(tmp_path_factory):
    """One serial reference plus a shared fabric cache for the property
    test: the first example computes cold, later seeds re-lease warm
    artifacts (the scheduling paths are identical either way)."""
    root = tmp_path_factory.mktemp("fabric-prop")
    jobs = sweep_jobs()
    engine = ExperimentEngine(cache_dir=root / "serial", jobs=1)
    engine.run(jobs)
    rows = canonical_rows(read_run_manifest(engine.last_manifest).rows)
    return root, jobs, rows


class TestPeerArtifactExchange:
    def test_peer_blob_is_adopted_byte_verbatim_without_recompute(
            self, tmp_path):
        """An artifact computed on host A is served to host B by
        digest: B's copy is byte-identical, B never recomputes, and the
        exchange is visible in the fetch/served counters."""
        key = "deadbeefcafef00d" * 4
        store_a = ArtifactStore(tmp_path / "a")
        store_a.put("trace", key, {"payload": list(range(64))})
        server = ArtifactServer(store_a)
        address = server.start()
        try:
            store_b = PeerBackedStore(tmp_path / "b",
                                      peers=lambda: {"a": address})
            computed = []
            value = store_b.fetch(
                "trace", key,
                lambda: computed.append(1) or {"recomputed": True})
            assert value == {"payload": list(range(64))}
            assert computed == []
            assert (store_b.path("trace", key).read_bytes()
                    == store_a.path("trace", key).read_bytes())
            counters = get_registry().counters
            assert counters["fabric/peer/fetched"] == 1
            assert counters["fabric/peer/served"] == 1
        finally:
            server.close()

    def test_corrupt_peer_payload_quarantines_and_recomputes_locally(
            self, tmp_path):
        """A peer serving rotten bytes must not poison the consumer:
        the adopted envelope fails its integrity digest, is quarantined
        by the normal store machinery, and the host falls back to local
        recompute."""
        key = "0badc0de0badc0de" * 4
        store_a = ArtifactStore(tmp_path / "a")
        store_a.put("trace", key, {"payload": "pristine"})
        assert corrupt_file(store_a.path("trace", key))
        server = ArtifactServer(store_a)
        address = server.start()
        try:
            store_b = PeerBackedStore(tmp_path / "b",
                                      peers=lambda: {"a": address})
            assert store_b.get("trace", key) is None
            assert store_b.stats.quarantined == 1
            assert get_registry().counters["fabric/peer/corrupt"] == 1

            computed = []
            value = store_b.fetch(
                "trace", key,
                lambda: computed.append(1) or {"payload": "fresh"})
            assert value == {"payload": "fresh"}
            assert computed == [1]
            # The local recompute repaired B's copy for good.
            assert store_b.get("trace", key) == {"payload": "fresh"}
        finally:
            server.close()

    def test_lost_peer_degrades_to_a_plain_miss(self, tmp_path):
        """A peer that stopped answering is an optimisation lost, not a
        failure: the fetch degrades to None and the caller recomputes."""
        store_a = ArtifactStore(tmp_path / "a")
        server = ArtifactServer(store_a)
        address = server.start()
        server.close()
        store_b = PeerBackedStore(tmp_path / "b",
                                  peers=lambda: {"a": address})
        assert store_b.get("trace", "ab" * 32) is None
