"""Unit tests for direction predictors."""

import random

import pytest

from repro.frontend.branch_predictor import (AlwaysTakenPredictor,
                                             BimodalPredictor,
                                             GSharePredictor,
                                             PerceptronPredictor,
                                             PerfectPredictor,
                                             TageLitePredictor)

PREDICTORS = [BimodalPredictor, GSharePredictor, TageLitePredictor,
              PerceptronPredictor]


class TestOracles:
    def test_always_taken(self):
        p = AlwaysTakenPredictor()
        assert p.predict(0x4)
        assert p.predict_and_train(0x4, True)
        assert not p.predict_and_train(0x4, False)

    def test_perfect_always_correct(self):
        p = PerfectPredictor()
        assert p.predict_and_train(0x4, True)
        assert p.predict_and_train(0x4, False)


@pytest.mark.parametrize("cls", PREDICTORS)
class TestLearning:
    def test_learns_strong_bias(self, cls):
        p = cls()
        correct = sum(p.predict_and_train(0x40, True) for _ in range(100))
        assert correct >= 95

    def test_learns_not_taken_bias(self, cls):
        p = cls()
        for _ in range(10):
            p.predict_and_train(0x40, False)
        assert not p.predict(0x40)

    def test_accuracy_tracks_majority_on_random(self, cls):
        """On i.i.d. outcomes, accuracy should approach the bias."""
        rng = random.Random(3)
        p = cls()
        outcomes = [rng.random() < 0.85 for _ in range(2000)]
        correct = sum(p.predict_and_train(0x80, bit) for bit in outcomes)
        assert correct / len(outcomes) > 0.7

    def test_distinct_branches_independent(self, cls):
        if cls in (GSharePredictor, PerceptronPredictor):
            # These designs fold global history into the prediction, so
            # per-branch isolation is not guaranteed by design.
            pytest.skip("history-coupled predictor")
        p = cls()
        for _ in range(20):
            p.predict_and_train(0x40, True)
            p.predict_and_train(0x80, False)
        assert p.predict(0x40)
        assert not p.predict(0x80)


class TestGShare:
    def test_history_distinguishes_contexts(self):
        """gshare can learn a direction that strictly alternates (history-
        correlated), which bimodal cannot."""
        gshare = GSharePredictor(table_bits=10, history_bits=4)
        bimodal = BimodalPredictor(table_bits=10)
        outcome = True
        g_correct = b_correct = 0
        for i in range(600):
            g_correct += gshare.predict_and_train(0x40, outcome)
            b_correct += bimodal.predict_and_train(0x40, outcome)
            outcome = not outcome
        assert g_correct > b_correct


class TestTageLite:
    def test_allocation_on_mispredict(self):
        p = TageLitePredictor()
        # Strictly alternating pattern: needs history tables.
        outcome = True
        correct_late = 0
        for i in range(2000):
            correct = p.predict_and_train(0x44, outcome)
            if i >= 1500:
                correct_late += correct
            outcome = not outcome
        assert correct_late / 500 > 0.9

    def test_validation_of_table_params(self):
        # Sane construction should not raise.
        TageLitePredictor(base_bits=8, table_bits=6, tag_bits=5)


class TestPerceptron:
    def test_validation(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(history_bits=0)

    def test_threshold_formula(self):
        p = PerceptronPredictor(history_bits=16)
        assert p.threshold == int(1.93 * 16 + 14)

    def test_learns_history_correlation(self):
        """Alternating outcomes are linearly separable on history."""
        p = PerceptronPredictor(history_bits=8)
        outcome = True
        late_correct = 0
        for i in range(1200):
            correct = p.predict_and_train(0x40, outcome)
            if i >= 1000:
                late_correct += correct
            outcome = not outcome
        assert late_correct / 200 > 0.9
