"""The example scripts must run to completion (they are the documented
entry points for new users)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=420):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "thermometer" in out
    assert "opt (oracle)" in out


def test_custom_workload():
    out = run_example("custom_workload.py")
    assert "temperature classes" in out
    assert "cross-input temperature agreement" in out


def test_frontend_anatomy_small_app():
    out = run_example("frontend_anatomy.py", "python")
    assert "limit study" in out
    assert "perfect BTB" in out


@pytest.mark.slow
def test_datacenter_speedups_single_app():
    out = run_example("datacenter_speedups.py", "tomcat")
    assert "thermometer" in out


@pytest.mark.slow
def test_btb_size_sweep():
    out = run_example("btb_size_sweep.py")
    assert "entries" in out
