"""Unit tests for reuse-distance analysis (Fig. 5 machinery)."""

import numpy as np
import pytest

from repro.analysis.reuse import (INFINITE_DISTANCE,
                                  forward_set_reuse_distances,
                                  holistic_variance,
                                  set_reuse_distance_sequences,
                                  transient_variance, variance_summary)
from repro.btb.config import BTBConfig


class TestSequences:
    def test_stack_distances(self):
        # All in one set: A B A -> A's distance is 1 (B in between).
        pcs = [1, 2, 1]
        sets = [0, 0, 0]
        seqs = set_reuse_distance_sequences(pcs, sets)
        assert seqs == {1: [1]}

    def test_immediate_reuse_is_zero(self):
        seqs = set_reuse_distance_sequences([1, 1, 1], [0, 0, 0])
        assert seqs == {1: [0, 0]}

    def test_distance_counts_unique_only(self):
        # A B B C A: unique pcs between A's accesses = {B, C} -> 2.
        seqs = set_reuse_distance_sequences([1, 2, 2, 3, 1],
                                            [0, 0, 0, 0, 0])
        assert seqs[1] == [2]

    def test_sets_are_independent(self):
        seqs = set_reuse_distance_sequences([1, 2, 1], [0, 1, 0])
        assert seqs[1] == [0]      # pc 2 lives in another set


class TestForwardDistances:
    def test_forward_mirrors_backward(self):
        pcs = [1, 2, 1]
        out = forward_set_reuse_distances(pcs, [0, 0, 0])
        assert out[0] == 1                     # 1's next reuse at depth 1
        assert out[1] == INFINITE_DISTANCE
        assert out[2] == INFINITE_DISTANCE

    def test_chain(self):
        pcs = [1, 1, 2, 1]
        out = forward_set_reuse_distances(pcs, [0] * 4)
        assert list(out[:3]) == [0, 1, INFINITE_DISTANCE]


class TestVarianceFormulas:
    def test_transient_formula(self):
        # a = [2, 4, 2]: diffs (2-4)^2=4, (4-2)^2=4 -> sum 8 / (n-2)=1 -> 8.
        assert transient_variance([2, 4, 2]) == pytest.approx(8.0)

    def test_holistic_matches_numpy(self):
        a = [2.0, 4.0, 2.0, 6.0]
        assert holistic_variance(a) == pytest.approx(np.var(a, ddof=1))

    def test_minimum_samples(self):
        with pytest.raises(ValueError):
            transient_variance([1, 2])
        with pytest.raises(ValueError):
            holistic_variance([1])

    def test_constant_sequence_zero_variance(self):
        assert transient_variance([3, 3, 3, 3]) == 0.0
        assert holistic_variance([3, 3, 3]) == 0.0

    def test_alternating_transient_exceeds_holistic(self):
        """The paper's key observation on an alternating pattern."""
        a = [1, 9] * 10
        assert transient_variance(a) > 2 * holistic_variance(a)


class TestSummary:
    def test_summary_on_workload(self, small_trace, tiny_config):
        summary = variance_summary(small_trace, tiny_config)
        assert summary.branches_measured > 0
        assert summary.transient > 0
        assert summary.holistic > 0

    def test_paper_claim_on_datacenter_model(self, small_app_trace):
        """Transient variance exceeds holistic variance (Fig. 5)."""
        summary = variance_summary(small_app_trace, BTBConfig())
        assert summary.ratio > 1.5

    def test_empty_trace(self, tiny_config):
        from repro.trace.record import BranchTrace
        summary = variance_summary(BranchTrace.empty(), tiny_config)
        assert summary.branches_measured == 0
        assert summary.ratio == 0.0
