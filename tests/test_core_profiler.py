"""Unit tests for the OPT-replay profiler."""

import pytest

from repro.btb.btb import BTB, btb_access_stream, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.opt import BeladyOptimalPolicy
from repro.core.profiler import BranchProfile, profile_trace

from tests.helpers import trace_of_pcs


class TestBranchProfile:
    def test_hit_to_taken(self):
        record = BranchProfile(pc=4, taken=10, hits=7)
        assert record.hit_to_taken == 70.0

    def test_hit_to_taken_zero_taken(self):
        assert BranchProfile(pc=4).hit_to_taken == 0.0

    def test_bypass_ratio(self):
        record = BranchProfile(pc=4, inserts=3, bypasses=1)
        assert record.bypass_ratio == 0.25
        assert BranchProfile(pc=4).bypass_ratio == 0.0


class TestProfileTrace:
    def test_counts_reconcile_with_opt_replay(self, tiny_config,
                                              small_trace):
        profile = profile_trace(small_trace, tiny_config)
        pcs, _ = btb_access_stream(small_trace)
        opt = run_btb(small_trace, BTB(
            tiny_config, BeladyOptimalPolicy.from_stream(pcs)))
        assert sum(b.taken for b in profile.branches.values()) == len(pcs)
        assert sum(b.hits for b in profile.branches.values()) == opt.hits
        assert sum(b.bypasses for b in profile.branches.values()) == \
            opt.bypasses

    def test_every_taken_branch_profiled(self, tiny_config, small_trace):
        profile = profile_trace(small_trace, tiny_config)
        pcs, _ = btb_access_stream(small_trace)
        assert set(profile.branches) == {int(pc) for pc in pcs}

    def test_hot_branch_identified(self, tiny_config):
        # 0x4 re-accessed constantly; 0x100.. are one-shot cold.
        pcs = []
        for i in range(30):
            pcs.extend([0x4, 0x1000 + 16 * i])
        trace = trace_of_pcs(pcs)
        profile = profile_trace(trace, tiny_config)
        assert profile.branches[0x4].hit_to_taken > 90.0
        assert profile.branches[0x1000].hit_to_taken == 0.0

    def test_elapsed_time_recorded(self, tiny_config, small_trace):
        profile = profile_trace(small_trace, tiny_config)
        assert profile.elapsed_seconds > 0.0

    def test_insert_plus_bypass_equals_misses(self, tiny_config,
                                              small_trace):
        profile = profile_trace(small_trace, tiny_config)
        per_branch = sum(b.inserts + b.bypasses
                         for b in profile.branches.values())
        assert per_branch == profile.stats.misses

    def test_prebuilt_policy_accepted(self, tiny_config, small_trace):
        pcs, _ = btb_access_stream(small_trace)
        policy = BeladyOptimalPolicy.from_stream(pcs)
        profile = profile_trace(small_trace, tiny_config, policy=policy)
        assert profile.num_branches > 0

    def test_repr(self, tiny_config, small_trace):
        text = repr(profile_trace(small_trace, tiny_config))
        assert "OptProfile" in text
