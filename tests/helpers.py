"""Shared helpers for hand-written traces in unit tests."""

from __future__ import annotations

from repro.trace.record import BranchKind, BranchRecord, BranchTrace

__all__ = ["branch", "trace_of_pcs"]


def branch(pc, target=None, kind=BranchKind.UNCOND_DIRECT, taken=True,
           ilen=4):
    """Concise BranchRecord builder for hand-written traces."""
    if target is None:
        target = pc + 64
    return BranchRecord(pc=pc, target=target, kind=kind, taken=taken,
                        ilen=ilen)


def trace_of_pcs(pcs, name="hand"):
    """A trace of always-taken unconditional branches at the given pcs."""
    return BranchTrace.from_records([branch(pc) for pc in pcs], name=name)
