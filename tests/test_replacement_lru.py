"""Unit tests for LRU/MRU (and the policy base class contract)."""

import pytest

from repro.btb.btb import BTB
from repro.btb.config import BTBConfig
from repro.btb.replacement.base import ReplacementPolicy
from repro.btb.replacement.lru import LRUPolicy, MRUPolicy


def full_set_btb(policy):
    """One-set, 3-way BTB for precise victim checks."""
    return BTB(BTBConfig(entries=3, ways=3), policy)


class TestLRU:
    def test_evicts_least_recent_fill(self):
        btb = full_set_btb(LRUPolicy())
        for pc in (0x4, 0x8, 0xC):
            btb.access(pc, 0)
        btb.access(0x10, 0)
        assert not btb.contains(0x4)
        assert btb.contains(0x8) and btb.contains(0xC)

    def test_hit_refreshes_recency(self):
        btb = full_set_btb(LRUPolicy())
        for pc in (0x4, 0x8, 0xC):
            btb.access(pc, 0)
        btb.access(0x4, 0)              # refresh oldest
        btb.access(0x10, 0)             # evicts 0x8 now
        assert btb.contains(0x4)
        assert not btb.contains(0x8)

    def test_recency_order_helper(self):
        policy = LRUPolicy()
        btb = full_set_btb(policy)
        for pc in (0x4, 0x8, 0xC):
            btb.access(pc, 0)
        btb.access(0x4, 0)
        order = policy.recency_order(0)
        # Way 1 (0x8) least recent; way 0 (0x4) most recent.
        assert order[0] == 1
        assert order[-1] == 0

    def test_stack_property_sequence(self):
        """Classic LRU behavior on a cyclic working set larger than the
        cache: zero hits."""
        btb = full_set_btb(LRUPolicy())
        hits = 0
        for _ in range(5):
            for pc in (0x4, 0x8, 0xC, 0x10):
                hits += btb.access(pc, 0)
        assert hits == 0

    def test_reset_clears_state(self):
        policy = LRUPolicy()
        btb = full_set_btb(policy)
        btb.access(0x4, 0)
        policy.reset()
        assert policy.recency_order(0) == [0, 1, 2]


class TestMRU:
    def test_mru_pins_old_entries(self):
        """MRU on a cyclic over-capacity set keeps the first entries."""
        btb = full_set_btb(MRUPolicy())
        hits = 0
        for _ in range(5):
            for pc in (0x4, 0x8, 0xC, 0x10):
                hits += btb.access(pc, 0)
        # 0x4 and 0x8 stay resident after the first round: 2 hits/round.
        assert hits >= 8
        assert btb.contains(0x4)


class TestBaseContract:
    def test_bind_validates(self):
        with pytest.raises(ValueError):
            LRUPolicy().bind(0, 4)

    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            ReplacementPolicy()  # type: ignore[abstract]

    def test_repr_shows_geometry(self):
        policy = LRUPolicy()
        policy.bind(4, 2)
        assert "sets=4" in repr(policy)
