"""Unit tests for two-fold threshold cross-validation."""

import pytest

from repro.core.crossval import (DEFAULT_THRESHOLD_GRID, CrossValResult,
                                 cross_validate_thresholds)

from tests.helpers import trace_of_pcs


def test_default_grid_contains_paper_thresholds():
    assert (50.0, 80.0) in DEFAULT_THRESHOLD_GRID
    assert all(y1 <= y2 for y1, y2 in DEFAULT_THRESHOLD_GRID)


def test_too_short_trace_rejected(tiny_config):
    with pytest.raises(ValueError, match="too short"):
        cross_validate_thresholds(trace_of_pcs([4, 8]), tiny_config)


def test_result_never_worse_than_default(tiny_config, small_trace):
    result = cross_validate_thresholds(
        small_trace, tiny_config,
        grid=((10.0, 40.0), (50.0, 80.0), (70.0, 95.0)))
    assert isinstance(result, CrossValResult)
    assert result.hit_rate >= result.default_hit_rate
    assert len(result.thresholds) == 2


def test_singleton_grid_returns_default(tiny_config, small_trace):
    result = cross_validate_thresholds(small_trace, tiny_config,
                                       grid=((50.0, 80.0),))
    assert result.thresholds == (50.0, 80.0)
    assert result.hit_rate == result.default_hit_rate


def test_winning_threshold_comes_from_grid(tiny_config, small_trace):
    grid = ((10.0, 40.0), (30.0, 60.0), (50.0, 80.0))
    result = cross_validate_thresholds(small_trace, tiny_config, grid=grid)
    assert result.thresholds in grid
