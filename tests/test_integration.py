"""End-to-end integration tests: the paper's headline orderings must hold
on a full pipeline run over an application model."""

import pytest

from repro.btb.btb import BTB, btb_access_stream, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.registry import make_policy
from repro.core.pipeline import ThermometerPipeline
from repro.core.temperature import TemperatureProfile
from repro.frontend.simulator import simulate
from repro.workloads.datacenter import make_app_trace

#: Sized so the tomcat model meaningfully overflows it.
CONFIG = BTBConfig(entries=2048, ways=4)
LENGTH = 40_000


@pytest.fixture(scope="module")
def trace():
    return make_app_trace("tomcat", length=LENGTH)


@pytest.fixture(scope="module")
def pipeline():
    return ThermometerPipeline(config=CONFIG, default_category=1)


@pytest.fixture(scope="module")
def miss_counts(trace, pipeline):
    pcs, _ = btb_access_stream(trace)
    counts = {}
    for name in ("lru", "srrip", "ghrp", "hawkeye"):
        counts[name] = run_btb(trace, BTB(CONFIG, make_policy(name))).misses
    counts["opt"] = run_btb(
        trace, BTB(CONFIG, make_policy("opt", stream=pcs))).misses
    counts["thermometer"] = pipeline.run(trace).misses
    return counts


class TestMissOrdering:
    def test_opt_is_best(self, miss_counts):
        assert miss_counts["opt"] == min(miss_counts.values())

    def test_thermometer_beats_all_priors(self, miss_counts):
        for prior in ("lru", "srrip", "ghrp", "hawkeye"):
            assert miss_counts["thermometer"] < miss_counts[prior]

    def test_thermometer_captures_part_of_opt(self, miss_counts):
        """A meaningful share of OPT's gain survives quantization.  (The
        share is lower at this deliberately small 2K-entry BTB, exactly as
        the paper's Fig. 19 size sweep shows.)"""
        lru = miss_counts["lru"]
        opt_gain = lru - miss_counts["opt"]
        therm_gain = lru - miss_counts["thermometer"]
        assert therm_gain > 0.15 * opt_gain

    def test_priors_are_marginal(self, miss_counts):
        """Prior policies recover far less of OPT's gain than Thermometer
        (the paper's core motivation)."""
        lru = miss_counts["lru"]
        therm_gain = lru - miss_counts["thermometer"]
        srrip_gain = lru - miss_counts["srrip"]
        assert therm_gain > 2 * srrip_gain


class TestIPCOrdering:
    def test_speedup_chain(self, trace, pipeline):
        pcs, _ = btb_access_stream(trace)
        base = simulate(trace, btb=BTB(CONFIG, make_policy("lru")))
        therm = simulate(trace, btb=BTB(
            CONFIG, pipeline.policy(pipeline.build_hints(trace))))
        opt = simulate(trace, btb=BTB(
            CONFIG, make_policy("opt", stream=pcs)))
        perfect = simulate(trace, perfect_btb=True)
        assert perfect.ipc > opt.ipc >= therm.ipc > base.ipc


class TestCrossInput:
    def test_training_profile_transfers(self, pipeline):
        """Fig. 13: a profile from input #0 still beats LRU on input #1."""
        test_trace = make_app_trace("tomcat", input_id=1, length=LENGTH)
        train_trace = make_app_trace("tomcat", input_id=0, length=LENGTH)
        lru = run_btb(test_trace, BTB(CONFIG, make_policy("lru")))
        therm = pipeline.run(test_trace, train_trace=train_trace)
        assert therm.misses < lru.misses

    def test_temperatures_mostly_stable(self, pipeline):
        t0 = pipeline.temperatures(make_app_trace("tomcat", 0, LENGTH))
        t1 = pipeline.temperatures(make_app_trace("tomcat", 1, LENGTH))
        assert t0.agreement_with(t1) > 0.5


class TestHintPortability:
    def test_hints_survive_serialization(self, trace, pipeline, tmp_path):
        """Hints written to disk (the 'updated binary') reproduce the same
        replacement behavior when loaded back."""
        from repro.core.hints import HintMap
        hints = pipeline.build_hints(trace)
        path = tmp_path / "hints.json"
        hints.to_json(path)
        loaded = HintMap.from_json(path)
        a = pipeline.run(trace, hints=hints)
        b = pipeline.run(trace, hints=loaded)
        assert a.misses == b.misses
