"""Unit tests for hint maps and quantizers."""

import pytest

from repro.core.hints import (DEFAULT_THRESHOLDS, HintMap,
                              ThresholdQuantizer, UniformQuantizer)
from repro.core.temperature import TemperatureProfile


def profile_with(percentages):
    return TemperatureProfile("t", dict(percentages))


class TestHintMap:
    def test_mapping_protocol(self):
        hints = HintMap({0x4: 2, 0x8: 0}, num_categories=3,
                        default_category=1)
        assert hints[0x4] == 2
        assert hints.get(0x8) == 0
        assert hints.get(0xFF) == 1            # default
        assert hints.get(0xFF, 0) == 0         # explicit default
        assert 0x4 in hints and 0xFF not in hints
        assert len(hints) == 2
        assert set(iter(hints)) == {0x4, 0x8}

    def test_validation(self):
        with pytest.raises(ValueError):
            HintMap({}, num_categories=1)
        with pytest.raises(ValueError):
            HintMap({}, num_categories=3, default_category=3)
        with pytest.raises(ValueError):
            HintMap({0x4: 5}, num_categories=3)

    def test_hint_bits(self):
        assert HintMap({}, num_categories=2).hint_bits == 1
        assert HintMap({}, num_categories=3).hint_bits == 2
        assert HintMap({}, num_categories=4).hint_bits == 2
        assert HintMap({}, num_categories=16).hint_bits == 4

    def test_btb_storage_overhead(self):
        """§3.4: 2 bits × 8K entries = 2KB (16384 bits)."""
        hints = HintMap({}, num_categories=3)
        assert hints.btb_storage_overhead_bits(8192) == 16384

    def test_category_counts(self):
        hints = HintMap({1: 0, 2: 2, 3: 2}, num_categories=3)
        assert hints.category_counts() == [1, 0, 2]

    def test_json_roundtrip(self, tmp_path):
        hints = HintMap({0x400000: 2, 0x400004: 0}, num_categories=3,
                        default_category=1)
        path = tmp_path / "hints.json"
        hints.to_json(path)
        loaded = HintMap.from_json(path)
        assert loaded.categories == hints.categories
        assert loaded.num_categories == 3
        assert loaded.default_category == 1


class TestThresholdQuantizer:
    def test_default_is_paper(self):
        assert ThresholdQuantizer().thresholds == DEFAULT_THRESHOLDS

    def test_category_boundaries(self):
        q = ThresholdQuantizer((50.0, 80.0))
        assert q.category(50.0) == 0
        assert q.category(50.1) == 1
        assert q.category(80.0) == 1
        assert q.category(80.1) == 2
        assert q.num_categories == 3

    def test_quantize_profile(self):
        hints = ThresholdQuantizer().quantize(
            profile_with({1: 90.0, 2: 60.0, 3: 5.0}))
        assert hints.categories == {1: 2, 2: 1, 3: 0}

    def test_monotone_in_temperature(self):
        q = ThresholdQuantizer((30.0, 60.0, 90.0))
        categories = [q.category(y) for y in range(0, 101, 5)]
        assert categories == sorted(categories)


class TestUniformQuantizer:
    def test_equal_population_bins(self):
        profile = profile_with({i: float(i) for i in range(1, 91, 10)})
        hints = UniformQuantizer(3).quantize(profile)
        counts = hints.category_counts()
        assert sum(counts) == 9
        assert max(counts) - min(counts) <= 1

    def test_empty_profile(self):
        hints = UniformQuantizer(3).quantize(profile_with({}))
        assert len(hints) == 0

    def test_invalid_categories(self):
        with pytest.raises(ValueError):
            UniformQuantizer(1)

    def test_categories_ordered_by_temperature(self):
        profile = profile_with({1: 5.0, 2: 50.0, 3: 95.0})
        hints = UniformQuantizer(3).quantize(profile)
        assert hints[1] <= hints[2] <= hints[3]
