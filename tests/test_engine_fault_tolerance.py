"""Engine fault tolerance: retries, timeouts, accounting, re-sharding.

Faults are injected through :mod:`repro.testing.faults` plans published
via the real ``REPRO_FAULT_PLAN`` environment variable, so the parallel
cases exercise genuine ``ProcessPoolExecutor`` workers (including a
worker SIGKILLing itself mid-batch) rather than mocks.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.harness.engine import (ExperimentEngine, ExperimentError,
                                  JobState, JobTimeoutError, SimJob,
                                  _backoff_sleep, backoff_delay,
                                  job_deadline)
from repro.telemetry.manifest import read_events, read_run_manifest
from repro.telemetry.metrics import MetricsRegistry, set_registry
from repro.testing.faults import Fault, FaultPlan, PLAN_ENV_VAR

JOBS = [SimJob(app=app, policy=policy, length=3000, mode="misses")
        for app in ("tomcat", "python") for policy in ("lru", "srrip")]


@pytest.fixture(autouse=True)
def _fault_env():
    """Each test gets a clean plan slot and its own telemetry registry."""
    previous_plan = os.environ.pop(PLAN_ENV_VAR, None)
    previous_registry = set_registry(MetricsRegistry(enabled=True))
    yield
    set_registry(previous_registry)
    if previous_plan is None:
        os.environ.pop(PLAN_ENV_VAR, None)
    else:
        os.environ[PLAN_ENV_VAR] = previous_plan


class TestBackoff:
    def test_delay_grows_exponentially_and_caps(self):
        rng = random.Random(0)
        delays = [backoff_delay(n, base=0.5, cap=4.0, rng=rng)
                  for n in range(8)]
        # Jitter keeps each delay within (0.5, 1.0] of the nominal value.
        for n, delay in enumerate(delays):
            nominal = min(4.0, 0.5 * 2 ** n)
            assert 0.5 * nominal < delay <= nominal

    def test_jitter_is_rng_driven(self):
        a = backoff_delay(2, rng=random.Random(1))
        b = backoff_delay(2, rng=random.Random(2))
        assert a != b

    def test_sleep_skipped_under_test_fast(self, monkeypatch):
        slept = []
        monkeypatch.setattr("repro.harness.engine.time.sleep",
                            slept.append)
        monkeypatch.setenv("REPRO_TEST_FAST", "1")
        _backoff_sleep(3.0)
        assert slept == []
        monkeypatch.setenv("REPRO_TEST_FAST", "")
        _backoff_sleep(3.0)
        assert slept == [3.0]


class TestJobDeadline:
    def test_expires(self):
        import time
        with pytest.raises(JobTimeoutError):
            with job_deadline(0.05):
                time.sleep(5.0)

    def test_no_budget_is_a_noop(self):
        with job_deadline(None):
            pass
        with job_deadline(0):
            pass


class TestSerialRetries:
    def test_transient_raise_is_retried_to_success(self, tmp_path):
        FaultPlan(faults=(Fault("raise", 1),)).install()
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1,
                                  max_retries=1)
        results = engine.run(JOBS)
        assert [r.state for r in results] == [JobState.SUCCEEDED] * 4
        counters = engine.last_run_telemetry["counters"]
        assert counters["engine/jobs/retried"] == 1
        assert counters["faults/injected"] == 1
        assert counters["engine/jobs/succeeded"] == len(JOBS)
        # The journal shows job 1 ran twice, everything else once.
        events = read_events(engine.last_manifest)
        running = [e["index"] for e in events if e["state"] == "running"]
        assert running.count(1) == 2
        assert all(running.count(i) == 1 for i in (0, 2, 3))

    def test_retry_and_timeout_counted_exactly_once_per_job(self,
                                                            tmp_path):
        """A job retried twice is one 'retried' job; a timed-out-then-
        rescued job is one 'timed_out' job — the counters are per job,
        not per attempt."""
        FaultPlan(faults=(Fault("hang", 0, seconds=5.0),
                          Fault("raise", 1, attempts=(0, 1)))).install()
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1,
                                  max_retries=2, job_timeout=0.2)
        results = engine.run(JOBS)
        assert [r.state for r in results] == [JobState.SUCCEEDED] * 4
        counters = engine.last_run_telemetry["counters"]
        assert counters["engine/jobs/retried"] == 2
        assert counters["engine/jobs/timed_out"] == 1
        assert "engine/jobs/failed" not in counters

    def test_exhausted_retries_fail_with_resumable_error(self, tmp_path):
        FaultPlan(faults=(Fault("raise", 2, attempts=(0, 1, 2, 3)),)
                  ).install()
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1,
                                  max_retries=1)
        with pytest.raises(ExperimentError) as info:
            engine.run(JOBS)
        assert info.value.run_id == engine.last_run_id
        assert info.value.failures[0]["index"] == 2
        assert "resume" in str(info.value)
        # Attempts are bounded: 1 + max_retries, no more.
        events = read_events(engine.last_manifest)
        running = [e["index"] for e in events if e["state"] == "running"]
        assert running.count(2) == 2
        manifest = read_run_manifest(engine.last_manifest)
        assert manifest.summary["status"] == "failed"
        assert manifest.summary["job_states"][JobState.FAILED] == 1
        assert manifest.summary["job_states"][JobState.SUCCEEDED] == 3
        # The failed job still has a manifest row with its error.
        failed_rows = [r for r in manifest.rows
                       if r["state"] == JobState.FAILED]
        assert len(failed_rows) == 1
        assert "InjectedFault" in failed_rows[0]["error"]
        assert len(manifest.summary["exceptions"]) == 1

    def test_timeout_exhaustion_reports_timed_out_state(self, tmp_path):
        FaultPlan(faults=(Fault("hang", 0, seconds=5.0,
                                attempts=(0, 1)),)).install()
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1,
                                  max_retries=1, job_timeout=0.2)
        with pytest.raises(ExperimentError):
            engine.run(JOBS[:2])
        manifest = read_run_manifest(engine.last_manifest)
        assert manifest.summary["status"] == "failed"
        assert manifest.summary["job_states"][JobState.TIMED_OUT] == 1
        counters = engine.last_run_telemetry["counters"]
        assert counters["engine/jobs/timed_out"] == 1
        assert counters["engine/jobs/failed"] == 1


class TestParallelFaults:
    def test_worker_raise_does_not_kill_its_batch(self, tmp_path):
        FaultPlan(faults=(Fault("raise", 0),)).install()
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=2,
                                  max_retries=1)
        results = engine.run(JOBS)
        assert [r.state for r in results] == [JobState.SUCCEEDED] * 4
        counters = engine.last_run_telemetry["counters"]
        assert counters["engine/jobs/retried"] == 1
        assert "engine/batches/worker_lost" not in counters

    def test_worker_death_resharded_not_fatal(self, tmp_path):
        """A worker SIGKILLing itself mid-batch breaks the whole pool;
        the engine must re-shard and still converge to correct results."""
        reference = ExperimentEngine(cache_dir=tmp_path / "ref",
                                     jobs=1).run(JOBS)
        FaultPlan(faults=(Fault("die", 1),)).install()
        engine = ExperimentEngine(cache_dir=tmp_path / "faulted", jobs=2,
                                  max_retries=1)
        results = engine.run(JOBS)
        assert [r.state for r in results] == [JobState.SUCCEEDED] * 4
        assert [r.value for r in results] == [r.value for r in reference]
        counters = engine.last_run_telemetry["counters"]
        assert counters["engine/batches/worker_lost"] >= 1
        manifest = read_run_manifest(engine.last_manifest)
        assert manifest.summary["status"] == "completed"
