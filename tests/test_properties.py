"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.btb.btb import BTB
from repro.btb.config import BTBConfig
from repro.btb.replacement.fifo import FIFOPolicy, RandomPolicy
from repro.btb.replacement.lru import LRUPolicy
from repro.btb.replacement.opt import NEVER, BeladyOptimalPolicy, \
    compute_next_use
from repro.btb.replacement.srrip import SRRIPPolicy
from repro.btb.replacement.thermometer import ThermometerPolicy
from repro.core.hints import ThresholdQuantizer, UniformQuantizer
from repro.core.temperature import TemperatureProfile
from repro.analysis.reuse import holistic_variance, transient_variance
from repro.trace.formats import read_trace, write_trace
from repro.trace.record import BranchKind, BranchRecord, BranchTrace

# -- strategies ---------------------------------------------------------

pc_streams = st.lists(st.integers(min_value=0, max_value=15),
                      min_size=1, max_size=80)

records = st.builds(
    BranchRecord,
    pc=st.integers(min_value=0, max_value=2**40).map(lambda x: x * 4),
    target=st.integers(min_value=0, max_value=2**40).map(lambda x: x * 4),
    kind=st.sampled_from(list(BranchKind)),
    taken=st.booleans(),
    ilen=st.integers(min_value=1, max_value=30),
).map(lambda r: r._replace(taken=True)
      if r.kind != BranchKind.COND_DIRECT else r)


# -- next-use -----------------------------------------------------------

@given(pc_streams)
def test_next_use_matches_naive(pcs):
    nxt = compute_next_use(pcs)
    for i, pc in enumerate(pcs):
        expected = NEVER
        for j in range(i + 1, len(pcs)):
            if pcs[j] == pc:
                expected = j
                break
        assert nxt[i] == expected


# -- OPT dominance ------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(pc_streams, st.integers(min_value=1, max_value=3))
def test_opt_dominates_every_practical_policy(pcs, ways):
    """Belady-with-bypass never has fewer hits than any on-line policy."""
    config = BTBConfig(entries=2 * ways, ways=ways)
    addresses = [pc * 4 for pc in pcs]

    def run(policy):
        btb = BTB(config, policy)
        return sum(btb.access(pc, 0, i) for i, pc in enumerate(addresses))

    opt_hits = run(BeladyOptimalPolicy.from_stream(addresses))
    for policy in (LRUPolicy(), FIFOPolicy(), SRRIPPolicy(),
                   RandomPolicy(seed=1),
                   ThermometerPolicy({}, default_category=0)):
        assert opt_hits >= run(policy)


# -- LRU stack property -------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(pc_streams, st.integers(min_value=1, max_value=4))
def test_lru_hit_iff_stack_distance_within_ways(pcs, ways):
    """LRU hits exactly when the set-local stack distance < ways."""
    config = BTBConfig(entries=ways, ways=ways)   # one set
    btb = BTB(config, LRUPolicy())
    stack = []
    for i, pc in enumerate(pcs):
        address = pc * 4
        if address in stack:
            depth = stack.index(address)
            expected = depth < ways
            stack.remove(address)
        else:
            expected = False
        stack.insert(0, address)
        assert btb.access(address, 0, i) == expected


# -- BTB structural invariants -----------------------------------------

@settings(max_examples=30, deadline=None)
@given(pc_streams)
def test_btb_invariants(pcs):
    config = BTBConfig(entries=8, ways=2)
    btb = BTB(config, LRUPolicy())
    for i, pc in enumerate(pcs):
        btb.access(pc * 4, 0, i)
    stats = btb.stats
    assert stats.hits + stats.misses == stats.accesses == len(pcs)
    resident = btb.resident_pcs()
    assert len(resident) == len(set(resident))       # no duplicate tags
    assert btb.occupancy <= config.capacity
    assert stats.compulsory_fills + stats.evictions + stats.bypasses == \
        stats.misses


# -- trace round trip ---------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.lists(records, min_size=0, max_size=40),
       st.sampled_from([".btrc", ".btrc.gz", ".btxt"]))
def test_trace_roundtrip_property(tmp_path_factory, recs, suffix):
    trace = BranchTrace.from_records(recs, name="prop")
    trace.validate()
    path = tmp_path_factory.mktemp("traces") / f"t{suffix}"
    write_trace(trace, path)
    assert read_trace(path) == trace


# -- quantizers ---------------------------------------------------------

percentages = st.dictionaries(
    st.integers(min_value=1, max_value=10_000).map(lambda x: x * 4),
    st.floats(min_value=0.0, max_value=100.0),
    min_size=1, max_size=60)


@given(percentages)
def test_threshold_quantizer_monotone(pcts):
    quantizer = ThresholdQuantizer((30.0, 70.0))
    hints = quantizer.quantize(TemperatureProfile("p", pcts))
    items = sorted(pcts.items(), key=lambda kv: kv[1])
    categories = [hints[pc] for pc, _ in items]
    assert categories == sorted(categories)
    assert all(0 <= c < 3 for c in categories)


@given(percentages, st.integers(min_value=2, max_value=8))
def test_uniform_quantizer_in_bounds_and_monotone(pcts, k):
    hints = UniformQuantizer(k).quantize(TemperatureProfile("p", pcts))
    assert all(0 <= c < k for c in hints.categories.values())
    items = sorted(pcts.items(), key=lambda kv: kv[1])
    categories = [hints[pc] for pc, _ in items]
    assert categories == sorted(categories)


# -- variance formulas --------------------------------------------------

distances = st.lists(st.floats(min_value=0.0, max_value=1000.0),
                     min_size=3, max_size=50)


@given(distances)
def test_holistic_variance_matches_numpy(values):
    np.testing.assert_allclose(holistic_variance(values),
                               np.var(values, ddof=1), rtol=1e-9,
                               atol=1e-9)


@given(distances)
def test_transient_variance_nonnegative(values):
    assert transient_variance(values) >= 0.0


# -- set index ----------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**48),
       st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=16))
def test_set_index_in_range(pc, sets_factor, ways):
    config = BTBConfig(entries=sets_factor * ways, ways=ways)
    assert 0 <= config.set_index(pc * 4) < config.num_sets


# -- PLRU properties ------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(pc_streams, st.sampled_from([2, 4, 8]))
def test_plru_never_evicts_most_recently_touched(pcs, ways):
    from repro.btb.replacement.plru import TreePLRUPolicy
    config = BTBConfig(entries=ways, ways=ways)
    policy = TreePLRUPolicy()
    btb = BTB(config, policy)
    last_touched = None
    for i, pc in enumerate(pcs):
        address = pc * 4
        resident_before = set(btb.resident_pcs())
        full = len(resident_before) == ways
        btb.access(address, 0, i)
        if full and address not in resident_before and last_touched \
                and last_touched != address:
            # An eviction happened; the most recently touched entry must
            # survive it.
            assert last_touched in btb.resident_pcs()
        last_touched = address


# -- storage model --------------------------------------------------------

@given(st.integers(min_value=4, max_value=1 << 16),
       st.integers(min_value=0, max_value=8))
def test_iso_storage_monotone_and_bounded(entries, hint_bits):
    from repro.btb.storage import iso_storage_entries
    result = iso_storage_entries(entries, hint_bits=hint_bits)
    assert result <= entries
    assert result % 4 == 0
    if hint_bits == 0:
        assert result >= (entries // 4) * 4


# -- temperature/bypass bookkeeping ---------------------------------------

@settings(max_examples=25, deadline=None)
@given(pc_streams)
def test_profiler_counts_reconcile(pcs):
    from repro.core.profiler import profile_trace
    from tests.helpers import trace_of_pcs
    trace = trace_of_pcs([pc * 4 for pc in pcs])
    config = BTBConfig(entries=4, ways=2)
    profile = profile_trace(trace, config)
    total_taken = sum(b.taken for b in profile.branches.values())
    total_hits = sum(b.hits for b in profile.branches.values())
    total_misses = sum(b.inserts + b.bypasses
                       for b in profile.branches.values())
    assert total_taken == len(pcs)
    assert total_hits == profile.stats.hits
    assert total_misses == profile.stats.misses
    for branch in profile.branches.values():
        assert 0.0 <= branch.hit_to_taken <= 100.0
