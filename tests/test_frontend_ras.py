"""Unit tests for the return address stack."""

import pytest

from repro.frontend.ras import ReturnAddressStack


def test_lifo_order():
    ras = ReturnAddressStack(8)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.pop(0x200)
    assert ras.pop(0x100)


def test_empty_pop_mispredicts():
    ras = ReturnAddressStack(8)
    assert not ras.pop(0x100)
    assert ras.mispredictions == 1


def test_wrong_target_mispredicts():
    ras = ReturnAddressStack(8)
    ras.push(0x100)
    assert not ras.pop(0x104)
    assert ras.mispredictions == 1


def test_overflow_discards_oldest():
    ras = ReturnAddressStack(2)
    for addr in (0x100, 0x200, 0x300):
        ras.push(addr)
    assert ras.overflows == 1
    assert ras.pop(0x300)
    assert ras.pop(0x200)
    assert not ras.pop(0x100)      # discarded frame


def test_depth_tracking():
    ras = ReturnAddressStack(4)
    assert ras.depth == 0
    ras.push(0x100)
    assert ras.depth == 1
    ras.pop(0x100)
    assert ras.depth == 0


def test_counters():
    ras = ReturnAddressStack(4)
    ras.push(0x100)
    ras.pop(0x100)
    assert ras.pushes == 1
    assert ras.pops == 1


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        ReturnAddressStack(0)


def test_repr():
    assert "entries=4" in repr(ReturnAddressStack(4))
