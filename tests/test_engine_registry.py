"""Registry completeness: every policy in ``repro.btb.replacement`` must be
constructible through :func:`~repro.btb.replacement.registry.make_policy`
and must round-trip through the experiment engine.

This is the tripwire for the next policy someone adds but forgets to
register (exactly what happened to ``thermometer-dueling`` before this
suite existed).
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro.btb.replacement as replacement_pkg
from repro.btb.replacement.base import ReplacementPolicy
from repro.btb.replacement.registry import (HINTED_POLICY_FACTORIES,
                                            make_policy, policy_names)
from repro.harness.engine import ExperimentEngine, SimJob


def _concrete_policy_classes():
    """Every non-abstract ReplacementPolicy subclass defined anywhere in
    the ``repro.btb.replacement`` package."""
    classes = set()
    for info in pkgutil.iter_modules(replacement_pkg.__path__):
        if info.name in ("base", "registry"):
            continue
        module = importlib.import_module(
            f"{replacement_pkg.__name__}.{info.name}")
        for _, obj in inspect.getmembers(module, inspect.isclass):
            if (issubclass(obj, ReplacementPolicy)
                    and obj.__module__ == module.__name__
                    and not inspect.isabstract(obj)):
                classes.add(obj)
    return classes


def _registered_policy_types():
    """name → concrete type for every name make_policy can build."""
    types = {}
    for name in policy_names():
        if name == "opt":
            policy = make_policy(name, stream=[4, 8, 4])
        elif name in HINTED_POLICY_FACTORIES:
            policy = make_policy(name, hints={4: 0})
        else:
            policy = make_policy(name)
        types[name] = type(policy)
    return types


def test_every_policy_module_is_registered():
    concrete = _concrete_policy_classes()
    assert concrete, "policy discovery found nothing — wrong package?"
    registered = set(_registered_policy_types().values())
    missing = {cls.__name__ for cls in concrete} - \
              {cls.__name__ for cls in registered}
    assert not missing, (
        f"policies defined in repro/btb/replacement/ but absent from "
        f"registry.make_policy: {sorted(missing)} — register them so the "
        f"harness sweeps and the engine can reach them")


def test_policy_names_sorted_and_unique():
    names = policy_names()
    assert names == sorted(names)
    assert len(names) == len(set(names))


@pytest.mark.parametrize("policy", sorted(
    set(policy_names()) | {"thermometer-7979"}))
def test_policy_round_trips_through_engine(tmp_path, policy):
    """Every registered policy (plus the iso-storage alias) runs through
    the engine, caches, and reloads without error."""
    job = SimJob(app="tomcat", policy=policy, length=2500, mode="misses")
    engine = ExperimentEngine(cache_dir=tmp_path / "store", jobs=1)
    cold = engine.run([job])[0]
    assert cold.value.accesses > 0
    warm = ExperimentEngine(cache_dir=tmp_path / "store",
                            jobs=1).run([job])[0]
    assert warm.cached
    assert warm.value == cold.value
