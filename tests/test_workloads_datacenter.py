"""Unit tests for the 13 data center application models."""

import pytest

from repro.btb.btb import btb_access_stream
from repro.workloads.datacenter import (APPLICATIONS, app_names, app_spec,
                                        make_app_trace, make_app_workload)

PAPER_APPS = [
    "cassandra", "clang", "drupal", "finagle-chirper", "finagle-http",
    "kafka", "mediawiki", "mysql", "postgresql", "python", "tomcat",
    "verilator", "wordpress",
]


def test_all_thirteen_apps_present():
    assert app_names() == PAPER_APPS
    assert len(APPLICATIONS) == 13


def test_app_spec_lookup():
    assert app_spec("kafka").name == "kafka"


def test_unknown_app_reports_choices():
    with pytest.raises(KeyError, match="cassandra"):
        app_spec("memcached")


def test_specs_named_consistently():
    for name, spec in APPLICATIONS.items():
        assert spec.name == name


@pytest.mark.parametrize("app", ["cassandra", "python", "verilator"])
def test_traces_generate_and_validate(app):
    trace = make_app_trace(app, length=5000)
    trace.validate()
    assert len(trace) == 5000
    assert trace.name == f"{app}#0"


def test_verilator_has_largest_branch_footprint():
    footprints = {}
    for app in ("python", "tomcat", "verilator"):
        trace = make_app_trace(app, length=20_000)
        pcs, _ = btb_access_stream(trace)
        footprints[app] = len(set(pcs.tolist()))
    assert footprints["verilator"] > footprints["tomcat"]
    assert footprints["verilator"] > footprints["python"]


def test_python_is_smallest_footprint():
    """python is the paper's near-zero-headroom application."""
    spec_py = app_spec("python")
    others = [s for n, s in APPLICATIONS.items() if n != "python"]
    assert all(spec_py.layout.n_hot_loops <= s.layout.n_hot_loops
               for s in others)


def test_input_variants_share_layout():
    workload = make_app_workload("drupal")
    t0 = workload.generate(input_id=0, length=10_000)
    t1 = workload.generate(input_id=3, length=10_000)
    shared = set(t0.pcs.tolist()) & set(t1.pcs.tolist())
    assert len(shared) > 0.4 * len(set(t0.pcs.tolist()))


def test_default_length_override():
    trace = make_app_trace("kafka")
    assert len(trace) == app_spec("kafka").default_length
