"""Unit tests for the partial-tag (compressed) BTB."""

import pytest

from repro.btb.compressed import (PartialTagBTB,
                                  iso_storage_compressed_config)
from repro.btb.config import BTBConfig
from repro.btb.replacement.lru import LRUPolicy
from repro.btb.storage import BTBEntryLayout


def find_alias(btb, pc, limit=200_000):
    """A different pc mapping to the same set with the same partial tag."""
    s = btb.config.set_index(pc)
    tag = btb.partial_tag(pc)
    candidate = pc
    for _ in range(limit):
        candidate += 4 * btb.config.num_sets    # stay in the same set
        if candidate != pc and btb.partial_tag(candidate) == tag:
            assert btb.config.set_index(candidate) == s
            return candidate
    pytest.skip("no alias found within search limit")


class TestPartialTagBTB:
    def test_validation(self):
        with pytest.raises(ValueError):
            PartialTagBTB(BTBConfig(entries=8, ways=2), tag_bits=0)

    def test_true_hit_still_works(self):
        btb = PartialTagBTB(BTBConfig(entries=8, ways=2), LRUPolicy(),
                            tag_bits=8)
        assert not btb.access(0x40, 0x100)
        assert btb.access(0x40, 0x100)
        assert not btb.last_hit_was_false
        assert btb.false_hits == 0

    def test_alias_produces_false_hit(self):
        btb = PartialTagBTB(BTBConfig(entries=8, ways=2), LRUPolicy(),
                            tag_bits=4)
        pc = 0x40
        alias = find_alias(btb, pc)
        btb.access(pc, 0x100)
        assert btb.access(alias, 0x200)          # "hit" on the aliased entry
        assert btb.last_hit_was_false
        assert btb.false_hits == 1

    def test_false_hit_rate(self):
        btb = PartialTagBTB(BTBConfig(entries=8, ways=2), LRUPolicy(),
                            tag_bits=4)
        pc = 0x40
        alias = find_alias(btb, pc)
        btb.access(pc, 0)
        btb.access(alias, 0)
        btb.access(alias, 0)
        assert btb.false_hit_rate == pytest.approx(1 / 2)

    def test_wider_tags_reduce_false_hits(self, small_app_trace):
        from repro.btb.btb import btb_access_stream
        pcs, targets = btb_access_stream(small_app_trace)
        rates = {}
        for bits in (4, 8, 16):
            btb = PartialTagBTB(BTBConfig(entries=256, ways=4),
                                LRUPolicy(), tag_bits=bits)
            for i in range(len(pcs)):
                btb.access(int(pcs[i]), int(targets[i]), i)
            rates[bits] = btb.false_hit_rate
        assert rates[4] > rates[16]
        assert rates[16] < 0.01

    def test_simulator_charges_false_hits(self, small_app_trace):
        from repro.frontend.simulator import simulate
        btb = PartialTagBTB(BTBConfig(entries=256, ways=4), LRUPolicy(),
                            tag_bits=3)
        result = simulate(small_app_trace, btb=btb)
        assert btb.false_hits > 0
        assert result.indirect_mispredicts > 0


class TestIsoStorageCompressed:
    def test_smaller_tags_buy_entries(self):
        base = BTBConfig(entries=8192, ways=4)
        compressed = iso_storage_compressed_config(base, tag_bits=12)
        assert compressed.entries > base.entries
        assert compressed.entries % 4 == 0

    def test_same_tags_same_entries(self):
        base = BTBConfig(entries=8192, ways=4)
        layout = BTBEntryLayout()
        same = iso_storage_compressed_config(base, tag_bits=layout.tag_bits,
                                             layout=layout)
        assert same.entries == base.entries

    def test_hint_bits_eat_into_gain(self):
        base = BTBConfig(entries=8192, ways=4)
        plain = iso_storage_compressed_config(base, tag_bits=12)
        hinted = iso_storage_compressed_config(base, tag_bits=12,
                                               hint_bits=2)
        assert hinted.entries < plain.entries

    def test_validation(self):
        with pytest.raises(ValueError):
            iso_storage_compressed_config(BTBConfig(), tag_bits=0)
