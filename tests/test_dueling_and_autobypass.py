"""Tests for the dueling-Thermometer extension and the profile-time
auto-bypass rule."""

import pytest

from repro.btb.btb import BTB, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.dueling_thermometer import \
    DuelingThermometerPolicy
from repro.btb.replacement.lru import LRUPolicy
from repro.core.hints import HintMap
from repro.core.pipeline import ThermometerPipeline, bypass_recommended


def hints_with(hot, warm, cold):
    categories = {}
    pc = 0x1000
    for count, cat in ((cold, 0), (warm, 1), (hot, 2)):
        for _ in range(count):
            categories[pc] = cat
            pc += 4
    return HintMap(categories, num_categories=3)


class TestBypassRecommended:
    def test_enabled_when_warm_and_hot_fit(self):
        config = BTBConfig(entries=1024, ways=4)
        assert bypass_recommended(hints_with(500, 400, 5000), config)

    def test_disabled_when_population_far_exceeds_capacity(self):
        config = BTBConfig(entries=1024, ways=4)
        # 2x capacity of warm-and-hotter branches: bypass must turn off.
        assert not bypass_recommended(hints_with(1500, 600, 100), config)

    def test_slight_oversubscription_keeps_bypass(self):
        config = BTBConfig(entries=1024, ways=4)
        assert bypass_recommended(hints_with(900, 400, 100), config)

    def test_pipeline_applies_rule(self, small_app_trace):
        tiny = ThermometerPipeline(config=BTBConfig(entries=64, ways=4))
        policy = tiny.policy(tiny.build_hints(small_app_trace))
        assert not policy.bypass_enabled
        big = ThermometerPipeline(config=BTBConfig(entries=32768, ways=4))
        policy = big.policy(big.build_hints(small_app_trace))
        assert policy.bypass_enabled

    def test_explicit_override_wins(self, small_app_trace):
        pipeline = ThermometerPipeline(config=BTBConfig(entries=64, ways=4),
                                       bypass_enabled=True)
        policy = pipeline.policy(pipeline.build_hints(small_app_trace))
        assert policy.bypass_enabled

    def test_undersized_btb_no_longer_loses_to_lru(self, small_app_trace):
        """The regression the rule exists for: Thermometer at a BTB far
        below the working set must stay at least LRU-competitive."""
        config = BTBConfig(entries=256, ways=4)
        pipeline = ThermometerPipeline(config=config)
        therm = pipeline.run(small_app_trace)
        lru = run_btb(small_app_trace, BTB(config, LRUPolicy()))
        assert therm.misses <= lru.misses * 1.02


class TestDuelingThermometer:
    def test_leader_roles_assigned(self):
        policy = DuelingThermometerPolicy({}, leader_spacing=8)
        policy.bind(64, 4)
        assert set(policy._role) == {0, 1, 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            DuelingThermometerPolicy({}, leader_spacing=1)

    def test_followers_flip_with_psel(self):
        policy = DuelingThermometerPolicy({}, leader_spacing=8)
        policy.bind(64, 4)
        follower = next(s for s in range(64) if policy._role[s] == 0)
        policy._psel = 0
        assert policy._uses_hints(follower)
        policy._psel = policy.psel_max
        assert not policy._uses_hints(follower)

    def test_hint_share_bounds(self):
        policy = DuelingThermometerPolicy({})
        policy.bind(64, 4)
        assert 0.0 <= policy.hint_share <= 1.0

    def test_competitive_with_plain_thermometer(self, small_app_trace):
        from repro.btb.replacement.thermometer import ThermometerPolicy
        from repro.core.pipeline import ThermometerPipeline
        config = BTBConfig(entries=1024, ways=4)
        pipeline = ThermometerPipeline(config=config)
        hints = pipeline.build_hints(small_app_trace)
        duel = run_btb(small_app_trace, BTB(
            config, DuelingThermometerPolicy(hints, default_category=1)))
        plain = run_btb(small_app_trace, BTB(
            config, ThermometerPolicy(hints, default_category=1)))
        lru = run_btb(small_app_trace, BTB(config, LRUPolicy()))
        # Dueling is bounded roughly by the better of its two leaders.
        assert duel.misses <= max(plain.misses, lru.misses) * 1.05
