"""The deterministic fault-injection plans themselves.

The engine-facing behaviour (retries, timeouts, resume) lives in
``test_engine_fault_tolerance.py`` / ``test_engine_resume.py``; this file
pins down the plan machinery those tests lean on: seeded determinism,
JSON/env round-trips, and the individual fault applications.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.engine import ArtifactStore
from repro.testing.faults import (FAULT_KINDS, Fault, FaultPlan,
                                  InjectedFault, PLAN_ENV_VAR,
                                  active_fault_plan, corrupt_file, inject)


@pytest.fixture(autouse=True)
def _clean_plan_env():
    previous = os.environ.pop(PLAN_ENV_VAR, None)
    yield
    if previous is None:
        os.environ.pop(PLAN_ENV_VAR, None)
    else:
        os.environ[PLAN_ENV_VAR] = previous


class TestFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="fault kind"):
            Fault(kind="explode", index=0)

    def test_fires_only_on_listed_attempts(self):
        fault = Fault(kind="raise", index=3, attempts=(0, 2))
        assert fault.fires(3, 0)
        assert not fault.fires(3, 1)
        assert fault.fires(3, 2)
        assert not fault.fires(2, 0)

    def test_dict_round_trip(self):
        fault = Fault(kind="hang", index=7, attempts=(1,), seconds=2.5)
        assert Fault.from_dict(fault.to_dict()) == fault


class TestFaultPlan:
    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(123, n_jobs=50, rate=0.4)
        b = FaultPlan.random(123, n_jobs=50, rate=0.4)
        assert a == b
        assert a.seed == 123
        # A different seed gives a different schedule (50 jobs at 40%
        # collide with vanishing probability).
        assert a != FaultPlan.random(124, n_jobs=50, rate=0.4)

    def test_random_respects_rate_bounds(self):
        assert len(FaultPlan.random(1, n_jobs=30, rate=0.0)) == 0
        full = FaultPlan.random(1, n_jobs=30, rate=1.0)
        assert len(full) == 30
        assert {f.kind for f in full.faults} <= set(FAULT_KINDS)

    def test_fault_for_matches_index_and_attempt(self):
        plan = FaultPlan(faults=(Fault("raise", 2),
                                 Fault("hang", 4, attempts=(1,))))
        assert plan.fault_for(2, 0).kind == "raise"
        assert plan.fault_for(2, 1) is None
        assert plan.fault_for(4, 0) is None
        assert plan.fault_for(4, 1).kind == "hang"
        assert plan.fault_for(0, 0) is None

    def test_json_round_trip(self):
        plan = FaultPlan(faults=(Fault("die", 0), Fault("corrupt", 3)),
                         seed=9)
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestEnvWiring:
    def test_no_env_means_no_plan(self):
        assert active_fault_plan() is None

    def test_install_and_read_back(self):
        plan = FaultPlan(faults=(Fault("raise", 1),), seed=5)
        plan.install()
        assert active_fault_plan() == plan

    def test_plan_from_file_reference(self, tmp_path):
        plan = FaultPlan(faults=(Fault("corrupt", 2),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        os.environ[PLAN_ENV_VAR] = f"@{path}"
        assert active_fault_plan() == plan

    def test_malformed_plan_raises(self):
        os.environ[PLAN_ENV_VAR] = "{not json"
        with pytest.raises(ValueError, match=PLAN_ENV_VAR):
            active_fault_plan()

    def test_cache_tracks_env_changes(self):
        FaultPlan(faults=(Fault("raise", 0),)).install()
        assert active_fault_plan().fault_for(0).kind == "raise"
        FaultPlan(faults=(Fault("hang", 0),)).install()
        assert active_fault_plan().fault_for(0).kind == "hang"


class TestApplication:
    def test_raise_fault(self):
        with pytest.raises(InjectedFault):
            inject(Fault("raise", 0))

    def test_die_downgrades_outside_workers(self):
        """In-process runs must never SIGKILL the caller."""
        with pytest.raises(InjectedFault, match="downgraded"):
            inject(Fault("die", 0), in_worker=False)

    def test_hang_sleeps_then_returns(self, monkeypatch):
        slept = []
        monkeypatch.setattr("repro.testing.faults.time.sleep",
                            slept.append)
        inject(Fault("hang", 0, seconds=1.5))
        assert slept == [1.5]

    def test_corrupt_file_flips_payload(self, tmp_path):
        target = tmp_path / "blob"
        target.write_bytes(b"abc")
        assert corrupt_file(target)
        assert target.read_bytes() == b"ab" + bytes([ord("c") ^ 0xFF])
        assert not corrupt_file(tmp_path / "missing")

    def test_corrupted_artifact_fails_store_digest(self, tmp_path):
        """The corruption model must be exactly what the store's
        integrity digest catches — otherwise 'corrupt' faults would test
        nothing."""
        store = ArtifactStore(tmp_path)
        key = store.key("misc", tag="x")
        store.put("misc", key, {"v": 1})
        assert corrupt_file(store.path("misc", key))
        assert store.get("misc", key) is None
        assert store.stats.digest_failures == 1
