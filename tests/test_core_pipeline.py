"""Unit/integration tests for the end-to-end Thermometer pipeline."""

import pytest

from repro.btb.btb import BTB, btb_access_stream, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.lru import LRUPolicy
from repro.btb.replacement.opt import BeladyOptimalPolicy
from repro.btb.replacement.thermometer import ThermometerPolicy
from repro.core.hints import ThresholdQuantizer, UniformQuantizer
from repro.core.pipeline import ThermometerPipeline, thermometer_policy_for


@pytest.fixture
def pipeline(tiny_config):
    return ThermometerPipeline(config=tiny_config, default_category=1)


class TestStages:
    def test_build_hints_covers_taken_branches(self, pipeline, small_trace):
        hints = pipeline.build_hints(small_trace)
        pcs, _ = btb_access_stream(small_trace)
        assert set(hints.categories) == {int(pc) for pc in pcs}

    def test_policy_construction(self, pipeline, small_trace):
        policy = pipeline.policy(pipeline.build_hints(small_trace))
        assert isinstance(policy, ThermometerPolicy)
        assert policy.default_category == 1

    def test_run_same_input(self, pipeline, small_trace, tiny_config):
        stats = pipeline.run(small_trace)
        lru = run_btb(small_trace, BTB(tiny_config, LRUPolicy()))
        assert stats.accesses == lru.accesses

    def test_run_with_prebuilt_hints(self, pipeline, small_trace):
        hints = pipeline.build_hints(small_trace)
        stats = pipeline.run(small_trace, hints=hints)
        assert stats.accesses > 0


class TestOrderingInvariants:
    """The headline ordering must hold: OPT >= Thermometer >= LRU hits."""

    def test_thermometer_between_lru_and_opt(self, pipeline, small_trace,
                                             tiny_config):
        therm = pipeline.run(small_trace)
        lru = run_btb(small_trace, BTB(tiny_config, LRUPolicy()))
        pcs, _ = btb_access_stream(small_trace)
        opt = run_btb(small_trace, BTB(
            tiny_config, BeladyOptimalPolicy.from_stream(pcs)))
        assert opt.hits >= therm.hits
        assert therm.hits >= lru.hits

    def test_uniform_quantizer_supported(self, small_trace, tiny_config):
        pipeline = ThermometerPipeline(config=tiny_config,
                                       quantizer=UniformQuantizer(4),
                                       default_category=1)
        stats = pipeline.run(small_trace)
        assert stats.accesses > 0


class TestConvenience:
    def test_thermometer_policy_for(self, small_trace, tiny_config):
        policy = thermometer_policy_for(small_trace, tiny_config)
        assert isinstance(policy, ThermometerPolicy)

    def test_custom_thresholds(self, small_trace, tiny_config):
        policy = thermometer_policy_for(small_trace, tiny_config,
                                        thresholds=(30.0, 60.0))
        categories = set(policy._hints.categories.values())
        assert categories <= {0, 1, 2}
