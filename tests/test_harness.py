"""Tests for the experiment harness: runner, reporting, experiments."""

import io

import pytest

from repro.harness.experiments import (ALL_EXPERIMENTS, fig1, fig3, fig11,
                                       fig15, fig17,
                                       _thresholds_for_categories)
from repro.harness.reporting import ExperimentResult, format_table
from repro.harness.runner import Harness, HarnessConfig


@pytest.fixture(scope="module")
def harness():
    """A tiny two-app harness shared by the experiment smoke tests."""
    return Harness(HarnessConfig(apps=("tomcat", "python"), length=20_000))


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "x"], [["a", 1.5], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in text
        assert "22" in text

    def test_result_render_and_markdown(self):
        result = ExperimentResult("figX", "title", ["app", "v"],
                                  [["a", 1.0]], notes="note")
        assert "figX" in result.render()
        assert "note" in result.render()
        md = result.to_markdown()
        assert md.startswith("### figX")
        assert "| a | 1.00 |" in md

    def test_column_and_row_access(self):
        result = ExperimentResult("f", "t", ["app", "v"],
                                  [["a", 1.0], ["b", 2.0]])
        assert result.column("v") == [1.0, 2.0]
        assert result.row("b") == ["b", 2.0]
        with pytest.raises(KeyError):
            result.column("nope")
        with pytest.raises(KeyError):
            result.row("nope")


class TestRunner:
    def test_default_config_is_not_shared(self):
        """Regression: the default config used to be one module-level
        ``HarnessConfig()`` instance evaluated at ``def`` time, so every
        default-constructed harness aliased the same object."""
        first, second = Harness(), Harness()
        assert first.config == second.config
        assert first.config is not second.config

    def test_trace_cached(self, harness):
        assert harness.trace("tomcat") is harness.trace("tomcat")

    def test_profile_cached_per_config(self, harness):
        a = harness.profile("tomcat")
        b = harness.profile("tomcat")
        assert a is b

    def test_hints_respect_thresholds(self, harness):
        hints = harness.hints("tomcat", thresholds=(20.0, 90.0))
        assert hints.num_categories == 3

    def test_build_btb_thermometer_requires_hints(self, harness):
        with pytest.raises(ValueError, match="hints"):
            harness.build_btb("thermometer", harness.trace("tomcat"))

    def test_build_btb_7979_variant(self, harness):
        btb = harness.build_btb("thermometer-7979", harness.trace("tomcat"),
                                hints=harness.hints("tomcat"))
        assert btb.config.entries == 7979

    def test_lru_sim_cached(self, harness):
        assert harness.lru_sim("tomcat") is harness.lru_sim("tomcat")

    def test_miss_reduction_pct(self, harness):
        from repro.btb.btb import BTBStats
        base = BTBStats(misses=100)
        better = BTBStats(misses=80)
        assert harness.miss_reduction_pct(better, base) == 20.0
        assert harness.miss_reduction_pct(better, BTBStats()) == 0.0


class TestExperiments:
    def test_fig1_structure(self, harness):
        result = fig1(harness)
        assert result.columns[0] == "app"
        assert [row[0] for row in result.rows] == ["tomcat", "python",
                                                   "Avg"]

    def test_fig3_reports_mpki(self, harness):
        result = fig3(harness)
        assert all(row[1] >= 0 for row in result.rows)

    def test_fig11_orderings(self, harness):
        result = fig11(harness)
        avg = result.row("Avg")
        opt = avg[result.columns.index("opt")]
        therm = avg[result.columns.index("thermometer")]
        srrip = avg[result.columns.index("srrip")]
        assert opt >= therm >= srrip - 0.5

    def test_fig15_coverage_bounds(self, harness):
        result = fig15(harness)
        assert all(0.0 <= row[1] <= 100.0 for row in result.rows)

    def test_fig17_small_suite(self, harness):
        result = fig17(harness, count=2, length=10_000)
        metrics = {row[0]: row[1] for row in result.rows}
        assert metrics["wins_vs_ghrp"] + metrics["losses_vs_ghrp"] \
            + metrics["ties"] == 2

    def test_threshold_vector_generation(self):
        assert _thresholds_for_categories(3) == (50.0, 80.0)
        assert _thresholds_for_categories(2) == (50.0,)
        assert len(_thresholds_for_categories(16)) == 15

    def test_all_experiments_registered(self):
        assert len(ALL_EXPERIMENTS) == 20        # figs 1-9 and 11-21
        assert "fig10" not in ALL_EXPERIMENTS    # design diagram


class TestReproduceDriver:
    def test_quick_subset_runs(self):
        from repro.harness.reproduce import run_experiments
        stream = io.StringIO()
        results = run_experiments(names=["fig3"], preset="quick",
                                  apps=["python"], stream=stream)
        assert "fig3" in results
        assert "fig3" in stream.getvalue()

    def test_unknown_experiment_rejected(self):
        from repro.harness.reproduce import run_experiments
        with pytest.raises(ValueError, match="unknown experiments"):
            run_experiments(names=["fig99"], preset="quick")

    def test_parallel_jobs_run(self):
        from repro.harness.reproduce import run_experiments
        stream = io.StringIO()
        results = run_experiments(names=["fig3", "fig14"], preset="quick",
                                  apps=["python"], stream=stream, jobs=2)
        assert set(results) == {"fig3", "fig14"}
