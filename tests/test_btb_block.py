"""Unit tests for the block-based BTB organization."""

import pytest

from repro.btb.block_btb import BlockBTB, run_block_btb
from repro.btb.btb import BTB, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.lru import LRUPolicy


def one_set(ways=2, **kwargs):
    return BlockBTB(BTBConfig(entries=ways, ways=ways), LRUPolicy(),
                    **kwargs)


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockBTB(BTBConfig(), block_bytes=24)
        with pytest.raises(ValueError):
            BlockBTB(BTBConfig(), branches_per_entry=0)

    def test_block_of(self):
        btb = one_set(block_bytes=32)
        assert btb.block_of(0x47) == 0x40
        assert btb.block_of(0x40) == 0x40

    def test_miss_then_hit(self):
        btb = one_set()
        assert not btb.access(0x40, 0x100)
        assert btb.access(0x40, 0x100)
        assert btb.lookup(0x40) == 0x100

    def test_same_block_branches_share_entry(self):
        btb = one_set(block_bytes=32, branches_per_entry=2)
        btb.access(0x40, 0x100)
        btb.access(0x48, 0x200)      # same 32B block
        assert btb.resident_blocks == 1
        assert btb.resident_branches == 2
        assert btb.sharing_factor == 2.0
        assert btb.access(0x40, 0x100)
        assert btb.access(0x48, 0x200)

    def test_branch_miss_inside_resident_block(self):
        btb = one_set(branches_per_entry=2)
        btb.access(0x40, 0)
        assert not btb.access(0x44, 0)          # block hit, branch miss
        assert btb.stats.branch_misses == 1

    def test_slot_recycling_is_fifo(self):
        btb = one_set(branches_per_entry=2)
        btb.access(0x40, 0)
        btb.access(0x44, 0)
        btb.access(0x48, 0)                     # recycles 0x40's slot
        assert btb.stats.slot_evictions == 1
        assert not btb.contains(0x40)
        assert btb.contains(0x44)
        assert btb.contains(0x48)

    def test_block_eviction_replaces_all_branches(self):
        btb = one_set(ways=1, block_bytes=32)
        btb.access(0x40, 0)
        btb.access(0x48, 0)
        btb.access(0x80, 0)                     # different block, way full
        assert btb.stats.evictions == 1
        assert not btb.contains(0x40)
        assert not btb.contains(0x48)
        assert btb.contains(0x80)


class TestVersusBranchBTB:
    def test_tag_amortization_helps_dense_blocks(self, small_app_trace):
        """At equal entry counts, block entries cover more branches when
        branch density per block is high."""
        config = BTBConfig(entries=512, ways=4)
        block = BlockBTB(config, LRUPolicy(), block_bytes=64,
                         branches_per_entry=4)
        run_block_btb(small_app_trace, block)
        assert block.sharing_factor > 1.1

    def test_stats_reconcile(self, small_app_trace):
        config = BTBConfig(entries=512, ways=4)
        block = BlockBTB(config, LRUPolicy())
        stats = run_block_btb(small_app_trace, block)
        assert stats.hits + stats.misses == stats.accesses
        assert stats.branch_misses <= stats.misses

    def test_policy_sees_block_addresses(self, small_app_trace):
        """The replacement policy receives block base addresses, so any
        policy (including hint-driven ones keyed by block) plugs in."""
        seen = []

        class Spy(LRUPolicy):
            def on_fill(self, set_idx, way, pc, index):
                seen.append(pc)
                super().on_fill(set_idx, way, pc, index)

        block = BlockBTB(BTBConfig(entries=64, ways=4), Spy(),
                         block_bytes=32)
        run_block_btb(small_app_trace[:2000], block)
        assert seen
        assert all(addr % 32 == 0 for addr in seen)
