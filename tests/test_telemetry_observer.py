"""TelemetryObserver aggregates must agree with EventRecorder's ground
truth on the same replay."""

from __future__ import annotations

import pytest

from repro.btb.btb import BTB, run_btb
from repro.btb.config import BTBConfig
from repro.btb.observer import EventRecorder
from repro.btb.replacement.registry import make_policy
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.observer import TelemetryObserver
from repro.workloads.datacenter import make_app_trace


@pytest.fixture(scope="module")
def replay():
    """One tiny-BTB replay observed by both observers at once."""
    config = BTBConfig(entries=64, ways=2)  # small: plenty of evictions
    trace = make_app_trace("tomcat", length=20_000)
    btb = BTB(config, make_policy("lru"))
    recorder = btb.add_observer(EventRecorder())
    telemetry = btb.add_observer(TelemetryObserver())
    stats = run_btb(trace, btb)
    return config, stats, recorder, telemetry


class TestAgainstEventRecorder:
    def test_event_counters_match(self, replay):
        _, stats, recorder, telemetry = replay
        assert telemetry.hits == len(recorder.of_kind("hit"))
        assert telemetry.fills == len(recorder.of_kind("fill"))
        assert telemetry.evictions == len(recorder.of_kind("evict"))
        assert telemetry.bypasses == len(recorder.of_kind("bypass"))
        assert telemetry.hits == stats.hits
        assert telemetry.evictions == stats.evictions

    def test_every_eviction_has_an_age(self, replay):
        _, stats, _, telemetry = replay
        assert stats.evictions > 0
        assert telemetry.eviction_ages.count == telemetry.evictions

    def test_eviction_ages_match_recorded_fills(self, replay):
        """Recompute each victim's residency from the raw event log and
        compare against the histogram's total."""
        _, _, recorder, telemetry = replay
        fill_index = {}
        ages = []
        for event in recorder.events:
            if event.kind == "fill":
                fill_index[(event.set_idx, event.way)] = event.index
            elif event.kind == "evict":
                ages.append(event.index - fill_index[(event.set_idx,
                                                      event.way)])
        assert telemetry.eviction_ages.sum == sum(ages)
        assert telemetry.eviction_ages.count == len(ages)

    def test_occupancy_covers_all_sets(self, replay):
        config, _, _, telemetry = replay
        hist = telemetry.occupancy_histogram(num_sets=config.num_sets,
                                             ways=config.ways)
        assert hist.count == config.num_sets
        # One bucket per way count (0..ways) plus overflow, which a
        # well-formed observer never uses.
        assert len(hist.counts) == config.ways + 2
        assert hist.counts[-1] == 0

    def test_occupancy_never_exceeds_ways(self, replay):
        config, _, _, telemetry = replay
        assert max(telemetry._set_occupancy.values()) <= config.ways


class TestRecord:
    def test_record_into_registry(self, replay):
        config, _, _, telemetry = replay
        reg = MetricsRegistry(enabled=True)
        telemetry.record(reg, num_sets=config.num_sets, ways=config.ways)
        assert reg.counters["btb/hits"] == telemetry.hits
        assert reg.counters["btb/evictions"] == telemetry.evictions
        assert reg.histograms["btb/eviction_age"].count == \
            telemetry.eviction_ages.count
        assert reg.histograms["btb/set_occupancy"].count == config.num_sets

    def test_record_respects_disabled_registry(self, replay):
        _, _, _, telemetry = replay
        reg = MetricsRegistry(enabled=False)
        telemetry.record(reg)
        assert reg.counters == {} and reg.histograms == {}


class TestBypassCounting:
    def test_bypasses_observed(self):
        """An OPT replay on a tiny BTB exercises the bypass hook."""
        config = BTBConfig(entries=8, ways=2)
        trace = make_app_trace("tomcat", length=5_000)
        from repro.trace.stream import access_stream_for
        btb = BTB(config, make_policy(
            "opt", stream=access_stream_for(trace, config)))
        telemetry = btb.add_observer(TelemetryObserver())
        stats = run_btb(trace, btb)
        assert telemetry.bypasses == stats.bypasses > 0
