"""The public API surface: everything advertised in ``repro.__all__``
exists, and the README quickstart works verbatim."""

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"missing export: {name}"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_policy_names_cover_paper_policies():
    names = set(repro.policy_names())
    assert {"lru", "srrip", "ghrp", "hawkeye", "opt",
            "thermometer"} <= names


def test_readme_quickstart_flow():
    trace = repro.make_app_trace("cassandra", length=8000)
    pipeline = repro.ThermometerPipeline()
    hints = pipeline.build_hints(trace)
    btb = repro.BTB(repro.BTBConfig(), pipeline.policy(hints))
    thermometer = repro.run_btb(trace, btb)
    lru = repro.run_btb(
        trace, repro.BTB(repro.BTBConfig(), repro.make_policy("lru")))
    pcs, _ = repro.btb_access_stream(trace)
    opt = repro.run_btb(
        trace, repro.BTB(repro.BTBConfig(),
                         repro.make_policy("opt", stream=pcs)))
    assert opt.misses <= thermometer.misses
    assert thermometer.accesses == lru.accesses


def test_subpackage_docstrings_present():
    """Every public module documents itself."""
    import repro.analysis
    import repro.btb
    import repro.core
    import repro.frontend
    import repro.harness
    import repro.prefetch
    import repro.trace
    import repro.workloads
    for module in (repro, repro.analysis, repro.btb, repro.core,
                   repro.frontend, repro.harness, repro.prefetch,
                   repro.trace, repro.workloads):
        assert module.__doc__ and len(module.__doc__) > 40
