"""Unit tests for the BTB model itself (independent of policy details)."""

import pytest

from repro.btb.btb import BTB, BTBStats, IndirectBTB, btb_access_stream, \
    run_btb
from repro.btb.config import BTBConfig
from repro.btb.observer import EventRecorder
from repro.btb.replacement.base import BYPASS, ReplacementPolicy
from repro.btb.replacement.lru import LRUPolicy
from repro.trace.record import BranchKind, BranchTrace

from tests.helpers import branch, trace_of_pcs


class TestBTBBasics:
    def test_miss_then_hit(self, tiny_config):
        btb = BTB(tiny_config)
        assert not btb.access(0x40, 0x100)
        assert btb.access(0x40, 0x100)
        assert btb.stats.hits == 1
        assert btb.stats.misses == 1

    def test_lookup_nonmutating(self, tiny_config):
        btb = BTB(tiny_config)
        assert btb.lookup(0x40) is None
        assert btb.stats.accesses == 0
        btb.access(0x40, 0x999)
        assert btb.lookup(0x40) == 0x999
        assert btb.contains(0x40)

    def test_target_updated_on_hit(self, tiny_config):
        btb = BTB(tiny_config)
        btb.access(0x40, 0x100)
        btb.access(0x40, 0x200)
        assert btb.lookup(0x40) == 0x200

    def test_occupancy_and_resident_pcs(self, tiny_config):
        btb = BTB(tiny_config)
        for pc in (0x40, 0x44, 0x48):
            btb.access(pc, 0)
        assert btb.occupancy == 3
        assert set(btb.resident_pcs()) == {0x40, 0x44, 0x48}

    def test_entry_view(self, tiny_config):
        btb = BTB(tiny_config)
        btb.access(0x40, 0x123)
        s = tiny_config.set_index(0x40)
        entries = [btb.entry(s, w) for w in range(tiny_config.ways)]
        stored = [e for e in entries if e is not None]
        assert len(stored) == 1
        assert stored[0].pc == 0x40
        assert stored[0].target == 0x123
        assert not stored[0].reused

    def test_eviction_on_full_set(self, tiny_config):
        btb = BTB(tiny_config, LRUPolicy())
        # 4 sets x 2 ways; these three pcs map to set 0 of 4 sets.
        same_set = [0x0, 0x10, 0x20]
        for pc in same_set:
            btb.access(pc, 0)
        assert btb.stats.evictions == 1
        assert not btb.contains(0x0)       # LRU victim

    def test_insert_is_not_a_demand_access(self, tiny_config):
        btb = BTB(tiny_config)
        assert btb.insert(0x40, 0x100)
        assert btb.stats.accesses == 0
        assert btb.contains(0x40)

    def test_insert_existing_updates_target_only(self, tiny_config):
        btb = BTB(tiny_config)
        btb.insert(0x40, 0x100)
        assert not btb.insert(0x40, 0x200)
        assert btb.lookup(0x40) == 0x200

    def test_invalid_victim_rejected(self, tiny_config):
        class BadPolicy(ReplacementPolicy):
            name = "bad"
            def choose_victim(self, set_idx, resident_pcs, incoming_pc,
                              index):
                return 99
        btb = BTB(tiny_config, BadPolicy())
        for pc in (0x0, 0x10):
            btb.access(pc, 0)
        with pytest.raises(ValueError, match="invalid victim"):
            btb.access(0x20, 0)

    def test_bypass_policy_counts_bypasses(self, tiny_config):
        class AlwaysBypass(ReplacementPolicy):
            name = "always-bypass"
            supports_bypass = True
            def choose_victim(self, set_idx, resident_pcs, incoming_pc,
                              index):
                return BYPASS
        btb = BTB(tiny_config, AlwaysBypass())
        for pc in (0x0, 0x10, 0x20):
            btb.access(pc, 0)
        assert btb.stats.bypasses == 1
        assert btb.stats.evictions == 0
        assert not btb.contains(0x20)

    def test_observer_sees_eviction(self, tiny_config):
        btb = BTB(tiny_config, LRUPolicy())
        recorder = btb.add_observer(EventRecorder())
        for pc in (0x0, 0x10, 0x20):
            btb.access(pc, 0)
        evictions = [(e.pc, e.other) for e in recorder.of_kind("evict")]
        assert evictions == [(0x0, 0x20)]

    def test_observer_full_event_stream(self, tiny_config):
        btb = BTB(tiny_config, LRUPolicy())
        recorder = btb.add_observer(EventRecorder())
        btb.access(0x0, 0x100, index=0)     # fill
        btb.access(0x10, 0x200, index=1)    # fill
        btb.access(0x0, 0x104, index=2)     # hit (target drift)
        btb.access(0x20, 0x300, index=3)    # evict 0x10 (LRU) + fill
        kinds = [e.kind for e in recorder.events]
        assert kinds == ["fill", "fill", "hit", "evict", "fill"]
        hit = recorder.of_kind("hit")[0]
        assert (hit.pc, hit.other, hit.index) == (0x0, 0x104, 2)
        evict = recorder.of_kind("evict")[0]
        assert (evict.pc, evict.other) == (0x10, 0x20)
        assert btb.stats.target_mismatches == 1
        btb.remove_observer(recorder)
        btb.access(0x30, 0x400, index=4)
        assert len(recorder.events) == 5

    def test_observer_sees_bypass(self, tiny_config):
        class AlwaysBypass(ReplacementPolicy):
            name = "always-bypass"
            supports_bypass = True
            def choose_victim(self, set_idx, resident_pcs, incoming_pc,
                              index):
                return BYPASS
        btb = BTB(tiny_config, AlwaysBypass())
        recorder = btb.add_observer(EventRecorder())
        for pc in (0x0, 0x10, 0x20):
            btb.access(pc, 0)
        bypasses = recorder.of_kind("bypass")
        assert len(bypasses) == 1
        assert bypasses[0].pc == 0x20
        assert bypasses[0].way == -1


class TestBTBStats:
    def test_rates(self):
        stats = BTBStats(accesses=10, hits=7, misses=3)
        assert stats.hit_rate == 0.7
        assert stats.miss_rate == pytest.approx(0.3)

    def test_empty_rates(self):
        assert BTBStats().hit_rate == 0.0
        assert BTBStats().miss_rate == 0.0

    def test_mpki(self):
        stats = BTBStats(misses=5)
        assert stats.mpki(1000) == 5.0
        assert stats.mpki(0) == 0.0

    def test_addition(self):
        total = BTBStats(accesses=1, hits=1) + BTBStats(accesses=2, misses=2)
        assert total.accesses == 3
        assert total.hits == 1
        assert total.misses == 2


class TestAccessStream:
    def test_excludes_not_taken_and_returns(self):
        records = [
            branch(0x40),                                         # in
            branch(0x44, kind=BranchKind.COND_DIRECT, taken=False),
            branch(0x48, kind=BranchKind.RETURN),                 # out: RAS
            branch(0x4C, kind=BranchKind.CALL_DIRECT),            # in
        ]
        trace = BranchTrace.from_records(records)
        pcs, targets = btb_access_stream(trace)
        assert list(pcs) == [0x40, 0x4C]
        assert len(targets) == 2

    def test_run_btb_counts_match_stream(self, tiny_config, small_trace):
        btb = BTB(tiny_config)
        stats = run_btb(small_trace, btb)
        pcs, _ = btb_access_stream(small_trace)
        assert stats.accesses == len(pcs)

    def test_run_btb_per_branch_records(self, tiny_config):
        trace = trace_of_pcs([0x40, 0x40, 0x44])
        stats, per_branch = run_btb(trace, BTB(tiny_config),
                                    record_per_branch=True)
        assert per_branch[0x40] == [2, 1]       # two accesses, one hit
        assert per_branch[0x44] == [1, 0]


class TestIndirectBTB:
    def test_learns_target(self):
        ibtb = IndirectBTB(entries=64)
        assert not ibtb.predict_and_update(0x40, 0x100)
        # Repeating the same (history, target) path becomes predictable.
        hits = sum(ibtb.predict_and_update(0x40, 0x100) for _ in range(8))
        assert hits >= 6

    def test_invalid_entries_rejected(self):
        with pytest.raises(ValueError):
            IndirectBTB(entries=0)
