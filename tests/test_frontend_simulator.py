"""Unit/behavioral tests for the frontend timing simulator."""

import pytest

from repro.btb.btb import BTB, btb_access_stream
from repro.btb.config import BTBConfig
from repro.btb.replacement.lru import LRUPolicy
from repro.btb.replacement.opt import BeladyOptimalPolicy
from repro.frontend.branch_predictor import PerfectPredictor
from repro.frontend.params import FrontendParams
from repro.frontend.simulator import FrontendSimulator, SimResult, simulate
from repro.trace.record import BranchKind, BranchTrace

from tests.helpers import branch


def sim_lru(trace, config=None, **kwargs):
    config = config or BTBConfig()
    return simulate(trace, btb=BTB(config, LRUPolicy()), **kwargs)


class TestSimResult:
    def test_ipc(self):
        r = SimResult("t", instructions=100, cycles=50.0)
        assert r.ipc == 2.0
        assert SimResult("t").ipc == 0.0

    def test_speedup_over(self):
        slow = SimResult("t", instructions=100, cycles=100.0)
        fast = SimResult("t", instructions=100, cycles=80.0)
        assert fast.speedup_over(slow) == pytest.approx(0.25)
        assert fast.speedup_over(SimResult("t")) == 0.0

    def test_breakdown_text(self, small_trace):
        result = sim_lru(small_trace)
        text = result.breakdown()
        assert "BTB miss redirects" in text
        assert "IPC" in text


class TestSimulatorBehavior:
    def test_deterministic(self, small_trace):
        a = sim_lru(small_trace)
        b = sim_lru(small_trace)
        assert a.cycles == b.cycles

    def test_invalid_warmup_rejected(self, small_trace):
        sim = FrontendSimulator(btb=BTB(BTBConfig(), LRUPolicy()))
        with pytest.raises(ValueError):
            sim.simulate(small_trace, warmup_fraction=1.0)

    def test_warmup_reduces_reported_instructions(self, small_trace):
        full = FrontendSimulator(btb=BTB(BTBConfig(), LRUPolicy())) \
            .simulate(small_trace, warmup_fraction=0.0)
        warm = sim_lru(small_trace)
        assert warm.instructions < full.instructions

    def test_perfect_btb_has_no_btb_stalls(self, small_trace):
        result = simulate(small_trace, perfect_btb=True)
        assert result.btb_stall_cycles == 0.0

    def test_perfect_bp_has_no_mispredicts(self, small_trace):
        result = sim_lru(small_trace, perfect_bp=True)
        assert result.mispredicts == 0
        assert result.mispredict_stall_cycles == 0.0

    def test_perfect_icache_has_no_icache_stalls(self, small_trace):
        result = sim_lru(small_trace, perfect_icache=True)
        assert result.icache_stall_cycles == 0.0
        assert result.l2_instruction_mpki == 0.0

    def test_oracle_orderings(self, small_app_trace):
        base = sim_lru(small_app_trace)
        perfect_btb = simulate(small_app_trace, perfect_btb=True)
        assert perfect_btb.ipc > base.ipc

    def test_opt_btb_at_least_lru(self, small_app_trace):
        base = sim_lru(small_app_trace)
        pcs, _ = btb_access_stream(small_app_trace)
        opt = simulate(small_app_trace, btb=BTB(
            BTBConfig(), BeladyOptimalPolicy.from_stream(pcs)))
        assert opt.ipc >= base.ipc * 0.999

    def test_empty_trace(self):
        result = simulate(BranchTrace.empty(), perfect_btb=True)
        assert result.cycles == 0.0
        assert result.instructions == 0


class TestEventAccounting:
    def test_btb_miss_penalty_charged(self):
        # Same branch twice: first access misses, second hits.
        records = [branch(0x40, 0x80), branch(0x80, 0x40),
                   branch(0x40, 0x80)]
        trace = BranchTrace.from_records(records)
        params = FrontendParams(btb_miss_penalty=100.0)
        result = FrontendSimulator(
            params=params, btb=BTB(BTBConfig(), LRUPolicy()),
            predictor=PerfectPredictor()).simulate(trace,
                                                   warmup_fraction=0.0)
        # Two compulsory misses (the third access hits).
        assert result.btb_stall_cycles == 200.0

    def test_ras_handles_call_return(self):
        records = [
            branch(0x40, 0x1000, BranchKind.CALL_DIRECT),
            branch(0x1010, 0x44, BranchKind.RETURN),
            branch(0x44, 0x40, BranchKind.UNCOND_DIRECT),
        ]
        trace = BranchTrace.from_records(records)
        result = FrontendSimulator(
            btb=BTB(BTBConfig(), LRUPolicy()),
            predictor=PerfectPredictor()).simulate(trace,
                                                   warmup_fraction=0.0)
        assert result.ras_mispredicts == 0

    def test_wrong_return_address_penalized(self):
        records = [
            branch(0x40, 0x1000, BranchKind.CALL_DIRECT),
            branch(0x1010, 0x9999 * 4, BranchKind.RETURN),
        ]
        trace = BranchTrace.from_records(records)
        result = FrontendSimulator(
            btb=BTB(BTBConfig(), LRUPolicy()),
            predictor=PerfectPredictor()).simulate(trace,
                                                   warmup_fraction=0.0)
        assert result.ras_mispredicts == 1
        assert result.ras_stall_cycles > 0

    def test_returns_do_not_touch_btb(self):
        records = [
            branch(0x40, 0x1000, BranchKind.CALL_DIRECT),
            branch(0x1010, 0x44, BranchKind.RETURN),
        ]
        trace = BranchTrace.from_records(records)
        btb = BTB(BTBConfig(), LRUPolicy())
        FrontendSimulator(btb=btb, predictor=PerfectPredictor()) \
            .simulate(trace, warmup_fraction=0.0)
        assert btb.stats.accesses == 1            # the call only

    def test_indirect_mispredict_counted(self):
        # Indirect branch alternating targets: IBTB cannot be sure.
        records = []
        for i in range(6):
            target = 0x2000 if i % 2 == 0 else 0x3000
            records.append(branch(0x40, target,
                                  BranchKind.UNCOND_INDIRECT))
        trace = BranchTrace.from_records(records)
        result = FrontendSimulator(
            btb=BTB(BTBConfig(), LRUPolicy()),
            predictor=PerfectPredictor()).simulate(trace,
                                                   warmup_fraction=0.0)
        assert result.indirect_mispredicts >= 2

    def test_stall_breakdown_sums_to_total(self, small_trace):
        result = sim_lru(small_trace)
        assert result.cycles == pytest.approx(
            result.base_cycles + result.frontend_stall_cycles)
