"""Unit tests for the GHRP dead-entry predictor policy."""

import pytest

from repro.btb.btb import BTB
from repro.btb.config import BTBConfig
from repro.btb.replacement.base import BYPASS
from repro.btb.replacement.ghrp import GHRPPolicy


def one_set_btb(policy, ways=2):
    return BTB(BTBConfig(entries=ways, ways=ways), policy)


def test_parameters_validated():
    with pytest.raises(ValueError):
        GHRPPolicy(table_bits=1)
    with pytest.raises(ValueError):
        GHRPPolicy(num_tables=0)


def test_untrained_predictor_says_live():
    policy = GHRPPolicy()
    policy.bind(4, 2)
    assert not policy._predict_dead(policy._signature_of(0x40))


def test_training_toward_dead_flips_prediction():
    policy = GHRPPolicy(dead_threshold=3)
    policy.bind(4, 2)
    sig = 0x1234
    for _ in range(4):
        policy._train(sig, dead=True)
    assert policy._predict_dead(sig)
    for _ in range(4):
        policy._train(sig, dead=False)
    assert not policy._predict_dead(sig)


def test_counters_saturate():
    policy = GHRPPolicy(counter_max=3)
    policy.bind(4, 2)
    for _ in range(10):
        policy._train(0x55, dead=True)
    assert all(policy._tables[t][idx] <= 3
               for t, idx in enumerate(policy._indices(0x55)))


def test_history_changes_signature():
    policy = GHRPPolicy()
    policy.bind(4, 2)
    sig_before = policy._signature_of(0x40)
    policy._update_history(0x1234)
    assert policy._signature_of(0x40) != sig_before


def test_dead_prediction_drives_victim_choice():
    policy = GHRPPolicy(bypass_enabled=False)
    btb = one_set_btb(policy)
    btb.access(0x4, 0, 0)
    btb.access(0x8, 0, 1)
    # Mark way 1 (0x8) dead directly and replace.
    policy._dead[0][1] = True
    btb.access(0xC, 0, 2)
    assert not btb.contains(0x8)
    assert btb.contains(0x4)


def test_bypass_when_incoming_predicted_dead():
    policy = GHRPPolicy(dead_threshold=1, bypass_enabled=True)
    policy.bind(1, 2)
    btb = BTB(BTBConfig(entries=2, ways=2), policy)
    btb.access(0x4, 0, 0)
    btb.access(0x8, 0, 1)
    # Train the incoming signature dead.
    sig = policy._signature_of(0xC)
    for _ in range(4):
        policy._train(sig, dead=True)
    btb.access(0xC, 0, 2)
    assert btb.stats.bypasses == 1
    assert not btb.contains(0xC)


def test_eviction_without_reuse_trains_dead():
    policy = GHRPPolicy(bypass_enabled=False)
    btb = one_set_btb(policy)
    btb.access(0x4, 0, 0)
    sig = policy._signature[0][0]
    before = sum(policy._tables[t][idx]
                 for t, idx in enumerate(policy._indices(sig)))
    btb.access(0x8, 0, 1)
    btb.access(0xC, 0, 2)      # evicts 0x4, never reused
    after = sum(policy._tables[t][idx]
                for t, idx in enumerate(policy._indices(sig)))
    assert after > before


def test_falls_back_to_lru_when_no_dead_prediction():
    policy = GHRPPolicy(bypass_enabled=False)
    btb = one_set_btb(policy)
    btb.access(0x4, 0, 0)
    btb.access(0x8, 0, 1)
    btb.access(0xC, 0, 2)
    assert not btb.contains(0x4)       # LRU victim
