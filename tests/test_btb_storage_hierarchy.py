"""Unit tests for the storage model and the two-level BTB."""

import pytest

from repro.btb.btb import BTB, btb_access_stream
from repro.btb.config import BTBConfig
from repro.btb.hierarchy import TwoLevelBTB
from repro.btb.replacement.lru import LRUPolicy
from repro.btb.storage import (BTBEntryLayout, BTBStorageModel,
                               iso_storage_entries)


class TestEntryLayout:
    def test_default_bits(self):
        layout = BTBEntryLayout()
        assert layout.bits == 16 + 46 + 2 + 2

    def test_hint_bits_add(self):
        layout = BTBEntryLayout().with_hint_bits(2)
        assert layout.bits == BTBEntryLayout().bits + 2

    def test_validation(self):
        with pytest.raises(ValueError):
            BTBEntryLayout(tag_bits=-1)
        with pytest.raises(ValueError):
            BTBEntryLayout(tag_bits=0, target_bits=0)


class TestStorageModel:
    def test_total_budget(self):
        model = BTBStorageModel(BTBConfig(entries=8192, ways=4))
        assert model.total_bits == 8192 * BTBEntryLayout().bits
        assert model.total_kib == pytest.approx(
            model.total_bits / 8 / 1024)

    def test_hint_overhead_matches_paper(self):
        """§3.4: +2 bits per entry on an 8K-entry BTB is ~2.7% storage."""
        base = BTBStorageModel(BTBConfig(entries=8192, ways=4))
        hinted = BTBStorageModel(BTBConfig(entries=8192, ways=4),
                                 BTBEntryLayout().with_hint_bits(2))
        assert hinted.overhead_vs(base) == pytest.approx(2 / 66, rel=0.01)


class TestIsoStorage:
    def test_reproduces_7979_entry_tradeoff(self):
        """The Fig. 11 iso-storage variant: 8192 entries' budget buys
        ~7979 entries once each carries 2 extra bits."""
        entries = iso_storage_entries(8192, hint_bits=2)
        assert 7900 <= entries <= 8000
        assert entries % 4 == 0

    def test_zero_hint_bits_is_identity_up_to_set_rounding(self):
        assert iso_storage_entries(8192, hint_bits=0) == 8192

    def test_validation(self):
        with pytest.raises(ValueError):
            iso_storage_entries(0)


class TestTwoLevelBTB:
    def test_requires_smaller_l1(self):
        l1 = BTB(BTBConfig(entries=64, ways=4), LRUPolicy())
        l2 = BTB(BTBConfig(entries=64, ways=4), LRUPolicy())
        with pytest.raises(ValueError):
            TwoLevelBTB(l1, l2)

    def test_promotion_from_l2(self):
        two = TwoLevelBTB.build(l1_entries=4, l2_entries=64, ways=4)
        # Fill L1's single set beyond capacity so 0x4 falls to L2.
        for pc in (0x4, 0x14, 0x24, 0x34, 0x44):
            two.access(pc, 0x100)
        assert not two.l1.contains(0x4)
        assert two.l2.contains(0x4)                  # victim writeback
        assert two.access(0x4, 0x100) == "l2"        # promoted
        assert two.l1.contains(0x4)

    def test_miss_classification(self):
        two = TwoLevelBTB.build(l1_entries=4, l2_entries=64)
        assert two.access(0x4, 0) == "miss"
        assert two.access(0x4, 0) == "l1"
        assert two.stats.misses == 1
        assert two.stats.l1_hits == 1

    def test_overall_hit_rate_beats_l1_alone(self, small_trace):
        pcs, targets = btb_access_stream(small_trace)
        two = TwoLevelBTB.build(l1_entries=64, l2_entries=2048)
        l1_only = BTB(BTBConfig(entries=64, ways=4), LRUPolicy())
        solo_hits = 0
        for i in range(len(pcs)):
            pc, tgt = int(pcs[i]), int(targets[i])
            two.access(pc, tgt, i)
            solo_hits += l1_only.access(pc, tgt, i)
        assert (two.stats.l1_hits + two.stats.l2_hits) > solo_hits

    def test_stats_rates(self):
        two = TwoLevelBTB.build(l1_entries=4, l2_entries=64)
        assert two.stats.overall_hit_rate == 0.0
        two.access(0x4, 0)
        two.access(0x4, 0)
        assert two.stats.l1_hit_rate == 0.5
        assert two.stats.miss_rate == 0.5
