"""Differential equivalence: the columnar replay kernel vs. a naive loop.

The branch-event kernel (``AccessStream`` + ``replay_stream``) must be a
pure refactor: for every policy in the registry, replaying a trace through
:func:`~repro.btb.btb.run_btb` must produce **bit-identical**
:class:`~repro.btb.btb.BTBStats` (and observer event streams) to a naive
per-record reference loop that masks and indexes the trace itself and
drives :meth:`BTB.access` scalar by scalar — the pre-kernel code shape.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.btb.btb import BTB, run_btb
from repro.btb.config import BTBConfig
from repro.btb.observer import EventRecorder
from repro.btb.replacement.registry import make_policy, policy_names
from repro.core.hints import HintMap
from repro.frontend.simulator import FrontendSimulator
from repro.trace.record import BranchKind, BranchTrace
from repro.trace.stream import access_stream_for, clear_stream_cache
from repro.workloads import make_app_trace

APPS = ("cassandra", "kafka", "tomcat")
LENGTH = 6000
#: Small enough that the synthetic working sets overflow it, so replacement
#: decisions (and therefore policy bugs) actually show up in the stats.
CONFIG = BTBConfig(entries=256, ways=4)

_RETURN = int(BranchKind.RETURN)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_stream_cache()
    yield
    clear_stream_cache()


def _trace(app: str) -> BranchTrace:
    return make_app_trace(app, length=LENGTH)


def _hints(trace: BranchTrace) -> HintMap:
    # Arbitrary but deterministic pc -> category map; equivalence only
    # needs both replays to see the same hints, not meaningful ones.
    pcs = set(trace.pcs.tolist())
    return HintMap({pc: (pc >> 2) % 3 for pc in pcs}, num_categories=3)


def _policy(name: str, trace: BranchTrace, *, reference: bool):
    """Identically-configured policy for either replay side.

    The kernel side builds OPT from the shared stream (the sweep path);
    the reference side from a hand-extracted pc list (the legacy path).
    """
    if name == "opt":
        if reference:
            pcs = [int(pc) for pc, kind, taken
                   in zip(trace.pcs, trace.kinds, trace.taken)
                   if taken and kind != _RETURN]
            return make_policy("opt", stream=pcs)
        return make_policy("opt", stream=access_stream_for(trace, CONFIG))
    if name in ("thermometer", "thermometer-dueling"):
        return make_policy(name, hints=_hints(trace))
    return make_policy(name)


def _reference_replay(trace: BranchTrace, btb: BTB):
    """The pre-kernel code shape: walk every trace record in Python, mask
    not-taken/return records inline, resolve the set inside ``access``."""
    index = 0
    for pc, target, kind, taken in zip(trace.pcs.tolist(),
                                       trace.targets.tolist(),
                                       trace.kinds.tolist(),
                                       trace.taken.tolist()):
        if taken and kind != _RETURN:
            btb.access(pc, target, index)
            index += 1
    return btb.stats


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("policy_name", policy_names())
def test_kernel_matches_reference_loop(policy_name, app):
    trace = _trace(app)

    reference_btb = BTB(CONFIG, _policy(policy_name, trace, reference=True))
    reference_recorder = EventRecorder()
    reference_btb.add_observer(reference_recorder)
    reference_stats = _reference_replay(trace, reference_btb)

    kernel_btb = BTB(CONFIG, _policy(policy_name, trace, reference=False))
    kernel_recorder = EventRecorder()
    kernel_btb.add_observer(kernel_recorder)
    kernel_stats = run_btb(trace, kernel_btb)

    assert dataclasses.asdict(kernel_stats) == \
        dataclasses.asdict(reference_stats)
    assert kernel_stats.accesses > 0
    # The policies must have made the same decisions access by access, not
    # just the same totals: the full event streams must match.
    assert kernel_recorder.events == reference_recorder.events
    assert kernel_btb.resident_pcs() == reference_btb.resident_pcs()


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("policy_name", policy_names())
def test_fast_path_matches_reference_loop(policy_name, app):
    """The set-partitioned fast-path kernels vs. the reference loop.

    Observer-free on purpose: attaching an observer forces the slow path
    (see ``test_fast_kernels.py``), so this is the only differential that
    actually exercises kernel dispatch.  Policies without a kernel take
    the reference loop on both sides, which keeps the dispatch decision
    itself under test for every registry name.
    """
    from repro.btb import kernels

    trace = _trace(app)

    def replay(fast: bool) -> BTB:
        btb = BTB(CONFIG, _policy(policy_name, trace, reference=False))
        previous = kernels.set_fast_path_enabled(fast)
        try:
            run_btb(trace, btb)
        finally:
            kernels.set_fast_path_enabled(previous)
        return btb

    fast_btb, reference_btb = replay(True), replay(False)
    assert dataclasses.asdict(fast_btb.stats) == \
        dataclasses.asdict(reference_btb.stats)
    assert fast_btb.stats.accesses > 0
    assert (fast_btb._tags == reference_btb._tags).all()
    assert (fast_btb._targets == reference_btb._targets).all()
    assert (fast_btb._reused == reference_btb._reused).all()
    assert (fast_btb._fill_index == reference_btb._fill_index).all()
    assert fast_btb._dir == reference_btb._dir
    assert fast_btb.resident_pcs() == reference_btb.resident_pcs()


@pytest.mark.parametrize("app", APPS[:2])
def test_stats_show_real_pressure(app):
    """Guard the fixture: equivalence over an eviction-free replay would
    prove nothing, so the config must be under genuine pressure."""
    btb = BTB(CONFIG, make_policy("lru"))
    stats = run_btb(_trace(app), btb)
    assert stats.evictions > 0
    assert stats.hits > 0


@pytest.mark.parametrize("app", APPS[:2])
def test_simulator_identical_with_and_without_explicit_stream(app):
    trace = _trace(app)

    def run(stream):
        sim = FrontendSimulator(btb=BTB(CONFIG, make_policy("lru")))
        return sim.simulate(trace, stream=stream)

    implicit = run(None)
    clear_stream_cache()
    explicit = run(access_stream_for(trace, CONFIG))
    assert explicit.cycles == implicit.cycles  # bit-identical floats
    assert dataclasses.asdict(explicit.btb_stats) == \
        dataclasses.asdict(implicit.btb_stats)
    assert explicit.instructions == implicit.instructions
    assert explicit.ipc == implicit.ipc


def test_target_mismatch_counted_once_per_drifting_hit():
    from tests.helpers import branch
    records = [branch(0x100, target=0x500),
               branch(0x100, target=0x900),   # hit, target drift
               branch(0x100, target=0x900)]   # hit, stored target re-learned
    trace = BranchTrace.from_records(records, name="drift")
    stats = run_btb(trace, BTB(CONFIG, make_policy("lru")))
    assert stats.hits == 2
    assert stats.target_mismatches == 1
