"""Tests for the §2 characterization analyses: hit-to-taken curves,
correlations, bypass ratios, and limit studies."""

import numpy as np
import pytest

from repro.analysis.bypass import bypass_ratio_by_class
from repro.analysis.correlation import branch_property_correlations
from repro.analysis.hit_to_taken import (dynamic_cdf_curve,
                                         hit_to_taken_curve,
                                         temperature_regions)
from repro.analysis.limits import limit_study
from repro.btb.config import BTBConfig
from repro.core.profiler import profile_trace


@pytest.fixture(scope="module")
def app_trace(request):
    from repro.workloads.datacenter import make_app_trace
    return make_app_trace("tomcat", length=30_000)


@pytest.fixture(scope="module")
def app_profile(app_trace):
    return profile_trace(app_trace, BTBConfig())


class TestCurves:
    def test_sorted_curve_monotone(self, app_trace):
        xs, ys = hit_to_taken_curve(app_trace, BTBConfig())
        assert len(xs) == len(ys) > 0
        assert (np.diff(ys) <= 1e-9).all()

    def test_cdf_reaches_100(self, app_trace):
        xs, cdf = dynamic_cdf_curve(app_trace, BTBConfig())
        assert cdf[-1] == pytest.approx(100.0)
        assert (np.diff(cdf) >= -1e-9).all()

    def test_hot_branches_cover_most_execution(self, app_trace):
        """Fig. 7's claim: the hot half covers the vast majority of
        dynamic execution."""
        xs, cdf = dynamic_cdf_curve(app_trace, BTBConfig())
        half = cdf[len(cdf) // 2]
        assert half > 75.0

    def test_temperature_regions(self):
        xs = np.array([25.0, 50.0, 75.0, 100.0])
        ys = np.array([95.0, 85.0, 60.0, 10.0])
        hot, warm = temperature_regions(xs, ys, (50.0, 80.0))
        assert hot == 50.0
        assert warm == 75.0

    def test_temperature_regions_empty(self):
        assert temperature_regions(np.empty(0), np.empty(0)) == (0.0, 0.0)


class TestCorrelations:
    def test_reuse_distance_is_the_strong_signal(self, app_trace):
        """Fig. 8: only holistic reuse distance correlates strongly.

        Measured under a BTB small enough that the short test trace puts
        real pressure on replacement (temperature needs contested capacity
        to have any signal to correlate with).
        """
        config = BTBConfig(entries=1024, ways=4)
        corr = branch_property_correlations(app_trace, config)
        assert corr.avg_reuse_distance > 0.4
        assert corr.avg_reuse_distance > corr.target_distance
        assert corr.avg_reuse_distance > corr.bias

    def test_as_dict(self, app_trace, app_profile):
        corr = branch_property_correlations(app_trace, BTBConfig(),
                                            profile=app_profile)
        assert set(corr.as_dict()) == {"branch_type", "target_distance",
                                       "bias", "avg_reuse_distance"}

    def test_empty_trace(self):
        from repro.trace.record import BranchTrace
        corr = branch_property_correlations(BranchTrace.empty(),
                                            BTBConfig())
        assert corr.branches_measured == 0


class TestBypass:
    def test_cold_bypasses_most(self, app_trace, app_profile):
        """Fig. 9: cold branches bypass far more than hot branches."""
        cold, warm, hot = bypass_ratio_by_class(app_trace, BTBConfig(),
                                                profile=app_profile)
        assert cold > hot
        assert 0.0 <= hot <= 1.0

    def test_ratios_bounded(self, app_trace, app_profile):
        ratios = bypass_ratio_by_class(app_trace, BTBConfig(),
                                       profile=app_profile)
        assert all(0.0 <= r <= 1.0 for r in ratios)
        assert len(ratios) == 3


class TestLimitStudy:
    def test_oracles_all_speed_up(self, app_trace):
        study = limit_study(app_trace)
        assert study.baseline_ipc > 0
        assert study.perfect_btb_speedup > 0
        assert study.perfect_icache_speedup > 0
        assert study.perfect_bp_speedup > 0

    def test_percent_view(self, app_trace):
        study = limit_study(app_trace)
        pct = study.as_percentages()
        assert pct["perfect_btb"] == pytest.approx(
            100 * study.perfect_btb_speedup)
