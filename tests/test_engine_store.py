"""Cache correctness for the content-addressed artifact store.

Covers the properties the whole engine design leans on: key stability
across processes, invalidation when any recipe ingredient changes,
corrupted files being detected and recomputed (never crashing), and
concurrent writers never torn-writing an artifact.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.btb.config import BTBConfig
from repro.frontend.params import FrontendParams
from repro.harness.engine import (ArtifactStore, SimJob, artifact_key,
                                  run_job)

JOB = SimJob(app="tomcat", policy="srrip", length=4000, mode="misses")


class TestKeyStability:
    def test_key_is_deterministic(self):
        assert JOB.cache_key() == JOB.cache_key()
        assert artifact_key("trace", app="a", length=10) == \
            artifact_key("trace", app="a", length=10)

    def test_key_stable_across_processes(self):
        """The same job must hash identically in a fresh interpreter with a
        different hash seed — otherwise workers could never share
        artifacts."""
        script = (
            "from repro.harness.engine import SimJob;"
            "print(SimJob(app='tomcat', policy='srrip', length=4000, "
            "mode='misses').cache_key())"
        )
        src = Path(__file__).resolve().parents[1] / "src"
        for hash_seed in ("0", "12345"):
            env = {**os.environ, "PYTHONPATH": str(src),
                   "PYTHONHASHSEED": hash_seed}
            out = subprocess.run([sys.executable, "-c", script], env=env,
                                 capture_output=True, text=True, check=True)
            assert out.stdout.strip() == JOB.cache_key()

    def test_key_covers_every_recipe_ingredient(self):
        base = JOB.cache_key()
        variants = [
            SimJob(app="python", policy="srrip", length=4000,
                   mode="misses"),
            SimJob(app="tomcat", policy="lru", length=4000, mode="misses"),
            SimJob(app="tomcat", policy="srrip", length=5000,
                   mode="misses"),
            SimJob(app="tomcat", policy="srrip", length=4000, mode="sim"),
            SimJob(app="tomcat", policy="srrip", length=4000,
                   mode="misses", input_id=1),
            SimJob(app="tomcat", policy="srrip", length=4000,
                   mode="misses", btb_config=BTBConfig(entries=4096,
                                                       ways=4)),
            SimJob(app="tomcat", policy="srrip", length=4000,
                   mode="misses",
                   params=FrontendParams(btb_miss_penalty=20.0)),
            SimJob(app="tomcat", policy="srrip", length=4000,
                   mode="misses", thresholds=(30.0, 60.0)),
            SimJob(app="tomcat", policy="srrip", length=4000,
                   mode="misses", default_category=0),
            SimJob(app="tomcat", policy="srrip", length=4000,
                   mode="misses", warmup_fraction=0.1),
        ]
        keys = [v.cache_key() for v in variants]
        assert base not in keys
        assert len(set(keys)) == len(keys)

    def test_salt_invalidates(self):
        assert JOB.cache_key(salt="1") != JOB.cache_key(salt="2")

    def test_dataclass_type_is_part_of_the_key(self):
        """Two different config types with coincidentally equal fields
        must not collide."""
        import dataclasses

        @dataclasses.dataclass(frozen=True)
        class LookalikeConfig:
            entries: int = 8
            ways: int = 8

        a = artifact_key("x", config=BTBConfig(entries=8, ways=8))
        b = artifact_key("x", config=LookalikeConfig())
        assert a != b


class TestRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = {"rows": [1, 2.5, "x"], "nested": (1, 2)}
        key = store.key("misc", tag="roundtrip")
        store.put("misc", key, payload)
        assert store.get("misc", key) == payload
        assert store.stats.hits == 1
        assert store.stats.bytes_written > 0

    def test_absent_key_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("misc", store.key("misc", tag="nope")) is None
        assert store.stats.misses == 1

    def test_fetch_computes_once(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        key = store.key("misc", tag="fetch")
        assert store.fetch("misc", key, compute) == "value"
        assert store.fetch("misc", key, compute) == "value"
        assert calls == [1]
        assert store.stats.stage_counts == {"misc": 1}


class TestCorruption:
    def _seed_artifact(self, store: ArtifactStore):
        key = store.key("misc", tag="corrupt")
        store.put("misc", key, [1, 2, 3])
        return key, store.path("misc", key)

    @pytest.mark.parametrize("damage", [
        b"",                                 # truncated to nothing
        b"garbage",                          # too short / bad magic
        b"XXXX" + b"\x00" * 40,              # wrong magic
    ])
    def test_damaged_file_is_a_recomputed_miss(self, tmp_path, damage):
        store = ArtifactStore(tmp_path)
        key, path = self._seed_artifact(store)
        path.write_bytes(damage)
        assert store.get("misc", key) is None
        assert store.stats.corrupt == 1
        assert not path.exists()  # quarantined, not left to crash again
        assert store.fetch("misc", key, lambda: [1, 2, 3]) == [1, 2, 3]

    def test_flipped_payload_byte_fails_digest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key, path = self._seed_artifact(store)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.get("misc", key) is None
        assert store.stats.corrupt == 1

    def test_corrupt_job_artifact_recomputes(self, tmp_path):
        """End-to-end: a mangled cached SimResult is silently rebuilt."""
        store = ArtifactStore(tmp_path)
        first = run_job(JOB, store=store)
        path = store.path(JOB.mode, JOB.cache_key(salt=store.salt))
        path.write_bytes(b"not a pickle")
        second = run_job(JOB, store=store)
        assert not second.cached
        assert second.value == first.value

    def test_quota_rejection_returns_the_value_uncached(self, tmp_path):
        """The store is a cache: an over-quota namespace still computes
        — run_job returns the value with no error instead of failing
        the attempt (QuotaExceededError's documented contract)."""
        baseline = run_job(JOB, store=ArtifactStore(tmp_path / "warm"))
        tight = ArtifactStore(tmp_path / "svc").namespace(
            "tiny", quota_bytes=1)
        result = run_job(JOB, store=tight)
        assert result.error is None
        assert not result.cached
        assert result.value == baseline.value
        assert tight.stats.quota_rejected > 0
        # Nothing landed on disk: a rerun recomputes, same answer.
        rerun = run_job(JOB, store=tight)
        assert not rerun.cached
        assert rerun.value == baseline.value


class TestAtomicity:
    def test_no_temp_droppings_after_put(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key("misc", tag="tmp")
        store.put("misc", key, "x")
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_stray_writer_temp_is_invisible_to_readers(self, tmp_path):
        """A crashed writer's temp file must never satisfy a get()."""
        store = ArtifactStore(tmp_path)
        key = store.key("misc", tag="stray")
        path = store.path("misc", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        (path.parent / f".{key[:8]}.crashed.tmp").write_bytes(b"partial")
        assert store.get("misc", key) is None

    def test_concurrent_writers_never_torn_write(self, tmp_path):
        """Hammer one key from several threads (each with its own store
        handle, as processes would); every read must be a valid artifact
        or a clean miss — never an exception, never a mangled value."""
        key = artifact_key("misc", tag="race")
        payload = list(range(500))
        errors = []

        def writer():
            store = ArtifactStore(tmp_path)
            try:
                for _ in range(25):
                    store.put("misc", key, payload)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            store = ArtifactStore(tmp_path)
            try:
                for _ in range(50):
                    value = store.get("misc", key)
                    assert value is None or value == payload
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        final = ArtifactStore(tmp_path)
        assert final.get("misc", key) == payload
        assert final.stats.corrupt == 0
