"""Unit tests for the CBP-5-like and IPC-1-like trace suites."""

import pytest

from repro.btb.btb import BTB, btb_access_stream, run_btb
from repro.btb.config import BTBConfig
from repro.workloads.suites import (CBP5_SUITE_SIZE, IPC1_SUITE_SIZE,
                                    make_cbp5_suite, make_ipc1_suite,
                                    make_suite_trace)


def test_suite_sizes_match_paper():
    assert CBP5_SUITE_SIZE == 663
    assert IPC1_SUITE_SIZE == 50


def test_suite_trace_deterministic():
    a = make_suite_trace("cbp5", 17, length=3000)
    b = make_suite_trace("cbp5", 17, length=3000)
    assert a == b


def test_suite_traces_differ_by_index():
    a = make_suite_trace("cbp5", 1, length=3000)
    b = make_suite_trace("cbp5", 2, length=3000)
    assert a != b


def test_suites_differ_from_each_other():
    a = make_suite_trace("cbp5", 5, length=3000)
    b = make_suite_trace("ipc1", 5, length=3000)
    assert a != b


def test_unknown_suite_rejected():
    with pytest.raises(ValueError, match="cbp5"):
        make_suite_trace("spec2017", 0)


def test_sampling_spans_suite():
    traces = make_cbp5_suite(5, length=1000)
    assert len(traces) == 5
    names = [t.name for t in traces]
    assert len(set(names)) == 5
    assert names[0].startswith("cbp5_000")


def test_count_capped_at_suite_size():
    traces = make_ipc1_suite(10_000, length=500)
    assert len(traces) == IPC1_SUITE_SIZE


def test_invalid_count_rejected():
    with pytest.raises(ValueError):
        make_cbp5_suite(0)


def test_footprint_diversity():
    """The suite must mix BTB-fitting and BTB-overflowing traces — the
    paper's CBP-5 population has 298/663 compulsory-only traces."""
    config = BTBConfig(entries=1024, ways=4)
    footprints = []
    for i in range(0, 60, 6):
        trace = make_suite_trace("cbp5", i, length=8000)
        pcs, _ = btb_access_stream(trace)
        footprints.append(len(set(pcs.tolist())))
    assert min(footprints) < config.entries
    assert max(footprints) > config.entries


def test_traces_replayable(tiny_config):
    trace = make_suite_trace("ipc1", 3, length=2000)
    stats = run_btb(trace, BTB(tiny_config))
    assert stats.accesses > 0
    assert stats.hits + stats.misses == stats.accesses
