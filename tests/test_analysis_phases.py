"""Tests for phase analysis and SimPoint-style sampled profiling."""

import numpy as np
import pytest

from repro.analysis.phases import (PhaseSelection, basic_block_vectors,
                                   kmeans, sampled_profile,
                                   select_representatives)
from repro.btb.config import BTBConfig
from repro.core.profiler import profile_trace
from repro.core.temperature import TemperatureProfile
from repro.trace.record import BranchTrace
from repro.workloads.patterns import two_phase_trace


class TestBBV:
    def test_shape_and_normalization(self, small_trace):
        vectors = basic_block_vectors(small_trace, interval=1000,
                                      dimensions=32)
        assert vectors.shape == ((len(small_trace) + 999) // 1000, 32)
        sums = vectors.sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_empty_trace(self):
        assert basic_block_vectors(BranchTrace.empty(), 100).shape[0] == 0

    def test_validation(self, small_trace):
        with pytest.raises(ValueError):
            basic_block_vectors(small_trace, interval=0)
        with pytest.raises(ValueError):
            basic_block_vectors(small_trace, dimensions=1)

    def test_distinct_phases_have_distant_vectors(self):
        trace = two_phase_trace(64, 4000, overlap=0.0)
        vectors = basic_block_vectors(trace, interval=1000)
        half = len(vectors) // 2
        within = np.linalg.norm(vectors[0] - vectors[1])
        across = np.linalg.norm(vectors[0] - vectors[half + 1])
        assert across > within


class TestKMeans:
    def test_separates_obvious_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.05, size=(20, 4))
        b = rng.normal(5.0, 0.05, size=(20, 4))
        labels, centroids = kmeans(np.vstack([a, b]), k=2, seed=1)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[20]

    def test_k_capped_by_points(self):
        vectors = np.zeros((3, 2))
        labels, centroids = kmeans(vectors, k=10)
        assert centroids.shape[0] == 3

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        data = rng.random((30, 5))
        a, _ = kmeans(data, 3, seed=7)
        b, _ = kmeans(data, 3, seed=7)
        assert (a == b).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 3)), 2)


class TestSelection:
    def test_two_phase_trace_yields_two_phases(self):
        trace = two_phase_trace(64, 4000, overlap=0.0)
        selection = select_representatives(trace, k=2, interval=1000)
        half_label = selection.labels[0]
        assert selection.labels[-1] != half_label
        assert sum(selection.weights) == len(selection.labels)

    def test_representatives_belong_to_their_cluster(self, small_trace):
        selection = select_representatives(small_trace, k=4, interval=500)
        for rep, _ in zip(selection.representatives, selection.weights):
            assert 0 <= rep < len(selection.labels)

    def test_sampled_fraction(self):
        selection = PhaseSelection(interval=10, representatives=(0, 5),
                                   weights=(5, 5),
                                   labels=tuple([0] * 5 + [1] * 5))
        assert selection.sampled_fraction == 0.2

    def test_too_short_trace_rejected(self):
        with pytest.raises(ValueError):
            select_representatives(BranchTrace.empty())


class TestSampledProfile:
    CONFIG = BTBConfig(entries=256, ways=4)

    def test_counts_extrapolate_to_full_scale(self, small_app_trace):
        full = profile_trace(small_app_trace, self.CONFIG)
        sampled = sampled_profile(small_app_trace, self.CONFIG, k=6,
                                  interval=2000)
        full_taken = sum(b.taken for b in full.branches.values())
        sampled_taken = sum(b.taken for b in sampled.branches.values())
        assert sampled_taken == pytest.approx(full_taken, rel=0.25)

    def test_temperatures_agree_with_full_profile(self, small_app_trace):
        """The point of sampling: hints from ~1/4 of the simulation work
        still classify most branches like the full profile."""
        full = TemperatureProfile.from_opt_profile(
            profile_trace(small_app_trace, self.CONFIG))
        selection = select_representatives(small_app_trace, k=6,
                                           interval=2000)
        assert selection.sampled_fraction < 0.6
        sampled = TemperatureProfile.from_opt_profile(
            sampled_profile(small_app_trace, self.CONFIG,
                            selection=selection))
        assert full.agreement_with(sampled) > 0.6
