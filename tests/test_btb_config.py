"""Unit tests for BTB geometry configuration."""

import pytest

from repro.btb.config import (BTBConfig, DEFAULT_BTB_CONFIG,
                              THERMOMETER_7979_CONFIG)


def test_table1_default():
    assert DEFAULT_BTB_CONFIG.entries == 8192
    assert DEFAULT_BTB_CONFIG.ways == 4
    assert DEFAULT_BTB_CONFIG.num_sets == 2048
    assert DEFAULT_BTB_CONFIG.capacity == 8192


def test_7979_variant_rounds_sets_up():
    assert THERMOMETER_7979_CONFIG.entries == 7979
    assert THERMOMETER_7979_CONFIG.num_sets == 1995
    assert THERMOMETER_7979_CONFIG.capacity == 1995 * 4


def test_set_index_uses_word_address():
    config = BTBConfig(entries=8, ways=2)   # 4 sets
    # Consecutive 4-byte-aligned pcs must hit consecutive sets.
    assert [config.set_index(pc) for pc in (0, 4, 8, 12, 16)] == \
        [0, 1, 2, 3, 0]


def test_set_index_in_range():
    config = THERMOMETER_7979_CONFIG
    for pc in (0, 4, 0x400000, 0x7FFFFFFC):
        assert 0 <= config.set_index(pc) < config.num_sets


@pytest.mark.parametrize("kwargs", [
    {"entries": 0}, {"ways": 0}, {"entries": 2, "ways": 4},
])
def test_invalid_geometry_rejected(kwargs):
    with pytest.raises(ValueError):
        BTBConfig(**{"entries": 8, "ways": 2, **kwargs})


def test_config_hashable_for_cache_keys():
    assert {BTBConfig(), BTBConfig()} == {BTBConfig()}
