"""Unit tests for the additional hardware baselines: tree-PLRU, SHiP, DIP,
and the online-Thermometer extension."""

import pytest

from repro.btb.btb import BTB, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.dip import DIPPolicy
from repro.btb.replacement.lru import LRUPolicy
from repro.btb.replacement.online_thermometer import OnlineThermometerPolicy
from repro.btb.replacement.plru import TreePLRUPolicy
from repro.btb.replacement.ship import SHiPPolicy


def one_set_btb(policy, ways=4):
    return BTB(BTBConfig(entries=ways, ways=ways), policy)


class TestTreePLRU:
    def test_requires_power_of_two_ways(self):
        policy = TreePLRUPolicy()
        with pytest.raises(ValueError, match="power-of-two"):
            policy.bind(4, 3)

    def test_state_cost(self):
        policy = TreePLRUPolicy()
        policy.bind(4, 8)
        assert policy.state_bits_per_set == 7

    def test_never_evicts_most_recent(self):
        """Tree PLRU's guarantee: the just-touched way is never the
        victim."""
        policy = TreePLRUPolicy()
        btb = one_set_btb(policy)
        for pc in (0x4, 0x8, 0xC, 0x10):
            btb.access(pc, 0)
        btb.access(0x10, 0)                       # touch way 3
        victim = policy.choose_victim(0, [], 0, 0)
        tags = [btb.entry(0, w).pc for w in range(4)]
        assert tags[victim] != 0x10

    def test_behaves_like_lru_on_two_ways(self):
        """With 2 ways the tree is exact LRU."""
        plru = BTB(BTBConfig(entries=2, ways=2), TreePLRUPolicy())
        lru = BTB(BTBConfig(entries=2, ways=2), LRUPolicy())
        import random
        rng = random.Random(7)
        for i in range(300):
            pc = rng.choice((0x4, 0x8, 0xC))
            assert plru.access(pc, 0, i) == lru.access(pc, 0, i)

    def test_tracks_lru_closely_on_workload(self, small_trace):
        config = BTBConfig(entries=64, ways=4)
        plru = run_btb(small_trace, BTB(config, TreePLRUPolicy()))
        lru = run_btb(small_trace, BTB(config, LRUPolicy()))
        assert abs(plru.hit_rate - lru.hit_rate) < 0.05


class TestSHiP:
    def test_validation(self):
        with pytest.raises(ValueError):
            SHiPPolicy(table_bits=2)

    def test_no_reuse_signature_inserted_distant(self):
        policy = SHiPPolicy()
        btb = one_set_btb(policy, ways=2)
        # Drive the signature of 0x4 to zero (no reuse observed).
        idx = policy._index(0x4)
        policy._shct[idx] = 0
        btb.access(0x4, 0)
        way = [w for w in range(2) if btb.entry(0, w)][0]
        assert policy._rrpv[0][way] == policy.rrpv_max

    def test_reuse_trains_signature_up(self):
        policy = SHiPPolicy()
        btb = one_set_btb(policy, ways=2)
        idx = policy._index(0x4)
        before = policy._shct[idx]
        btb.access(0x4, 0)
        btb.access(0x4, 0)          # first re-reference trains +1
        assert policy._shct[idx] == before + 1

    def test_dead_eviction_trains_signature_down(self):
        policy = SHiPPolicy()
        btb = one_set_btb(policy, ways=2)
        idx = policy._index(0x4)
        before = policy._shct[idx]
        btb.access(0x4, 0)
        btb.access(0x8, 0)
        btb.access(0xC, 0)
        btb.access(0x10, 0)          # eventually evicts 0x4 unreused
        assert policy._shct[idx] <= before

    def test_scan_resistant_on_workload(self, small_trace):
        config = BTBConfig(entries=256, ways=4)
        ship = run_btb(small_trace, BTB(config, SHiPPolicy()))
        lru = run_btb(small_trace, BTB(config, LRUPolicy()))
        assert ship.hits >= lru.hits * 0.98


class TestDIP:
    def test_validation(self):
        with pytest.raises(ValueError):
            DIPPolicy(leader_spacing=1)

    def test_leader_sets_assigned_both_roles(self):
        policy = DIPPolicy(leader_spacing=8)
        policy.bind(64, 4)
        roles = set(policy._role)
        assert roles == {0, 1, 2}

    def test_followers_track_psel(self):
        policy = DIPPolicy(leader_spacing=8)
        policy.bind(64, 4)
        follower = next(s for s in range(64) if policy._role[s] == 0)
        policy._psel = policy.psel_max          # LRU leaders miss a lot
        assert policy._uses_bip(follower)
        policy._psel = 0
        assert not policy._uses_bip(follower)

    def test_bip_inserts_at_lru_position(self):
        policy = DIPPolicy(leader_spacing=4, bip_mru_probability=0.0)
        policy.bind(4, 2)
        bip_leader = next(s for s in range(4)
                          if policy._role[s] == 2)
        btb = BTB(BTBConfig(entries=8, ways=2), policy)
        # Two fills into the BIP leader set; the second fill (BIP, placed
        # at LRU) is evicted first.
        pcs = [bip_leader * 4, (bip_leader + 4) * 4, (bip_leader + 8) * 4]
        for pc in pcs:
            btb.access(pc, 0)
        assert btb.contains(pcs[0])

    def test_thrash_resistance_on_cyclic_pattern(self):
        """DIP must beat LRU on a cyclic over-capacity pattern (every set
        sees a 6-branch cycle against 4 ways; the BIP leaders win the duel
        and the followers adopt bimodal insertion)."""
        config = BTBConfig(entries=16, ways=4)       # 4 sets
        pattern = []
        for _ in range(60):
            for set_idx in range(4):
                # 6 distinct words per set, cycling.
                pattern.extend((set_idx + 4 * k) * 4 for k in range(6))
        dip = BTB(config, DIPPolicy(leader_spacing=2))
        lru = BTB(config, LRUPolicy())
        dip_hits = sum(dip.access(pc, 0, i)
                       for i, pc in enumerate(pattern))
        lru_hits = sum(lru.access(pc, 0, i)
                       for i, pc in enumerate(pattern))
        assert lru_hits == 0                         # classic LRU thrash
        assert dip_hits > lru_hits


class TestOnlineThermometer:
    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineThermometerPolicy(table_bits=2)
        with pytest.raises(ValueError):
            OnlineThermometerPolicy(thresholds=(80.0, 50.0))

    def test_unobserved_branch_is_middle_class(self):
        policy = OnlineThermometerPolicy()
        policy.bind(4, 2)
        assert policy.temperature_of(0x40) == 1

    def test_ratio_drives_temperature(self):
        policy = OnlineThermometerPolicy(warm_floor=2)
        policy.bind(4, 2)
        for _ in range(10):
            policy._record(0x40, hit=True)
            policy._record(0x80, hit=False)
        assert policy.temperature_of(0x40) == 2      # hot
        assert policy.temperature_of(0x80) == 0      # cold

    def test_counter_aging_halves(self):
        policy = OnlineThermometerPolicy(counter_max=8)
        policy.bind(4, 2)
        for _ in range(9):
            policy._record(0x40, hit=True)
        slot = policy._slot(0x40)
        assert policy._taken[slot] <= 8

    def test_beats_lru_but_not_offline(self, small_app_trace):
        """The extension result: online estimation helps, the offline
        profile helps more."""
        from repro.core.pipeline import ThermometerPipeline
        config = BTBConfig(entries=1024, ways=4)
        lru = run_btb(small_app_trace, BTB(config, LRUPolicy()))
        online = run_btb(small_app_trace,
                         BTB(config, OnlineThermometerPolicy()))
        pipeline = ThermometerPipeline(config=config)
        offline = pipeline.run(small_app_trace)
        # Online estimation is at worst LRU-like; the offline profile is
        # strictly better — the point of the profile-guided design.
        assert online.misses <= lru.misses * 1.02
        assert offline.misses < online.misses
