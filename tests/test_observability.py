"""Observability: trace propagation, Prometheus metrics, dashboards.

The centerpiece is the pinned linkage test: a sweep submitted through
the service with a client-side root trace context must export a Chrome
trace-event document in which **every** worker-side job span is
reachable from the client's root ``trace_id`` by following
``parent_id`` links — the whole causal tree, client → service request →
batch → engine run → job attempts, survives the wire and the pool
boundary.
"""

from __future__ import annotations

import asyncio
import json
import re
from pathlib import Path

import pytest

from repro.harness.engine import ExperimentEngine, SimJob
from repro.service.client import ServiceClient, request_once
from repro.service.server import SimulationService
from repro.telemetry import tracing
from repro.telemetry.manifest import (read_events, read_run_manifest,
                                      read_spans, render_report,
                                      synthesize_summary)
from repro.telemetry.metrics import (BucketMismatchError, Histogram,
                                     LATENCY_BUCKETS, MetricsRegistry,
                                     merge_snapshots, set_registry,
                                     to_prometheus_text)
from repro.telemetry.tracing import (TraceContext, child_context,
                                     collect_spans, new_root_context,
                                     trace_span, tracing_enabled)
from repro.tools.trace_export import spans_to_chrome_trace

LENGTH = 4000


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry(enabled=True))
    try:
        yield
    finally:
        set_registry(previous)


# ----------------------------------------------------------------------
# Tracing primitives
# ----------------------------------------------------------------------

class TestTraceContext:
    def test_round_trips_through_its_dict(self):
        ctx = TraceContext("t" * 32, "s" * 16, "p" * 16)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_root_has_no_parent_key(self):
        root = new_root_context()
        assert root.parent_id is None
        assert "parent_id" not in root.to_dict()

    def test_child_links_to_its_parent(self):
        root = new_root_context()
        child = root.child_context()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    @pytest.mark.parametrize("payload", [
        None, "nope", 42, {}, {"trace_id": "only"},
        {"span_id": "only"}, {"trace_id": "", "span_id": ""},
    ])
    def test_from_dict_tolerates_junk(self, payload):
        assert TraceContext.from_dict(payload) is None

    def test_ambient_child_without_parent_is_a_fresh_root(self):
        ctx = child_context()
        assert ctx.parent_id is None

    def test_pickles_into_a_job_without_changing_its_key(self):
        import dataclasses
        job = SimJob(app="tomcat", policy="lru", mode="misses",
                     length=LENGTH)
        traced = dataclasses.replace(
            job, trace_context=new_root_context())
        assert traced == job
        assert traced.cache_key() == job.cache_key()


class TestTraceSpan:
    def test_spans_collect_into_the_innermost_scope(self):
        with collect_spans() as outer:
            with trace_span("a"):
                pass
            with collect_spans() as inner:
                with trace_span("b"):
                    pass
        assert [s["name"] for s in outer] == ["a"]
        assert [s["name"] for s in inner] == ["b"]

    def test_nested_spans_link_up_automatically(self):
        with collect_spans() as spans:
            with trace_span("parent"):
                with trace_span("child"):
                    pass
        child, parent = spans  # children finish (and record) first
        assert child["name"] == "child"
        assert child["trace_id"] == parent["trace_id"]
        assert child["parent_id"] == parent["span_id"]

    def test_span_args_and_error_flag(self):
        with collect_spans() as spans:
            with pytest.raises(RuntimeError):
                with trace_span("boom", app="tomcat") as span:
                    span.set(policy="lru")
                    raise RuntimeError("x")
        (record,) = spans
        assert record["error"] is True
        assert record["args"] == {"app": "tomcat", "policy": "lru"}
        assert record["dur"] >= 0

    def test_without_a_scope_spans_are_dropped(self):
        with trace_span("orphan") as span:
            span.set(ignored=True)  # the inert span accepts args

    def test_repro_tracing_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACING", "0")
        assert not tracing_enabled()
        with collect_spans() as spans:
            with trace_span("off"):
                pass
        assert spans == []

    def test_telemetry_master_switch_disables_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert not tracing_enabled()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.eE+\-]+$|"
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \+Inf$")


def assert_valid_exposition(text: str) -> None:
    """Every line is a comment or a well-formed sample; every sample's
    family was introduced by HELP/TYPE lines."""
    declared = set()
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            declared.add(line.split()[2])
            continue
        assert SAMPLE_RE.match(line), f"bad sample line: {line!r}"
        name = line.split("{")[0].split(" ")[0]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in declared or base in declared, \
            f"sample {name} has no HELP/TYPE"
    assert text.endswith("\n")


class TestPrometheusText:
    def test_counters_gauges_histograms_and_spans(self):
        registry = MetricsRegistry(enabled=True)
        registry.count("engine/jobs/succeeded", 3)
        registry.gauge("service/tenants", 2)
        registry.observe('service/request_seconds{tenant="alice"}',
                         0.2, bounds=LATENCY_BUCKETS)
        with registry.span("replay"):
            pass
        text = to_prometheus_text(registry.snapshot())
        assert_valid_exposition(text)
        assert "repro_engine_jobs_succeeded_total 3" in text
        assert "repro_service_tenants 2" in text
        assert ('repro_service_request_seconds_bucket'
                '{tenant="alice",le="+Inf"} 1') in text
        assert ('repro_service_request_seconds_count'
                '{tenant="alice"} 1') in text
        assert 'repro_span_calls_total{span="replay"} 1' in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry(enabled=True)
        for value in (0.5, 1.5, 99.0):
            registry.observe("lat", value, bounds=(1.0, 2.0))
        text = to_prometheus_text(registry.snapshot())
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="2"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text

    def test_empty_snapshot_is_empty_text(self):
        assert to_prometheus_text(
            MetricsRegistry(enabled=True).snapshot()) == ""


# ----------------------------------------------------------------------
# Histogram merge validation (satellite: bucket compatibility)
# ----------------------------------------------------------------------

class TestHistogramCompatibility:
    def test_rebucket_to_coarser_subset(self):
        hist = Histogram(bounds=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 3.0, 99.0):
            hist.observe(value)
        coarse = hist.rebucket((2.0, 5.0))
        assert coarse.bounds == (2.0, 5.0)
        assert coarse.counts == [2, 1, 1]
        assert coarse.count == hist.count
        assert coarse.sum == hist.sum

    def test_rebucket_rejects_non_subset(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(0.5)
        with pytest.raises(BucketMismatchError):
            hist.rebucket((1.5,))

    def test_merge_rebuckets_when_one_layout_refines_the_other(self):
        fine = Histogram(bounds=(1.0, 2.0, 5.0))
        coarse = Histogram(bounds=(2.0, 5.0))
        for value in (0.5, 3.0):
            fine.observe(value)
        coarse.observe(1.5)
        fine.merge(coarse)  # self is finer: re-buckets itself
        assert fine.bounds == (2.0, 5.0)
        assert fine.count == 3
        coarse2 = Histogram(bounds=(2.0,))
        coarse2.observe(1.0)
        coarse2.merge(Histogram(bounds=(1.0, 2.0), counts=[1, 0, 0],
                                count=1, sum=0.5))
        assert coarse2.bounds == (2.0,)
        assert coarse2.count == 2

    def test_merge_incompatible_layouts_names_both(self):
        a = Histogram(bounds=(1.0, 10.0))
        b = Histogram(bounds=(2.0, 20.0))
        with pytest.raises(BucketMismatchError, match="bounds"):
            a.merge(b)

    def test_merge_snapshots_wraps_the_histogram_name(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.observe("lat", 1.0, bounds=(1.0,))
        b.observe("lat", 1.0, bounds=(3.0, 4.0))
        with pytest.raises(BucketMismatchError, match="'lat'"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_bucket_mismatch_is_a_value_error(self):
        assert issubclass(BucketMismatchError, ValueError)


# ----------------------------------------------------------------------
# Engine-level tracing
# ----------------------------------------------------------------------

def _walk_to_root(span, by_id, limit=16):
    current = span
    for _ in range(limit):
        parent = by_id.get(current.get("parent_id"))
        if parent is None:
            return current
        current = parent
    raise AssertionError("parent chain too deep (cycle?)")


class TestEngineTracing:
    def test_serial_run_journals_a_linked_tree(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1)
        engine.run([SimJob(app="tomcat", policy=p, mode="misses",
                           length=LENGTH) for p in ("lru", "srrip")])
        spans = read_spans(engine.last_manifest)
        names = {s["name"] for s in spans}
        assert {"engine/run", "job", "store/get"} <= names
        (root,) = [s for s in spans if s["name"] == "engine/run"]
        by_id = {s["span_id"]: s for s in spans}
        for span in spans:
            top = _walk_to_root(span, by_id)
            assert top["span_id"] == root["span_id"]
            assert span["trace_id"] == root["trace_id"]

    def test_pool_workers_spans_cross_the_process_boundary(self,
                                                           tmp_path):
        """Pinned: pickled contexts keep worker-side job spans linked
        under the parent's run span, from other processes."""
        import os
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=2)
        engine.run([SimJob(app=app, policy="lru", mode="misses",
                           length=LENGTH)
                    for app in ("tomcat", "python")])
        spans = read_spans(engine.last_manifest)
        (root,) = [s for s in spans if s["name"] == "engine/run"]
        job_spans = [s for s in spans if s["name"] == "job"]
        assert len(job_spans) == 2
        assert {s["pid"] for s in job_spans} != {os.getpid()}
        for span in job_spans:
            assert span["trace_id"] == root["trace_id"]
            assert span["parent_id"] == root["span_id"]

    def test_state_events_and_spans_share_the_journal_cleanly(
            self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1)
        engine.run([SimJob(app="tomcat", policy="lru", mode="misses",
                           length=LENGTH)])
        events = read_events(engine.last_manifest)
        assert events and all("state" in e for e in events)
        assert all(e.get("kind", "state") == "state" for e in events)
        assert read_spans(engine.last_manifest)

    def test_tracing_off_leaves_the_journal_span_free(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_TRACING", "0")
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1)
        engine.run([SimJob(app="tomcat", policy="lru", mode="misses",
                           length=LENGTH)])
        assert read_spans(engine.last_manifest) == []
        assert read_events(engine.last_manifest)

    def test_failed_attempts_still_ship_their_spans(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1,
                                  max_retries=0)
        with pytest.raises(Exception):
            engine.run([SimJob(app="no-such-app", policy="lru",
                               mode="misses", length=LENGTH)])
        spans = read_spans(engine.last_manifest)
        job_spans = [s for s in spans if s["name"] == "job"]
        assert job_spans and all(s.get("error") for s in job_spans)


# ----------------------------------------------------------------------
# Service end-to-end (the pinned acceptance test)
# ----------------------------------------------------------------------

async def _serve(service):
    server = await service.start("127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[:2]


class TestServiceTracing:
    def test_every_worker_job_span_reachable_from_client_root(
            self, tmp_path):
        """Pinned: export the run's spans as Chrome trace JSON and walk
        ``args.parent_id`` links — every job span must reach the
        client's root ``trace_id``."""
        root_ctx = new_root_context()

        async def scenario():
            service = SimulationService(tmp_path, jobs=1,
                                        coalesce_window=0.05)
            server, (host, port) = await _serve(service)
            try:
                request = {"op": "sweep", "tenant": "alice",
                           "apps": ["tomcat"],
                           "policies": ["lru", "srrip", "opt"],
                           "mode": "misses", "length": LENGTH,
                           "trace": root_ctx.to_dict()}
                return await request_once(host, port, request)
            finally:
                server.close()
                await server.wait_closed()

        events = asyncio.run(scenario())
        done = events[-1]
        assert done["event"] == "done" and done["ok"]
        document = spans_to_chrome_trace(read_spans(Path(
            done["manifest"])))
        slices = [e for e in document["traceEvents"]
                  if e.get("ph") == "X"]
        by_id = {e["args"]["span_id"]: e for e in slices}
        job_slices = [e for e in slices if e["name"] == "job"]
        assert len(job_slices) == 3
        for event in job_slices:
            assert event["args"]["trace_id"] == root_ctx.trace_id
            current = event
            seen = 0
            while current["args"].get("parent_id") in by_id:
                current = by_id[current["args"]["parent_id"]]
                seen += 1
                assert seen < 16
            # The chain tops out at the request span, whose parent is
            # the client root (present only client-side).
            assert current["name"] == "service/request"
            assert current["args"]["parent_id"] == root_ctx.span_id
        # The service layers are present as slices too.
        names = {e["name"] for e in slices}
        assert {"service/request", "service/batch",
                "engine/run"} <= names

    def test_client_stamps_a_root_trace_automatically(self, tmp_path):
        async def scenario():
            service = SimulationService(tmp_path, jobs=1,
                                        coalesce_window=0.0)
            server, (host, port) = await _serve(service)
            try:
                client = await ServiceClient.connect(host, port)
                try:
                    events = await client.request(
                        {"op": "simulate", "tenant": "alice",
                         "jobs": [{"app": "tomcat", "policy": "lru"}],
                         "mode": "misses", "length": LENGTH})
                finally:
                    await client.close()
                return events
            finally:
                server.close()
                await server.wait_closed()

        events = asyncio.run(scenario())
        done = events[-1]
        assert done["ok"]
        spans = read_spans(Path(done["manifest"]))
        request_spans = [s for s in spans
                         if s["name"] == "service/request"]
        assert len(request_spans) == 1
        # The request span has a parent: the client's implicit root.
        assert request_spans[0].get("parent_id")

    def test_metrics_op_serves_per_tenant_latency_histograms(
            self, tmp_path):
        async def scenario():
            service = SimulationService(tmp_path, jobs=1,
                                        coalesce_window=0.0)
            server, (host, port) = await _serve(service)
            try:
                sweep = {"op": "sweep", "tenant": "alice",
                         "apps": ["tomcat"], "policies": ["lru"],
                         "mode": "misses", "length": LENGTH}
                await request_once(host, port, sweep)
                await request_once(host, port,
                                   dict(sweep, tenant="bob"))
                return (await request_once(host, port,
                                           {"op": "metrics"}))[-1]
            finally:
                server.close()
                await server.wait_closed()

        metrics = asyncio.run(scenario())
        assert metrics["event"] == "metrics"
        assert metrics["content_type"].startswith("text/plain")
        text = metrics["text"]
        assert_valid_exposition(text)
        for tenant in ("alice", "bob"):
            assert (f'repro_service_request_seconds_bucket'
                    f'{{tenant="{tenant}",le="+Inf"}} 1') in text
            assert (f'repro_service_requests_total'
                    f'{{tenant="{tenant}"}} 1') in text
            assert f'repro_store_usage_bytes{{tenant="{tenant}"}}' \
                in text
        assert "repro_service_coalesce_delay_seconds_bucket" in text
        assert "repro_service_queue_wait_seconds_bucket" in text
        assert "repro_service_run_seconds_bucket" in text


# ----------------------------------------------------------------------
# Executor cancellation / client error delivery (satellite 3)
# ----------------------------------------------------------------------

class TestAsyncCancellation:
    def test_cancel_mid_run_still_writes_a_failed_manifest(
            self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1)
        jobs = [SimJob(app=app, policy="lru", mode="misses",
                       length=LENGTH)
                for app in ("tomcat", "python", "clang", "kafka")]

        async def scenario():
            first_result = asyncio.Event()
            task = asyncio.ensure_future(engine.run_async(
                jobs, on_result=lambda r: first_result.set()))
            await asyncio.wait_for(first_result.wait(), timeout=60)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(scenario())
        manifest = read_run_manifest(engine.last_manifest)
        assert manifest.summary["status"] == "failed"
        states = manifest.summary["job_states"]
        assert states.get("succeeded", 0) >= 1
        assert sum(states.values()) == len(jobs)
        # The cancel is recorded as the run's failure.
        errors = json.dumps(manifest.summary.get("exceptions", []))
        assert "CancelledError" in errors

    def test_service_shutdown_mid_run_resolves_the_request(
            self, tmp_path):
        async def scenario():
            service = SimulationService(tmp_path, jobs=1,
                                        coalesce_window=0.0)
            server, (host, port) = await _serve(service)
            try:
                sweep_task = asyncio.ensure_future(request_once(
                    host, port,
                    {"op": "sweep", "tenant": "alice",
                     "apps": ["tomcat"], "policies": ["lru", "srrip"],
                     "mode": "misses", "length": LENGTH}))
                await asyncio.sleep(0.05)
                bye = await request_once(host, port,
                                         {"op": "shutdown"})
                events = await asyncio.wait_for(sweep_task, timeout=60)
                return bye[-1], events[-1]
            finally:
                server.close()
                await server.wait_closed()

        bye, done = asyncio.run(scenario())
        assert bye["event"] == "bye"
        # The in-flight request still resolves (the engine finishes its
        # batch; shutdown only stops accepting new connections).
        assert done["event"] in ("done", "error")


class TestClientErrorDelivery:
    def test_id_null_errors_reach_on_event_without_ending_the_wait(
            self):
        async def scenario():
            async def fake_service(reader, writer):
                line = await reader.readline()
                request = json.loads(line)
                # A connection-level error first (id null), then the
                # real terminal event.
                writer.write((json.dumps(
                    {"id": None, "event": "error",
                     "error": "unparseable line"}) + "\n").encode())
                writer.write((json.dumps(
                    {"id": request["id"], "event": "done",
                     "ok": True}) + "\n").encode())
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(fake_service,
                                                "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            seen = []
            try:
                client = await ServiceClient.connect(host, port)
                try:
                    events = await client.request(
                        {"op": "status"}, on_event=seen.append)
                finally:
                    await client.close()
            finally:
                server.close()
                await server.wait_closed()
            return events, seen

        events, seen = asyncio.run(scenario())
        # The id-null error is surfaced through on_event but is not
        # part of the request's own event list, and does not
        # terminate the wait.
        assert [e["event"] for e in events] == ["done"]
        assert seen[0]["event"] == "error"
        assert seen[0]["id"] is None
        assert seen[-1]["event"] == "done"


# ----------------------------------------------------------------------
# Partial-manifest degradation (satellite 1)
# ----------------------------------------------------------------------

class TestPartialManifests:
    def _run(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1)
        engine.run([SimJob(app="tomcat", policy="lru", mode="misses",
                           length=LENGTH)])
        return engine.last_manifest

    def test_missing_summary_degrades_to_journal(self, tmp_path):
        run_dir = self._run(tmp_path)
        (run_dir / "summary.json").unlink()
        manifest = read_run_manifest(run_dir)
        assert manifest.summary["partial"] is True
        assert manifest.summary["jobs"] == 1
        assert manifest.summary["job_states"] == {"succeeded": 1}
        assert "summary.json" in manifest.summary["missing"]
        assert "PARTIAL RUN" in render_report(manifest)

    def test_corrupt_summary_degrades_to_journal(self, tmp_path):
        run_dir = self._run(tmp_path)
        (run_dir / "summary.json").write_text("{ torn write",
                                              encoding="utf-8")
        manifest = read_run_manifest(run_dir)
        assert manifest.summary["partial"] is True
        assert any("corrupt" in item
                   for item in manifest.summary["missing"])

    def test_torn_journal_lines_are_skipped(self, tmp_path):
        run_dir = self._run(tmp_path)
        with open(run_dir / "events.jsonl", "a",
                  encoding="utf-8") as fh:
            fh.write('{"kind": "state", "ind')  # torn mid-write
        assert read_events(run_dir)
        (run_dir / "summary.json").unlink()
        assert read_run_manifest(run_dir).summary["partial"] is True

    def test_synthesize_raises_when_nothing_recoverable(self, tmp_path):
        empty = tmp_path / "empty-run"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            synthesize_summary(empty)

    def test_report_cli_renders_a_partial_run(self, tmp_path, capsys):
        from repro.tools.report import main
        run_dir = self._run(tmp_path)
        (run_dir / "summary.json").unlink()
        assert main([str(run_dir)]) == 0
        assert "PARTIAL" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Tools: trace_export and top
# ----------------------------------------------------------------------

class TestTraceExportTool:
    def test_export_cli_writes_chrome_trace_json(self, tmp_path,
                                                 capsys):
        from repro.tools.trace_export import main
        engine = ExperimentEngine(cache_dir=tmp_path / "cache", jobs=1)
        engine.run([SimJob(app="tomcat", policy="lru", mode="misses",
                           length=LENGTH)])
        out = tmp_path / "trace.json"
        assert main([str(engine.last_manifest), "-o", str(out)]) == 0
        document = json.loads(out.read_text())
        slices = [e for e in document["traceEvents"]
                  if e.get("ph") == "X"]
        assert slices
        for event in slices:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["args"]["trace_id"]
        assert any(e.get("ph") == "M" for e in document["traceEvents"])

    def test_export_without_spans_exits_nonzero(self, tmp_path,
                                                monkeypatch):
        from repro.tools.trace_export import main
        monkeypatch.setenv("REPRO_TRACING", "0")
        engine = ExperimentEngine(cache_dir=tmp_path / "cache", jobs=1)
        engine.run([SimJob(app="tomcat", policy="lru", mode="misses",
                           length=LENGTH)])
        assert main([str(engine.last_manifest)]) == 2

    def test_export_missing_run_exits_nonzero(self, tmp_path):
        from repro.tools.trace_export import main
        assert main([str(tmp_path / "nowhere")]) == 2


class TestTopTool:
    def test_run_mode_once_renders_states_and_spans(self, tmp_path,
                                                    capsys):
        from repro.tools.top import main
        engine = ExperimentEngine(cache_dir=tmp_path / "cache", jobs=1)
        engine.run([SimJob(app="tomcat", policy=p, mode="misses",
                           length=LENGTH) for p in ("lru", "srrip")])
        assert main([str(engine.last_manifest), "--once"]) == 0
        out = capsys.readouterr().out
        assert "status=completed" in out
        assert "succeeded=2" in out
        assert "slowest spans" in out
        assert "engine/run" in out

    def test_run_mode_renders_partial_runs(self, tmp_path, capsys):
        from repro.tools.top import main
        engine = ExperimentEngine(cache_dir=tmp_path / "cache", jobs=1)
        engine.run([SimJob(app="tomcat", policy="lru", mode="misses",
                           length=LENGTH)])
        (engine.last_manifest / "summary.json").unlink()
        assert main([str(engine.last_manifest), "--once"]) == 0
        assert "[partial]" in capsys.readouterr().out

    def test_missing_path_exits_nonzero(self, tmp_path):
        from repro.tools.top import main
        assert main([str(tmp_path / "nowhere"), "--once"]) == 2

    def test_service_frame_renders_rates_and_quantiles(self):
        from repro.tools.top import render_service_frame
        registry = MetricsRegistry(enabled=True)
        registry.count('service/requests{tenant="alice"}', 10)
        registry.observe('service/request_seconds{tenant="alice"}',
                         0.08, bounds=LATENCY_BUCKETS)
        status = {
            "requests": 10, "coalesced_requests": 3,
            "tenants": {"alice": {
                "usage_bytes": 4096, "quota_bytes": 1 << 20,
                "cache": {"hits": 3, "misses": 1}}},
            "runs": [{"tenant": "alice", "run_id": "r-1",
                      "status": "completed", "jobs": 2,
                      "wall_seconds": 0.5}],
            "telemetry": registry.snapshot(),
        }
        previous = {"telemetry": {"counters":
                                  {'service/requests{tenant="alice"}':
                                   6}}}
        frame = render_service_frame(status, "a 1\nb 2\n",
                                     previous=previous, interval=2.0)
        assert "alice" in frame
        assert "2.0/s" in frame          # (10 - 6) / 2s
        assert "75%" in frame            # 3 hits / 4 lookups
        assert "100.0ms" in frame        # p50 upper bound bucket
        assert "r-1" in frame

    def test_service_mode_polls_a_live_service(self, tmp_path, capsys):
        from repro.tools import top

        async def scenario():
            service = SimulationService(tmp_path, jobs=1,
                                        coalesce_window=0.0)
            server, (host, port) = await _serve(service)
            try:
                await request_once(
                    host, port,
                    {"op": "sweep", "tenant": "alice",
                     "apps": ["tomcat"], "policies": ["lru"],
                     "mode": "misses", "length": LENGTH})
                return await top.poll_service(host, port)
            finally:
                server.close()
                await server.wait_closed()

        status, metrics_text = asyncio.run(scenario())
        assert status["requests"] == 1
        assert "repro_service_requests_total" in metrics_text
        frame = top.render_service_frame(status, metrics_text)
        assert "alice" in frame

    def test_service_mode_unreachable_exits_nonzero(self):
        from repro.tools.top import main
        # A port from the ephemeral range with (almost surely) no
        # listener; connection refused must exit 2, not traceback.
        assert main(["--host", "127.0.0.1", "--port", "1",
                     "--once"]) == 2
