"""Unit tests for the instruction-cache hierarchy."""

import pytest

from repro.frontend.icache import CacheModel, InstructionHierarchy
from repro.frontend.params import FrontendParams


class TestCacheModel:
    def test_miss_then_hit(self):
        cache = CacheModel(size_bytes=1024, ways=2)
        assert not cache.access_line(5)
        assert cache.access_line(5)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_lru_within_set(self):
        cache = CacheModel(size_bytes=2 * 64, ways=2)   # 1 set, 2 ways
        cache.access_line(1)
        cache.access_line(2)
        cache.access_line(1)           # refresh 1
        cache.access_line(3)           # evicts 2
        assert cache.access_line(1)
        assert not cache.access_line(2)

    def test_sets_partition_lines(self):
        cache = CacheModel(size_bytes=4 * 64, ways=1)   # 4 sets
        for line in range(4):
            cache.access_line(line)
        assert all(cache.access_line(line) for line in range(4))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            CacheModel(size_bytes=64, ways=2)

    def test_miss_rate(self):
        cache = CacheModel(size_bytes=1024, ways=2)
        assert cache.miss_rate == 0.0
        cache.access_line(1)
        assert cache.miss_rate == 1.0


class TestHierarchy:
    def small_params(self):
        return FrontendParams(l1i_bytes=1024, l1i_ways=2,
                              l2_bytes=4096, l2_ways=2,
                              llc_bytes=16384, llc_ways=2)

    def test_latency_by_level(self):
        p = self.small_params()
        h = InstructionHierarchy(p)
        # Cold line: misses everywhere -> memory latency.
        assert h.fetch_line_latency(0x10000) == p.memory_latency
        # Now resident in all levels.
        assert h.fetch_line_latency(0x10000) == 0.0

    def test_l2_hit_latency_after_l1_eviction(self):
        p = self.small_params()
        h = InstructionHierarchy(p)
        h.fetch_line_latency(0x0)
        # Evict line 0 from tiny L1I (16 lines) but not from L2.
        for i in range(1, 40):
            h.fetch_line_latency(i * 64)
        latency = h.fetch_line_latency(0x0)
        assert latency in (p.l2_latency, p.llc_latency)

    def test_perfect_hierarchy_is_free(self):
        h = InstructionHierarchy(self.small_params(), perfect=True)
        assert h.fetch_line_latency(0x123456) == 0.0
        assert h.fetch_block_latency(0x0, 100) == 0.0

    def test_block_spanning_lines(self):
        p = self.small_params()
        h = InstructionHierarchy(p)
        # 32 instructions x 4B = 128B = 2 lines, both cold.
        latency = h.fetch_block_latency(0x40000, 32)
        assert latency == 2 * p.memory_latency

    def test_block_within_one_line(self):
        p = self.small_params()
        h = InstructionHierarchy(p)
        assert h.fetch_block_latency(0x80000, 4) == p.memory_latency

    def test_l2_impki(self):
        p = self.small_params()
        h = InstructionHierarchy(p)
        for i in range(10):
            h.fetch_line_latency(0x90000 + i * 64)
        assert h.l2_instruction_mpki(10_000) == pytest.approx(1.0)
        assert h.l2_instruction_mpki(0) == 0.0
