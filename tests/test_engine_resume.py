"""Checkpoint/resume correctness, including the SIGKILL differential.

The acceptance bar: a sweep interrupted at a FaultPlan-chosen job —
including by SIGKILL of a real pool worker — must complete on
``resume=`` with results bit-identical to an uninterrupted run, with no
job attempted more than ``1 + max_retries`` times per run.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.engine import (ExperimentEngine, ExperimentError,
                                  JobState, SimJob)
from repro.telemetry.manifest import (canonical_rows, read_events,
                                      read_run_manifest)
from repro.telemetry.metrics import MetricsRegistry, set_registry
from repro.testing.faults import Fault, FaultPlan, PLAN_ENV_VAR

JOBS = [SimJob(app=app, policy=policy, length=2500, mode="misses")
        for app in ("tomcat", "python") for policy in ("lru", "srrip")]


@pytest.fixture(autouse=True)
def _fault_env():
    previous_plan = os.environ.pop(PLAN_ENV_VAR, None)
    previous_registry = set_registry(MetricsRegistry(enabled=True))
    yield
    set_registry(previous_registry)
    if previous_plan is None:
        os.environ.pop(PLAN_ENV_VAR, None)
    else:
        os.environ[PLAN_ENV_VAR] = previous_plan


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted run every faulted run must converge to."""
    engine = ExperimentEngine(
        cache_dir=tmp_path_factory.mktemp("reference"), jobs=1)
    results = engine.run(JOBS)
    rows = canonical_rows(read_run_manifest(engine.last_manifest).rows)
    return results, rows


def _canonical(manifest_path) -> list:
    return canonical_rows(read_run_manifest(manifest_path).rows)


class TestResumeBasics:
    def test_resume_skips_verified_jobs(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1)
        first = engine.run(JOBS)
        first_id = engine.last_run_id
        resumed = engine.run(JOBS, resume=first_id)
        assert [r.state for r in resumed] == [JobState.SKIPPED] * 4
        assert [r.value for r in resumed] == [r.value for r in first]
        counters = engine.last_run_telemetry["counters"]
        assert counters["engine/jobs/skipped"] == len(JOBS)
        manifest = read_run_manifest(engine.last_manifest)
        assert manifest.summary["status"] == "resumed"
        assert manifest.summary["resumed_from"] == first_id

    def test_resume_latest_and_unknown_id(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1)
        with pytest.raises(ValueError, match="no previous run"):
            engine.run(JOBS, resume="latest")
        engine.run(JOBS)
        resumed = engine.run(JOBS, resume="latest")
        assert all(r.state == JobState.SKIPPED for r in resumed)
        with pytest.raises(ValueError, match="no run"):
            engine.run(JOBS, resume="never-happened")

    def test_resume_requires_a_store(self):
        engine = ExperimentEngine(cache_dir=None, jobs=1)
        with pytest.raises(ValueError, match="cache directory"):
            engine.run(JOBS, resume="latest")


class TestSigkillDifferential:
    def test_worker_sigkill_then_resume_is_bit_identical(self, tmp_path,
                                                         reference):
        """A real pool worker SIGKILLs itself at a FaultPlan-chosen job;
        with retries disabled the sweep fails, and ``--resume`` must
        finish it bit-identically to the uninterrupted reference."""
        ref_results, ref_rows = reference
        FaultPlan(faults=(Fault("die", 1),)).install()
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=2,
                                  max_retries=0)
        with pytest.raises(ExperimentError) as info:
            engine.run(JOBS)
        os.environ.pop(PLAN_ENV_VAR, None)
        crashed_id = info.value.run_id
        crashed_events = read_events(engine.last_manifest)
        crashed_ok = {e["index"] for e in crashed_events
                      if e["state"] == JobState.SUCCEEDED}

        resumed = engine.run(JOBS, resume=crashed_id)
        assert [r.state in (JobState.SUCCEEDED, JobState.SKIPPED)
                for r in resumed] == [True] * len(JOBS)
        # Bit-identical values (serialized form, not just equality).
        assert ([pickle.dumps(r.value) for r in resumed]
                == [pickle.dumps(r.value) for r in ref_results])
        assert _canonical(engine.last_manifest) == ref_rows
        # The resumed run only re-ran work the crashed run lost: every
        # job it actually executed was *not* finished before the crash.
        rerun = {e["index"] for e in read_events(engine.last_manifest)
                 if e["state"] == JobState.RUNNING}
        assert rerun.isdisjoint(crashed_ok)
        assert rerun  # the SIGKILLed job really was re-executed

    def test_corrupt_artifact_is_quarantined_and_rebuilt_on_resume(
            self, tmp_path, reference):
        """quarantine-then-rebuild: a corrupt store entry fails its
        digest during resume verification, is moved aside, and the job
        re-runs instead of being skipped."""
        ref_results, ref_rows = reference
        FaultPlan(faults=(Fault("corrupt", 0),
                          Fault("raise", 3, attempts=(0, 1)))).install()
        engine = ExperimentEngine(cache_dir=tmp_path, jobs=1,
                                  max_retries=1)
        with pytest.raises(ExperimentError):
            engine.run(JOBS)
        os.environ.pop(PLAN_ENV_VAR, None)

        resumed = engine.run(JOBS, resume=engine.last_run_id)
        states = {r.job.policy + "/" + r.job.app: r.state
                  for r in resumed}
        # Job 0's artifact was corrupted on disk: it must have been
        # re-executed (not skipped), and the corrupt file quarantined.
        assert resumed[0].state == JobState.SUCCEEDED
        assert engine.stats.quarantined == 1, states
        quarantine = Path(tmp_path) / ".quarantine"
        assert any(quarantine.rglob("*.pkl"))
        assert ([pickle.dumps(r.value) for r in resumed]
                == [pickle.dumps(r.value) for r in ref_results])
        assert _canonical(engine.last_manifest) == ref_rows


class TestMultiPolicyGroupResume:
    """Single-pass group replay under faults: killing a worker mid-group
    must resume to bit-identical results for *every* policy in the
    group, whether its artifact was written before or after the crash."""

    GROUP_JOBS = [SimJob(app="tomcat", policy=policy, length=2500,
                         mode="misses")
                  for policy in ("lru", "srrip", "dip", "ship", "random")]

    def test_worker_sigkill_mid_group_resumes_bit_identical(self,
                                                            tmp_path):
        ref_engine = ExperimentEngine(cache_dir=tmp_path / "ref", jobs=1)
        ref_results = ref_engine.run(self.GROUP_JOBS)
        ref_rows = _canonical(ref_engine.last_manifest)

        # Job 2 is mid-group: its batch-mates before it already stored
        # their artifacts (some via the group sweep), the ones after it
        # die with the worker.
        FaultPlan(faults=(Fault("die", 2),)).install()
        engine = ExperimentEngine(cache_dir=tmp_path / "run", jobs=2,
                                  max_retries=0)
        with pytest.raises(ExperimentError) as info:
            engine.run(self.GROUP_JOBS)
        os.environ.pop(PLAN_ENV_VAR, None)

        resumed = engine.run(self.GROUP_JOBS, resume=info.value.run_id)
        assert all(r.state in (JobState.SUCCEEDED, JobState.SKIPPED)
                   for r in resumed)
        assert ([pickle.dumps(r.value) for r in resumed]
                == [pickle.dumps(r.value) for r in ref_results])
        assert _canonical(engine.last_manifest) == ref_rows

    def test_serial_fault_mid_group_retries_ungrouped(self, tmp_path):
        """A failed group member retries alone (no memoized sweep value
        can be resurrected) and still converges bit-identically."""
        ref_engine = ExperimentEngine(cache_dir=tmp_path / "ref", jobs=1)
        ref_results = ref_engine.run(self.GROUP_JOBS)

        FaultPlan(faults=(Fault("raise", 2, attempts=(0,)),)).install()
        engine = ExperimentEngine(cache_dir=tmp_path / "run", jobs=1,
                                  max_retries=1)
        try:
            results = engine.run(self.GROUP_JOBS)
        finally:
            os.environ.pop(PLAN_ENV_VAR, None)
        assert ([pickle.dumps(r.value) for r in results]
                == [pickle.dumps(r.value) for r in ref_results])


class TestResumeProperty:
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_faulted_run_resumes_to_reference(self, seed, reference):
        """For any seeded FaultPlan: run → (maybe crash) → resume is
        bit-identical to an uninterrupted run, and no run attempts a job
        more than ``1 + max_retries`` times."""
        ref_results, ref_rows = reference
        max_retries = 0
        root = Path(tempfile.mkdtemp(prefix=f"resume-prop-{seed}-"))
        plan = FaultPlan.random(seed, n_jobs=len(JOBS), rate=0.7,
                                hang_seconds=1.0)
        plan.install()
        engine = ExperimentEngine(cache_dir=root, jobs=1,
                                  max_retries=max_retries,
                                  job_timeout=0.25)
        try:
            try:
                results = engine.run(JOBS)
                crashed_id = None
            except ExperimentError as exc:
                crashed_id = exc.run_id
        finally:
            os.environ.pop(PLAN_ENV_VAR, None)
        first_events = read_events(engine.last_manifest)

        if crashed_id is not None:
            results = engine.run(JOBS, resume=crashed_id)
            second_events = read_events(engine.last_manifest)
        else:
            second_events = []

        assert ([pickle.dumps(r.value) for r in results]
                == [pickle.dumps(r.value) for r in ref_results])
        assert _canonical(engine.last_manifest) == ref_rows
        for events in (first_events, second_events):
            for i in range(len(JOBS)):
                attempts = sum(1 for e in events
                               if e["index"] == i
                               and e["state"] == JobState.RUNNING)
                assert attempts <= 1 + max_retries
