"""Confluence-style temporal BTB prefetching.

Confluence (Kaynak et al.) observes that BTB miss sequences recur: the same
temporal stream of branches misses together.  It records the miss stream and,
when the head of a previously recorded stream misses again, replays the next
several entries into the BTB ahead of the frontend.

Like any temporal prefetcher it is blind to *new* streams — the paper notes
that almost half of data center BTB misses are non-recurring, which bounds
how much this mechanism can help (Fig. 4's ~1.4% mean speedup).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.btb.btb import BTB
from repro.prefetch.base import BTBPrefetcher

__all__ = ["ConfluencePrefetcher"]


class ConfluencePrefetcher(BTBPrefetcher):
    """Record-and-replay over the BTB miss stream."""

    name = "confluence"

    def __init__(self, log_entries: int = 4096, degree: int = 2):
        """Defaults follow a realistic on-chip metadata budget; a larger
        log with a deeper replay degree turns the model clairvoyant (it
        trains on the very run it accelerates) and overshoots the paper's
        reported ~1.4% mean gain severalfold."""
        super().__init__()
        if log_entries < 2:
            raise ValueError("log_entries must be >= 2")
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.log_entries = log_entries
        # Circular miss log of (pc, target).
        self._log: List[Tuple[int, int]] = []
        self._head = 0
        # pc -> most recent position in the log.
        self._last_position: Dict[int, int] = {}
        self.replays = 0

    def _append(self, pc: int, target: int) -> None:
        if len(self._log) < self.log_entries:
            self._log.append((pc, target))
            position = len(self._log) - 1
        else:
            position = self._head
            evicted_pc = self._log[position][0]
            if self._last_position.get(evicted_pc) == position:
                del self._last_position[evicted_pc]
            self._log[position] = (pc, target)
            self._head = (self._head + 1) % self.log_entries
        self._last_position[pc] = position

    def on_access(self, pc: int, target: int, hit: bool, btb: BTB,
                  index: int) -> None:
        if hit:
            return
        previous = self._last_position.get(pc)
        self._append(pc, target)
        if previous is None:
            return
        # Replay the entries that followed this pc's last miss.
        self.replays += 1
        n = len(self._log)
        for step in range(1, self.degree + 1):
            position = previous + step
            if position >= n or position == self._head:
                break
            replay_pc, replay_target = self._log[position]
            if replay_pc != pc:
                self.prefetch(btb, replay_pc, replay_target, index)
