"""BTB prefetching mechanisms (prior work reproduced for Figs. 4 and 21).

These are deliberately compact models that capture each design's first-order
benefit and first-order cost (DESIGN.md §2):

* :class:`ConfluencePrefetcher` — temporal record-and-replay of BTB miss
  streams (Kaynak et al., MICRO 2015);
* :class:`ShotgunPrefetcher` — BTB-directed region prefetching with the
  static-partitioning capacity tax that the paper identifies as its failure
  mode (Kumar et al., ASPLOS 2018);
* :class:`TwigPrefetcher` — profile-guided BTB prefetch injection (Khan et
  al., MICRO 2021), the state-of-the-art mechanism Thermometer composes with
  in Fig. 21.
"""

from repro.prefetch.base import BTBPrefetcher, NullPrefetcher
from repro.prefetch.confluence import ConfluencePrefetcher
from repro.prefetch.shotgun import ShotgunPrefetcher, shotgun_btb_config
from repro.prefetch.twig import TwigPrefetcher

__all__ = [
    "BTBPrefetcher",
    "ConfluencePrefetcher",
    "NullPrefetcher",
    "ShotgunPrefetcher",
    "TwigPrefetcher",
    "shotgun_btb_config",
]
