"""Prefetcher interface used by the frontend simulator."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.btb.btb import BTB

__all__ = ["BTBPrefetcher", "NullPrefetcher"]


class BTBPrefetcher(ABC):
    """Observes demand BTB accesses and may insert entries ahead of use.

    The simulator calls :meth:`on_access` after every demand access; the
    prefetcher inserts predictions with ``btb.insert`` (which respects the
    replacement policy, so prefetch-induced evictions behave exactly like
    the paper describes).
    """

    name = "base"

    def __init__(self) -> None:
        self.issued = 0
        self.installed = 0

    @abstractmethod
    def on_access(self, pc: int, target: int, hit: bool, btb: BTB,
                  index: int) -> None:
        """React to a demand access (hit or miss) at stream ``index``."""

    def prefetch(self, btb: BTB, pc: int, target: int, index: int) -> None:
        """Issue one prefetch insertion, keeping statistics."""
        self.issued += 1
        if btb.insert(pc, target, index):
            self.installed += 1


class NullPrefetcher(BTBPrefetcher):
    """No prefetching (the baseline configuration)."""

    name = "none"

    def on_access(self, pc: int, target: int, hit: bool, btb: BTB,
                  index: int) -> None:
        pass
