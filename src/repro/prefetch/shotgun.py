"""Shotgun-style BTB-directed prefetching.

Shotgun (Kumar et al.) partitions the BTB statically: a U-BTB for
unconditional branches whose entries carry *region footprint* metadata, a
C-BTB for conditional branches, and a return buffer.  On a taken
unconditional branch, it prefetches the branches of the target region
recorded in the footprint.

The paper under reproduction identifies why this fails for data center
applications (§2.2): the static partition rarely matches the conditional /
unconditional working-set split, and footprint metadata consumes precious
BTB storage.  We model both costs: :func:`shotgun_btb_config` shrinks the
effective BTB (metadata tax), and region prefetching brings in branches
whether or not they will be used.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.btb.btb import BTB
from repro.btb.config import BTBConfig
from repro.prefetch.base import BTBPrefetcher

__all__ = ["ShotgunPrefetcher", "shotgun_btb_config"]

#: Fraction of BTB storage consumed by Shotgun's footprint metadata and
#: partition imbalance (the paper reports 26-45% of conditional branches not
#: fitting; 35% sits inside that band).
METADATA_TAX = 0.35


def shotgun_btb_config(config: BTBConfig,
                       metadata_tax: float = METADATA_TAX) -> BTBConfig:
    """The effective BTB left after Shotgun's metadata/partition overheads."""
    if not 0.0 <= metadata_tax < 1.0:
        raise ValueError("metadata_tax must be in [0, 1)")
    entries = max(config.ways, int(config.entries * (1.0 - metadata_tax)))
    return replace(config, entries=entries)


class ShotgunPrefetcher(BTBPrefetcher):
    """Region-footprint prefetching triggered by unconditional branches."""

    name = "shotgun"

    def __init__(self, region_bytes: int = 512, footprint_branches: int = 8,
                 table_entries: int = 1024):
        super().__init__()
        self.region_bytes = region_bytes
        self.footprint_branches = footprint_branches
        self.table_entries = table_entries
        # region id -> recently observed branches inside the region.
        self._footprints: Dict[int, List[Tuple[int, int]]] = {}
        self._order: List[int] = []

    def _region(self, address: int) -> int:
        return address // self.region_bytes

    def _record(self, pc: int, target: int) -> None:
        region = self._region(pc)
        footprint = self._footprints.get(region)
        if footprint is None:
            if len(self._order) >= self.table_entries:
                oldest = self._order.pop(0)
                self._footprints.pop(oldest, None)
            footprint = []
            self._footprints[region] = footprint
            self._order.append(region)
        for i, (existing_pc, _) in enumerate(footprint):
            if existing_pc == pc:
                footprint[i] = (pc, target)
                return
        footprint.append((pc, target))
        if len(footprint) > self.footprint_branches:
            footprint.pop(0)

    def on_access(self, pc: int, target: int, hit: bool, btb: BTB,
                  index: int) -> None:
        # Every observed taken branch trains its region's footprint.
        self._record(pc, target)
        # Unconditional control transfers trigger target-region prefetch.
        footprint = self._footprints.get(self._region(target))
        if footprint:
            for branch_pc, branch_target in footprint:
                if branch_pc != pc:
                    self.prefetch(btb, branch_pc, branch_target, index)
