"""Twig-style profile-guided BTB prefetching (Khan et al., MICRO 2021).

Twig analyzes an execution profile offline to find, for each BTB miss, a
*trigger* branch that reliably executes a little ahead of the miss, and
injects a prefetch (the missing branch's pc and target) at the trigger.
Online, whenever a trigger executes the associated entries are installed.

This is the state-of-the-art BTB prefetching mechanism the paper composes
Thermometer with (Fig. 21): prefetching removes part of the miss stream
while making replacement quality matter *more*, because prefetch fills
compete with demand entries for BTB space.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, List, Tuple

from repro.btb.btb import BTB, btb_access_stream
from repro.btb.config import BTBConfig, DEFAULT_BTB_CONFIG
from repro.btb.replacement.lru import LRUPolicy
from repro.prefetch.base import BTBPrefetcher
from repro.trace.record import BranchTrace

__all__ = ["TwigPrefetcher"]


class TwigPrefetcher(BTBPrefetcher):
    """Profile-derived trigger → prefetch-candidate table."""

    name = "twig"

    def __init__(self, injections: Dict[int, List[Tuple[int, int]]]):
        """``injections`` maps a trigger pc to the (pc, target) entries to
        install when the trigger executes.  Use :meth:`train` to derive the
        table from a profiling trace."""
        super().__init__()
        self._injections = injections
        self.triggers_fired = 0

    # ------------------------------------------------------------------
    #: Default budget of trigger sites (injected prefetch hints occupy
    #: code/encoding space, so real deployments bound them).
    DEFAULT_MAX_TRIGGERS = 2048

    @classmethod
    def train(cls, trace: BranchTrace,
              config: BTBConfig = DEFAULT_BTB_CONFIG,
              lookahead: int = 4, max_per_trigger: int = 2,
              min_occurrences: int = 4,
              max_triggers: int | None = None) -> "TwigPrefetcher":
        """Build the injection table from a profiling run.

        Replays the trace under the baseline (LRU) BTB, and for every miss
        selects the branch that executed ``lookahead`` accesses earlier as
        the trigger candidate.  (trigger, missing-branch) pairs seen at
        least ``min_occurrences`` times are injected.

        ``lookahead`` trades timeliness for stability: a deep lookahead
        prefetches earlier but lands in unrelated predecessor code whose
        identity varies between occurrences, so the pair counts never
        accumulate.  A shallow lookahead keeps the trigger inside the same
        repeating region as the miss.
        """
        pcs, targets = btb_access_stream(trace)
        btb = BTB(config, LRUPolicy())
        window: deque = deque(maxlen=lookahead)
        pair_counts: Counter = Counter()
        pair_target: Dict[Tuple[int, int], int] = {}
        for i in range(len(pcs)):
            pc = int(pcs[i])
            target = int(targets[i])
            hit = btb.access(pc, target, i)
            if not hit and len(window) == lookahead:
                trigger = window[0]
                if trigger != pc:
                    pair_counts[(trigger, pc)] += 1
                    pair_target[(trigger, pc)] = target
            window.append(pc)
        if max_triggers is None:
            max_triggers = cls.DEFAULT_MAX_TRIGGERS
        injections: Dict[int, List[Tuple[int, int]]] = {}
        for (trigger, miss_pc), count in pair_counts.most_common():
            if count < min_occurrences:
                break
            candidates = injections.get(trigger)
            if candidates is None:
                if len(injections) >= max_triggers:
                    continue
                candidates = injections.setdefault(trigger, [])
            if len(candidates) < max_per_trigger:
                candidates.append((miss_pc, pair_target[(trigger, miss_pc)]))
        return cls(injections)

    # ------------------------------------------------------------------
    @property
    def table_size(self) -> int:
        """Number of trigger pcs with injections."""
        return len(self._injections)

    def on_access(self, pc: int, target: int, hit: bool, btb: BTB,
                  index: int) -> None:
        candidates = self._injections.get(pc)
        if not candidates:
            return
        self.triggers_fired += 1
        for branch_pc, branch_target in candidates:
            self.prefetch(btb, branch_pc, branch_target, index)
