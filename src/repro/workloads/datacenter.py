"""Models of the paper's 13 data center applications.

Each entry is a :class:`~repro.workloads.generator.WorkloadSpec` tuned to
reproduce the qualitative traits the paper reports for that application:

* **branch footprint** relative to the 8K-entry BTB (drives the OPT-vs-LRU
  gap in Figs. 1/11/12);
* **code footprint** via region spacing (drives the L2 instruction MPKI axis
  of Fig. 3 and the perfect-I-cache limit of Fig. 2) — ``verilator`` is the
  deliberate outlier with a footprint two orders of magnitude beyond the
  rest, as in the paper;
* **conditional bias spread** (drives the perfect-branch-predictor limit);
* dynamic mixture (call intensity, cold-burst frequency, loop trip counts).

The absolute speedups of the reproduction depend on the synthetic substrate
and the cycle-approximate frontend model; the *ordering* across applications
and policies is the target (see DESIGN.md §4).
"""

from __future__ import annotations

from typing import Dict, List

from repro.trace.record import BranchTrace
from repro.workloads.generator import (LayoutParams, MixParams,
                                       SyntheticWorkload, WorkloadSpec)

__all__ = ["APPLICATIONS", "app_names", "app_spec", "make_app_workload",
           "make_app_trace", "DEFAULT_TRACE_LENGTH"]

#: Default dynamic trace length (branch records) used by the harness when the
#: caller does not override it.  Long enough for steady-state BTB behavior,
#: short enough for a pure-Python simulation campaign.
DEFAULT_TRACE_LENGTH = 200_000


def _spec(name: str, *, loops: int, loop_branches, active: int, core: int,
          funcs: int, cold: int, gap: int, p_call: float, p_cold: float,
          burst, trips: int, bias, zipf: float = 0.8, indirect: float = 0.25,
          phase_len: int = 20_000, revisit: float = 0.15,
          length: int = DEFAULT_TRACE_LENGTH) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        layout=LayoutParams(
            n_hot_loops=loops, hot_loop_branches=loop_branches,
            n_warm_funcs=funcs, n_cold_branches=cold,
            region_gap_bytes=gap, cond_bias=bias, loop_trips_max=trips,
            indirect_loop_fraction=indirect, loop_zipf_s=zipf),
        mix=MixParams(
            active_loops=active, core_loops=core, phase_len=phase_len,
            p_call=p_call, p_cold_burst=p_cold,
            cold_burst_len=burst, cold_revisit=revisit),
        default_length=length)


#: The 13 applications of §2.1, keyed by the paper's names.
APPLICATIONS: Dict[str, WorkloadSpec] = {
    "cassandra": _spec(
        "cassandra", loops=500, loop_branches=(12, 28), active=140, core=12,
        funcs=400, cold=6000, gap=8, p_call=0.20, p_cold=0.05,
        burst=(30, 150), trips=18, bias=(0.68, 0.97), indirect=0.30),
    "clang": _spec(
        "clang", loops=800, loop_branches=(10, 24), active=230, core=14,
        funcs=700, cold=12000, gap=8, p_call=0.25, p_cold=0.06,
        burst=(40, 180), trips=14, bias=(0.62, 0.96), indirect=0.15),
    "drupal": _spec(
        "drupal", loops=450, loop_branches=(10, 22), active=120, core=10,
        funcs=500, cold=5000, gap=8, p_call=0.22, p_cold=0.045,
        burst=(25, 130), trips=16, bias=(0.66, 0.97), indirect=0.35),
    "finagle-chirper": _spec(
        "finagle-chirper", loops=350, loop_branches=(10, 22), active=100,
        core=8, funcs=320, cold=4000, gap=8, p_call=0.18, p_cold=0.04,
        burst=(25, 120), trips=20, bias=(0.70, 0.97), indirect=0.30),
    "finagle-http": _spec(
        "finagle-http", loops=320, loop_branches=(10, 20), active=90, core=8,
        funcs=300, cold=3600, gap=8, p_call=0.18, p_cold=0.04,
        burst=(25, 110), trips=22, bias=(0.70, 0.97), indirect=0.30),
    "kafka": _spec(
        "kafka", loops=520, loop_branches=(12, 26), active=150, core=12,
        funcs=420, cold=6500, gap=8, p_call=0.20, p_cold=0.05,
        burst=(30, 150), trips=18, bias=(0.68, 0.97), indirect=0.30),
    "mediawiki": _spec(
        "mediawiki", loops=380, loop_branches=(10, 20), active=90, core=8,
        funcs=360, cold=4500, gap=8, p_call=0.20, p_cold=0.04,
        burst=(25, 120), trips=20, bias=(0.64, 0.96), indirect=0.35),
    "mysql": _spec(
        "mysql", loops=600, loop_branches=(10, 24), active=170, core=12,
        funcs=550, cold=8000, gap=8, p_call=0.22, p_cold=0.055,
        burst=(35, 160), trips=16, bias=(0.66, 0.97), indirect=0.20),
    "postgresql": _spec(
        "postgresql", loops=400, loop_branches=(10, 22), active=100, core=10,
        funcs=380, cold=5000, gap=8, p_call=0.20, p_cold=0.045,
        burst=(25, 130), trips=18, bias=(0.68, 0.97), indirect=0.20),
    "python": _spec(
        "python", loops=150, loop_branches=(8, 18), active=40, core=8,
        funcs=150, cold=1200, gap=8, p_call=0.15, p_cold=0.02,
        burst=(15, 60), trips=30, bias=(0.72, 0.98), indirect=0.40),
    "tomcat": _spec(
        "tomcat", loops=300, loop_branches=(10, 20), active=70, core=8,
        funcs=280, cold=3000, gap=8, p_call=0.18, p_cold=0.035,
        burst=(20, 100), trips=22, bias=(0.70, 0.97), indirect=0.30),
    "verilator": _spec(
        "verilator", loops=900, loop_branches=(14, 30), active=450, core=16,
        funcs=800, cold=24000, gap=16, p_call=0.12, p_cold=0.06,
        burst=(80, 300), trips=20, bias=(0.72, 0.98), indirect=0.05,
        zipf=0.9, phase_len=40_000, revisit=0.02, length=300_000),
    "wordpress": _spec(
        "wordpress", loops=420, loop_branches=(10, 22), active=110, core=10,
        funcs=420, cold=5000, gap=8, p_call=0.22, p_cold=0.045,
        burst=(25, 130), trips=18, bias=(0.66, 0.97), indirect=0.35),
}


def app_names() -> List[str]:
    """The 13 application names in the paper's (alphabetical) order."""
    return list(APPLICATIONS)


def app_spec(name: str) -> WorkloadSpec:
    """Look up an application spec by name; raises ``KeyError`` with the
    available names on a miss."""
    try:
        return APPLICATIONS[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}; available: "
                       f"{', '.join(APPLICATIONS)}") from None


def make_app_workload(name: str) -> SyntheticWorkload:
    """Instantiate (and lay out) the named application workload."""
    return SyntheticWorkload(app_spec(name))


def make_app_trace(name: str, input_id: int = 0, length: int | None = None,
                   seed: int = 0) -> BranchTrace:
    """Generate a dynamic trace for the named application.

    ``input_id`` selects the input configuration (paper inputs '#0'–'#3');
    the static layout is shared across inputs.
    """
    return make_app_workload(name).generate(
        input_id=input_id, length=length, seed=seed)
