"""CBP-5-like and IPC-1-like trace suites.

The paper validates on 663 industry traces from the 5th Championship Branch
Prediction (CBP-5) and 50 traces from the 1st Instruction Prefetching
Championship (IPC-1).  Both suites are dominated by traces whose branch
working set fits in an 8K-entry BTB (only compulsory misses → all
replacement policies tie), with a tail of traces whose BTB MPKI is ≥ 1 where
replacement quality matters.  The generators below reproduce that footprint
distribution with per-trace randomized parameters.
"""

from __future__ import annotations

import random
from typing import List

from repro.trace.record import BranchTrace
from repro.workloads.generator import (LayoutParams, MixParams,
                                       SyntheticWorkload, WorkloadSpec)

__all__ = ["make_cbp5_suite", "make_ipc1_suite", "make_suite_trace",
           "CBP5_SUITE_SIZE", "IPC1_SUITE_SIZE"]

#: Full suite sizes used by the paper.  The harness typically runs a scaled
#: subset (every k-th trace) because each trace is a full simulation.
CBP5_SUITE_SIZE = 663
IPC1_SUITE_SIZE = 50


def _suite_spec(suite: str, index: int, rng: random.Random,
                length: int) -> WorkloadSpec:
    """Draw one trace's workload spec.

    Roughly 45% of traces get a small footprint (fits the BTB — compulsory
    misses only, matching the paper's 298/663 unaffected CBP-5 traces), 40%
    a medium footprint, and 15% a large, replacement-bound footprint.
    """
    bucket = rng.random()
    if bucket < 0.45:
        loops = rng.randint(20, 120)
        active = max(4, loops // 3)
        cold = rng.randint(100, 800)
        p_cold = 0.01
    elif bucket < 0.85:
        loops = rng.randint(150, 450)
        active = max(20, loops // 3)
        cold = rng.randint(1000, 5000)
        p_cold = rng.uniform(0.02, 0.05)
    else:
        loops = rng.randint(500, 1200)
        active = max(120, loops // 3)
        cold = rng.randint(5000, 16000)
        p_cold = rng.uniform(0.04, 0.08)
    return WorkloadSpec(
        name=f"{suite}_{index:03d}",
        layout=LayoutParams(
            n_hot_loops=loops,
            hot_loop_branches=(rng.randint(6, 12), rng.randint(14, 28)),
            n_warm_funcs=max(16, loops // 2),
            n_cold_branches=cold,
            region_gap_bytes=rng.choice((8, 16, 32)),
            cond_bias=(rng.uniform(0.60, 0.72), 0.97),
            indirect_loop_fraction=rng.uniform(0.05, 0.35),
            loop_trips_max=rng.randint(10, 30),
            loop_zipf_s=rng.uniform(0.5, 1.0)),
        mix=MixParams(
            active_loops=active,
            core_loops=max(2, active // 12),
            phase_len=rng.choice((10_000, 20_000, 30_000)),
            p_call=rng.uniform(0.10, 0.25),
            p_cold_burst=p_cold,
            cold_burst_len=(20, rng.randint(60, 200)),
            cold_revisit=rng.uniform(0.05, 0.25)),
        default_length=length)


def make_suite_trace(suite: str, index: int,
                     length: int = 120_000) -> BranchTrace:
    """Generate trace ``index`` of the named suite ('cbp5' or 'ipc1')."""
    if suite not in ("cbp5", "ipc1"):
        raise ValueError(f"unknown suite {suite!r}; expected 'cbp5' or 'ipc1'")
    # Per-trace RNG so any subset of the suite is reproducible in isolation.
    rng = random.Random(hash_seed(suite, index))
    spec = _suite_spec(suite, index, rng, length)
    return SyntheticWorkload(spec).generate(length=length, seed=index)


def make_cbp5_suite(count: int = CBP5_SUITE_SIZE,
                    length: int = 120_000) -> List[BranchTrace]:
    """Generate ``count`` CBP-5-like traces (evenly sampled from the 663)."""
    indices = _sample_indices(CBP5_SUITE_SIZE, count)
    return [make_suite_trace("cbp5", i, length=length) for i in indices]


def make_ipc1_suite(count: int = IPC1_SUITE_SIZE,
                    length: int = 120_000) -> List[BranchTrace]:
    """Generate ``count`` IPC-1-like traces (evenly sampled from the 50)."""
    indices = _sample_indices(IPC1_SUITE_SIZE, count)
    return [make_suite_trace("ipc1", i, length=length) for i in indices]


def _sample_indices(total: int, count: int) -> List[int]:
    if count <= 0:
        raise ValueError("count must be positive")
    count = min(count, total)
    step = total / count
    return [int(i * step) for i in range(count)]


def hash_seed(suite: str, index: int) -> int:
    """Deterministic seed for one suite trace (stable across processes)."""
    acc = 0xCBF29CE484222325
    for byte in f"{suite}:{index}".encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc
