"""Parameterized synthetic branch-trace generator.

A workload is laid out once (deterministically from its name) as a set of
code regions, then *emitted* any number of times with different dynamic
mixture parameters.  Keeping layout and emission separate mirrors how a real
binary behaves across inputs: the static branches (pcs, targets, biases) stay
fixed while the dynamic mixture shifts — which is exactly what the paper's
cross-input experiment (Fig. 13) relies on.

Layout structure
----------------
* **Hot loops** — compact regions whose branches execute in tight iteration;
  they produce the ``hot`` temperature class (high hit-to-taken under OPT).
* **Warm functions** — small callees invoked from hot code at moderate
  frequency; medium reuse distance, the ``warm`` class.
* **Cold chain** — a long run of once-in-a-while branches (initialization,
  error paths, rarely-taken handlers) executed in sequential *bursts*.  The
  bursts sweep the BTB like a scan, thrashing LRU while an optimal policy
  bypasses them; this is the ``cold`` class and the source of the paper's
  transient-variance observation (Fig. 5).

Emission walks phases; each phase activates a subset of hot loops, giving
branches time-varying transient reuse distances while their holistic (whole
execution) behavior stays stable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.trace.record import (INSTRUCTION_BYTES, BranchKind, BranchRecord,
                                BranchTrace)

__all__ = ["LayoutParams", "MixParams", "StaticBranch", "SyntheticWorkload",
           "WorkloadSpec"]


@dataclass(frozen=True)
class StaticBranch:
    """One static branch site produced by the layout stage."""

    pc: int
    target: int
    kind: BranchKind
    bias: float
    ilen: int
    #: Candidate targets for indirect branches (empty for direct branches).
    targets: Tuple[int, ...] = ()


@dataclass(frozen=True)
class LayoutParams:
    """Static code-layout knobs: how big the binary is and how it is shaped.

    The branch footprint (``n_hot_loops * hot_loop_branches`` plus warm and
    cold counts) relative to the BTB capacity determines how much pressure
    the replacement policy is under; ``region_gap_bytes`` spreads code across
    the address space and therefore controls the instruction-cache footprint
    (the paper's L2iMPKI axis, Fig. 3).
    """

    n_hot_loops: int = 24
    hot_loop_branches: Tuple[int, int] = (8, 24)
    n_warm_funcs: int = 64
    warm_func_branches: Tuple[int, int] = (3, 8)
    n_cold_branches: int = 4000
    block_len: Tuple[int, int] = (3, 8)
    #: Taken-probability range for *hard* conditional branches (the ones a
    #: direction predictor actually mispredicts).
    cond_bias: Tuple[float, float] = (0.70, 0.98)
    #: Fraction of conditional branches that are hard; the rest are strongly
    #: biased (taken probability in ``easy_bias``) and nearly free for any
    #: direction predictor — matching how TAGE-class predictors behave on
    #: real code.
    hard_branch_fraction: float = 0.08
    easy_bias: Tuple[float, float] = (0.96, 0.998)
    #: Fraction of hot loops that contain one indirect dispatch branch
    #: (interpreter/vtable style).
    indirect_loop_fraction: float = 0.25
    indirect_fanout: int = 8
    #: Gap between consecutive code regions, in bytes.  Larger gaps inflate
    #: the I-cache footprint without changing branch behavior.
    region_gap_bytes: int = 256
    #: Base address of the code segment.
    text_base: int = 0x400000
    #: Maximum trip count per loop visit, granted to the highest-weight
    #: loops; the tail of the loop distribution gets 1-2 trips per visit.
    loop_trips_max: int = 24
    #: Zipf exponent for hot-loop visit weights.  Loop ``i`` is visited with
    #: probability proportional to ``1 / (i + 1) ** loop_zipf_s``, so early
    #: loops are revisited often (short holistic reuse distance → hot) and
    #: the tail is revisited rarely (→ warm/cold).
    loop_zipf_s: float = 0.8


@dataclass(frozen=True)
class MixParams:
    """Dynamic mixture knobs: how the laid-out code is exercised."""

    #: Number of hot loops simultaneously active within a phase (on top of
    #: the always-active core).
    active_loops: int = 6
    #: Number of highest-weight loops that stay active in every phase.
    #: These form the stable hot core of the application.
    core_loops: int = 4
    #: Dynamic branch records per phase before the active set rotates.
    phase_len: int = 20_000
    #: Multiplier on per-loop trip counts (input-dependent load level).
    trip_scale: float = 1.0
    #: Probability that the next loop visit returns to the same loop
    #: (bursty temporal locality; gives recency-based tie-breaking real
    #: signal, as in actual request-processing phases).
    p_revisit_loop: float = 0.4
    #: Probability of calling a warm function after a loop iteration.
    p_call: float = 0.15
    #: Probability of a cold burst after a loop iteration.
    p_cold_burst: float = 0.04
    cold_burst_len: Tuple[int, int] = (20, 120)
    #: Probability that a cold burst replays a recently visited stretch of
    #: the cold chain instead of advancing the cursor (creates the medium
    #: reuse-distance tail).
    cold_revisit: float = 0.15


@dataclass(frozen=True)
class WorkloadSpec:
    """Complete description of a synthetic workload."""

    name: str
    layout: LayoutParams = field(default_factory=LayoutParams)
    mix: MixParams = field(default_factory=MixParams)
    #: Default dynamic length (branch records) when none is requested.
    default_length: int = 200_000

    def scaled(self, factor: float) -> "WorkloadSpec":
        """A spec with the dynamic length scaled by ``factor``."""
        return replace(self,
                       default_length=max(1, int(self.default_length * factor)))


class SyntheticWorkload:
    """Lays out a synthetic binary and emits dynamic branch traces from it."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self._lay = _Layout(spec.layout, seed=_stable_seed(spec.name))

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def static_branches(self) -> List[StaticBranch]:
        """Every static branch site in the laid-out binary."""
        out: List[StaticBranch] = []
        for loop in self._lay.loops:
            out.extend(loop.body)
            out.append(loop.backedge)
        for func in self._lay.funcs:
            out.extend(func.body)
            out.append(func.ret)
        out.extend(self._lay.cold)
        return out

    def generate(self, input_id: int = 0, length: Optional[int] = None,
                 seed: int = 0) -> BranchTrace:
        """Emit a dynamic trace.

        ``input_id`` selects an input configuration: it perturbs the dynamic
        mixture (active loop rotation, call/cold probabilities, trip counts)
        while leaving the static layout untouched, modeling running the same
        binary on a different input.
        """
        if length is None:
            length = self.spec.default_length
        if length < 0:
            raise ValueError("length must be non-negative")
        mix = _perturb_mix(self.spec.mix, input_id)
        rng = random.Random(_stable_seed(self.spec.name, input_id, seed))
        emitter = _Emitter(self._lay, mix, rng)
        records = emitter.emit(length)
        trace = BranchTrace.from_records(
            records, name=f"{self.spec.name}#{input_id}")
        trace.metadata.update({"workload": self.spec.name,
                               "input_id": input_id, "seed": seed})
        return trace


# ----------------------------------------------------------------------
# Layout stage
# ----------------------------------------------------------------------

@dataclass
class _Loop:
    base: int
    body: List[StaticBranch]
    backedge: StaticBranch
    #: Trip-count range for one visit; correlated with the loop's visit
    #: weight (hot inner loops iterate more), which is what separates the
    #: hot/warm/cold hit-to-taken regimes.
    trips: Tuple[int, int] = (1, 2)


@dataclass
class _Func:
    base: int
    body: List[StaticBranch]
    ret: StaticBranch


class _Layout:
    """Deterministic static code layout for one workload."""

    def __init__(self, params: LayoutParams, seed: int):
        rng = random.Random(seed)
        self.params = params
        self._trip_hi = params.loop_trips_max
        self._cursor = params.text_base
        self.loops: List[_Loop] = []
        self.funcs: List[_Func] = []
        self.cold: List[StaticBranch] = []
        self._build_funcs(rng)
        self._build_loops(rng)
        self._build_cold(rng)
        s = params.loop_zipf_s
        self.loop_weights = [1.0 / (i + 1) ** s
                             for i in range(len(self.loops))]
        self.func_weights = [1.0 / (i + 1) ** 1.2
                             for i in range(len(self.funcs))]

    # -- helpers -------------------------------------------------------
    def _alloc_region(self, n_instructions: int) -> int:
        base = self._cursor
        self._cursor += (n_instructions * INSTRUCTION_BYTES
                         + self.params.region_gap_bytes)
        return base

    def _draw_block(self, rng: random.Random) -> int:
        lo, hi = self.params.block_len
        return rng.randint(lo, hi)

    def _draw_bias(self, rng: random.Random) -> float:
        if rng.random() < self.params.hard_branch_fraction:
            lo, hi = self.params.cond_bias
        else:
            lo, hi = self.params.easy_bias
        return rng.uniform(lo, hi)

    # -- regions -------------------------------------------------------
    def _build_funcs(self, rng: random.Random) -> None:
        lo, hi = self.params.warm_func_branches
        for _ in range(self.params.n_warm_funcs):
            n = rng.randint(lo, hi)
            blocks = [self._draw_block(rng) for _ in range(n + 1)]
            base = self._alloc_region(sum(blocks) + 4)
            body: List[StaticBranch] = []
            pc = base
            for i in range(n):
                pc += blocks[i] * INSTRUCTION_BYTES
                # Forward skip over the next block.
                target = pc + (blocks[i + 1] + 1) * INSTRUCTION_BYTES
                body.append(StaticBranch(
                    pc=pc, target=target, kind=BranchKind.COND_DIRECT,
                    bias=self._draw_bias(rng), ilen=blocks[i]))
            pc += blocks[n] * INSTRUCTION_BYTES
            ret = StaticBranch(pc=pc, target=0, kind=BranchKind.RETURN,
                               bias=1.0, ilen=blocks[n])
            self.funcs.append(_Func(base=base, body=body, ret=ret))

    def _build_loops(self, rng: random.Random) -> None:
        lo, hi = self.params.hot_loop_branches
        for loop_idx in range(self.params.n_hot_loops):
            n = rng.randint(lo, hi)
            blocks = [self._draw_block(rng) for _ in range(n + 1)]
            base = self._alloc_region(sum(blocks) + 4)
            has_indirect = (rng.random() < self.params.indirect_loop_fraction)
            indirect_pos = rng.randrange(n) if has_indirect and n else -1
            body: List[StaticBranch] = []
            pc = base
            for i in range(n):
                pc += blocks[i] * INSTRUCTION_BYTES
                if i == indirect_pos:
                    fanout = max(2, self.params.indirect_fanout)
                    targets = tuple(
                        pc + (j + 2) * 4 * INSTRUCTION_BYTES
                        for j in range(fanout))
                    body.append(StaticBranch(
                        pc=pc, target=targets[0],
                        kind=BranchKind.UNCOND_INDIRECT, bias=1.0,
                        ilen=blocks[i], targets=targets))
                else:
                    target = pc + (blocks[i + 1] + 1) * INSTRUCTION_BYTES
                    body.append(StaticBranch(
                        pc=pc, target=target, kind=BranchKind.COND_DIRECT,
                        bias=self._draw_bias(rng), ilen=blocks[i]))
            pc += blocks[n] * INSTRUCTION_BYTES
            backedge = StaticBranch(
                pc=pc, target=base, kind=BranchKind.COND_DIRECT,
                bias=0.95, ilen=blocks[n])
            self.loops.append(_Loop(base=base, body=body, backedge=backedge))
        self._assign_trip_counts()

    def _assign_trip_counts(self) -> None:
        """Correlate per-loop trip counts with visit rank.

        The highest-weight loops iterate many times per visit (hot inner
        loops), the tail barely iterates (rarely-executed outer code).  The
        resulting bimodal hit-to-taken distribution is the paper's Fig. 6
        cliff structure.
        """
        n = len(self.loops)
        if n == 0:
            return
        for i, loop in enumerate(self.loops):
            frac = i / max(1, n - 1)
            if frac <= 0.30:
                # Hot tier: deep trip counts, scaled within the tier.
                tier = frac / 0.30 if n > 1 else 0.0
                hi = max(6, round(self._trip_hi - (self._trip_hi - 6) * tier))
                loop.trips = (max(3, hi // 2), hi)
            else:
                # Tail tier: barely iterates — low hit-to-taken by design.
                loop.trips = (1, 2)

    def _build_cold(self, rng: random.Random) -> None:
        """Cold branches form one long chain of taken branches.

        Kinds are mixed (strongly-biased conditionals and unconditional
        jumps) so that branch *type* carries no temperature signal — the
        paper's Fig. 8 finding.
        """
        n = self.params.n_cold_branches
        blocks = [self._draw_block(rng) for _ in range(n)]
        pcs: List[int] = []
        for blk in blocks:
            base = self._alloc_region(blk + 1)
            pcs.append(base + blk * INSTRUCTION_BYTES)
        for i in range(n):
            target = pcs[(i + 1) % n] - blocks[(i + 1) % n] * INSTRUCTION_BYTES
            kind = (BranchKind.COND_DIRECT if rng.random() < 0.6
                    else BranchKind.UNCOND_DIRECT)
            self.cold.append(StaticBranch(
                pc=pcs[i], target=target, kind=kind,
                bias=1.0, ilen=blocks[i]))


# ----------------------------------------------------------------------
# Emission stage
# ----------------------------------------------------------------------

def _perturb_mix(mix: MixParams, input_id: int) -> MixParams:
    """Derive the dynamic mixture for a given input configuration.

    Perturbations are modest (±25% on probabilities, shifted trip counts) so
    that most static branches keep their temperature class across inputs —
    the paper reports 81% category stability (Fig. 13).
    """
    if input_id == 0:
        return mix
    rng = random.Random(_stable_seed("mix", input_id))
    scale = rng.uniform(0.75, 1.25)
    return replace(
        mix,
        p_call=min(0.9, mix.p_call * rng.uniform(0.75, 1.25)),
        p_cold_burst=min(0.5, mix.p_cold_burst * scale),
        trip_scale=mix.trip_scale * rng.uniform(0.9, 1.2),
        cold_revisit=min(0.9, mix.cold_revisit * rng.uniform(0.6, 1.4)),
    )


class _Emitter:
    """Walks the layout, producing dynamic branch records."""

    def __init__(self, lay: _Layout, mix: MixParams, rng: random.Random):
        self._lay = lay
        self._mix = mix
        self._rng = rng
        self._cold_cursor = 0
        self._phase_index = 0
        self._last_loop = None
        self._records: List[BranchRecord] = []
        self._limit = 0

    # -- record constructors -------------------------------------------
    def _emit(self, br: StaticBranch, taken: bool,
              target: Optional[int] = None) -> None:
        if target is None:
            target = br.target
        self._records.append(BranchRecord(
            pc=br.pc, target=target, kind=br.kind, taken=taken,
            ilen=br.ilen))

    def _full(self) -> bool:
        return len(self._records) >= self._limit

    # -- structure ------------------------------------------------------
    def _active_loops(self) -> Tuple[Sequence[_Loop], Sequence[float]]:
        """The loops active in the current phase, with visit weights.

        The top-weight core loops are always active; the remainder of the
        active set is a window over the other loops that rotates each phase.
        """
        loops = self._lay.loops
        weights = self._lay.loop_weights
        n = len(loops)
        core = min(self._mix.core_loops, n)
        k = min(self._mix.active_loops, n - core)
        chosen = list(range(core))
        if k > 0 and n > core:
            span = n - core
            start = (self._phase_index * max(1, k // 2)) % span
            chosen.extend(core + (start + i) % span for i in range(k))
        return ([loops[i] for i in chosen],
                [weights[i] for i in chosen])

    def _emit_warm_call(self, callsite: StaticBranch) -> None:
        func = self._rng.choices(self._lay.funcs,
                                 weights=self._lay.func_weights)[0]
        # The call itself: reuse the callsite pc but as a direct call.
        self._records.append(BranchRecord(
            pc=callsite.pc, target=func.base, kind=BranchKind.CALL_DIRECT,
            taken=True, ilen=callsite.ilen))
        for br in func.body:
            if self._full():
                return
            self._emit(br, taken=(self._rng.random() < br.bias))
        if not self._full():
            self._emit(func.ret, taken=True,
                       target=callsite.pc + INSTRUCTION_BYTES)

    def _emit_cold_burst(self) -> None:
        lo, hi = self._mix.cold_burst_len
        burst = self._rng.randint(lo, hi)
        cold = self._lay.cold
        if not cold:
            return
        if self._rng.random() < self._mix.cold_revisit:
            # Replay a recent stretch rather than advancing.
            back = self._rng.randint(burst, 4 * burst)
            start = (self._cold_cursor - back) % len(cold)
        else:
            start = self._cold_cursor
            self._cold_cursor = (self._cold_cursor + burst) % len(cold)
        for i in range(burst):
            if self._full():
                return
            self._emit(cold[(start + i) % len(cold)], taken=True)

    def _emit_loop_visit(self, loop: _Loop) -> None:
        lo, hi = loop.trips
        iters = max(1, round(self._rng.randint(lo, hi)
                             * self._mix.trip_scale))
        # Indirect dispatch targets are sticky for the duration of a visit
        # (batches of same-typed work), which is what makes real indirect
        # branches predictable by a history-based IBTB.
        visit_targets = {
            br.pc: self._rng.choice(br.targets)
            for br in loop.body if br.kind is BranchKind.UNCOND_INDIRECT}
        for it in range(iters):
            for br in loop.body:
                if self._full():
                    return
                if br.kind is BranchKind.UNCOND_INDIRECT:
                    self._emit(br, taken=True, target=visit_targets[br.pc])
                else:
                    self._emit(br, taken=(self._rng.random() < br.bias))
            if self._full():
                return
            last_iteration = (it == iters - 1)
            self._emit(loop.backedge, taken=not last_iteration)
            if self._full():
                return
            if self._rng.random() < self._mix.p_call:
                self._emit_warm_call(loop.backedge)
                if self._full():
                    return
            if self._rng.random() < self._mix.p_cold_burst:
                self._emit_cold_burst()
                if self._full():
                    return

    # -- driver ----------------------------------------------------------
    def emit(self, length: int) -> List[BranchRecord]:
        self._limit = length
        self._records = []
        if length == 0:
            return self._records
        phase_len = max(1, self._mix.phase_len)
        while not self._full():
            phase_end = len(self._records) + phase_len
            active, weights = self._active_loops()
            if not active:
                # Degenerate layout with no hot loops: emit the cold chain.
                if not self._lay.cold:
                    raise ValueError(
                        "workload layout has neither hot loops nor cold "
                        "branches; nothing to emit")
                self._emit_cold_burst()
                continue
            while len(self._records) < phase_end and not self._full():
                if (self._last_loop is not None
                        and self._last_loop in active
                        and self._rng.random() < self._mix.p_revisit_loop):
                    loop = self._last_loop
                else:
                    loop = self._rng.choices(active, weights=weights)[0]
                self._last_loop = loop
                self._emit_loop_visit(loop)
            self._phase_index += 1
        del self._records[length:]
        return self._records


# ----------------------------------------------------------------------

def _stable_seed(*parts) -> int:
    """A deterministic seed derived from arbitrary parts (no hash()
    randomization)."""
    acc = 0xCBF29CE484222325
    for part in parts:
        for byte in str(part).encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        acc ^= 0xFF
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc
