"""Synthetic data-center workload models.

The paper evaluates on Intel PT traces of 13 proprietary-infrastructure
applications plus the CBP-5 and IPC-1 championship trace suites.  None of
those traces are redistributable, so this package provides parameterized
synthetic generators that reproduce the *branch-stream properties* the paper's
results depend on: large branch working sets relative to the BTB, a hot core
of loop branches that dominates dynamic execution, cold scan bursts that
thrash recency-based replacement, and per-application instruction footprints
(see DESIGN.md §2 for the substitution rationale).
"""

from repro.workloads.generator import (LayoutParams, MixParams,
                                       StaticBranch, SyntheticWorkload,
                                       WorkloadSpec)
from repro.workloads.datacenter import (APPLICATIONS, app_names, app_spec,
                                        make_app_trace, make_app_workload)
from repro.workloads.patterns import (cyclic_trace, sawtooth_trace,
                                      scan_trace, two_phase_trace,
                                      zipf_trace)
from repro.workloads.suites import (make_cbp5_suite, make_ipc1_suite,
                                    make_suite_trace)

__all__ = [
    "APPLICATIONS",
    "LayoutParams",
    "MixParams",
    "StaticBranch",
    "SyntheticWorkload",
    "WorkloadSpec",
    "app_names",
    "app_spec",
    "make_app_trace",
    "make_app_workload",
    "make_cbp5_suite",
    "make_ipc1_suite",
    "make_suite_trace",
    "cyclic_trace",
    "sawtooth_trace",
    "scan_trace",
    "two_phase_trace",
    "zipf_trace",
]
