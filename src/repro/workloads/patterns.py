"""Canonical access-pattern micro-workloads.

Small, analytically understood branch streams used for policy unit studies
and ablations — each isolates one classic replacement phenomenon:

* :func:`cyclic_trace` — a working set swept in order; LRU scores zero hits
  once the set exceeds capacity, OPT pins ``capacity - 1`` branches;
* :func:`scan_trace` — a resident loop periodically interrupted by one-shot
  scans (the paper's cold bursts in miniature);
* :func:`zipf_trace` — skewed random reuse, the statistical model of a hot
  core plus a long tail;
* :func:`two_phase_trace` — an abrupt working-set change, the worst case
  for stale profiles;
* :func:`sawtooth_trace` — cyclic sweep with direction reversal, the
  classic anti-LRU/anti-MRU pattern.

All produce valid :class:`~repro.trace.record.BranchTrace` objects (taken
unconditional branches, 4-byte spaced pcs) and are deterministic given a
seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.trace.record import BranchKind, BranchRecord, BranchTrace

__all__ = ["cyclic_trace", "scan_trace", "zipf_trace", "two_phase_trace",
           "sawtooth_trace"]

_BASE = 0x10000


def _record(index: int) -> BranchRecord:
    pc = _BASE + index * 4
    return BranchRecord(pc=pc, target=pc + 64,
                        kind=BranchKind.UNCOND_DIRECT, taken=True, ilen=4)


def _trace(indices: List[int], name: str) -> BranchTrace:
    return BranchTrace.from_records([_record(i) for i in indices],
                                    name=name)


def cyclic_trace(working_set: int, repetitions: int) -> BranchTrace:
    """``working_set`` distinct branches accessed round-robin."""
    if working_set < 1 or repetitions < 1:
        raise ValueError("working_set and repetitions must be positive")
    return _trace(list(range(working_set)) * repetitions,
                  f"cyclic{working_set}x{repetitions}")


def scan_trace(resident: int, scan_length: int, rounds: int,
               resident_repeats: int = 4) -> BranchTrace:
    """A small resident set re-accessed between one-shot scan bursts.

    Each round: the resident branches repeat ``resident_repeats`` times,
    then ``scan_length`` *fresh* branches stream through once.
    """
    if min(resident, scan_length, rounds, resident_repeats) < 1:
        raise ValueError("all parameters must be positive")
    indices: List[int] = []
    scan_cursor = resident
    for _ in range(rounds):
        for _ in range(resident_repeats):
            indices.extend(range(resident))
        indices.extend(range(scan_cursor, scan_cursor + scan_length))
        scan_cursor += scan_length
    return _trace(indices, f"scan{resident}+{scan_length}x{rounds}")


def zipf_trace(unique: int, length: int, s: float = 1.0,
               seed: int = 0) -> BranchTrace:
    """Independent draws from a Zipf(s) distribution over ``unique``
    branches (rank 0 hottest)."""
    if unique < 1 or length < 0:
        raise ValueError("unique must be positive, length non-negative")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** s for rank in range(unique)]
    indices = rng.choices(range(unique), weights=weights, k=length)
    return _trace(indices, f"zipf{unique}s{s}")


def two_phase_trace(working_set: int, phase_length: int,
                    overlap: float = 0.0) -> BranchTrace:
    """Two cyclic phases over (mostly) disjoint working sets.

    ``overlap`` ∈ [0, 1] controls how many branches the second phase shares
    with the first — the knob for stale-profile studies.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be in [0, 1]")
    if working_set < 1 or phase_length < 1:
        raise ValueError("working_set and phase_length must be positive")
    shared = int(working_set * overlap)
    phase1 = list(range(working_set))
    phase2 = list(range(shared)) + list(
        range(working_set, 2 * working_set - shared))
    indices: List[int] = []
    for phase in (phase1, phase2):
        for i in range(phase_length):
            indices.append(phase[i % len(phase)])
    return _trace(indices, f"twophase{working_set}o{overlap}")


def sawtooth_trace(working_set: int, repetitions: int) -> BranchTrace:
    """Sweep up then down (0,1,...,n-1,n-2,...,1 repeated)."""
    if working_set < 2 or repetitions < 1:
        raise ValueError("working_set must be >= 2, repetitions >= 1")
    up = list(range(working_set))
    down = list(range(working_set - 2, 0, -1))
    return _trace((up + down) * repetitions,
                  f"sawtooth{working_set}x{repetitions}")
