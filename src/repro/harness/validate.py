"""Executable reproduction claims.

EXPERIMENTS.md records paper-vs-measured verdicts; this module turns the
qualitative claims into code so a fresh run can be checked mechanically:

    results = run_experiments(...)            # or any subset
    report = validate_results(results)
    print(render_report(report))

Each :class:`Claim` names the paper finding it guards, the figures it needs,
and a predicate over their tables.  Claims whose figures are absent from the
result set are reported as SKIPPED, so partial runs validate cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.harness.reporting import ExperimentResult

__all__ = ["Claim", "ClaimOutcome", "CLAIMS", "validate_results",
           "render_report"]


@dataclass(frozen=True)
class Claim:
    """One paper finding and the predicate that checks it."""

    name: str
    description: str
    requires: tuple
    check: Callable[[Mapping[str, ExperimentResult]], str]
    # ``check`` returns a detail string on success and raises
    # AssertionError (with detail) on failure.


@dataclass(frozen=True)
class ClaimOutcome:
    claim: Claim
    status: str               # "PASS" | "FAIL" | "SKIP"
    detail: str


def _avg(results, fig, column, row="Avg"):
    return float(results[fig].row(row)[results[fig].columns.index(column)])


# ----------------------------------------------------------------------
# Claim predicates
# ----------------------------------------------------------------------

def _check_priors_gap(results):
    opt = _avg(results, "fig1", "opt")
    best_prior = max(_avg(results, "fig1", name)
                     for name in ("srrip", "ghrp", "hawkeye"))
    assert opt > 2 * max(best_prior, 0.1), \
        f"OPT {opt:.2f}% not >> best prior {best_prior:.2f}%"
    return f"OPT {opt:.2f}% vs best prior {best_prior:.2f}%"


def _check_perfect_btb_dominates(results):
    btb = _avg(results, "fig2", "perfect_btb")
    bp = _avg(results, "fig2", "perfect_bp")
    assert btb > bp, f"perfect BTB {btb:.1f}% <= perfect BP {bp:.1f}%"
    return f"perfect BTB {btb:.1f}% > perfect BP {bp:.1f}%"


def _check_verilator_outlier(results):
    rows = {row[0]: row[1] for row in results["fig3"].rows}
    others = [v for k, v in rows.items() if k != "verilator"]
    assert rows["verilator"] > max(others), "verilator not the L2iMPKI peak"
    return (f"verilator {rows['verilator']:.1f} MPKI vs next "
            f"{max(others):.2f}")


def _check_variance_ratio(results):
    ratio = _avg(results, "fig5", "ratio")
    assert ratio > 1.5, f"transient/holistic ratio {ratio:.2f} <= 1.5"
    return f"transient/holistic variance ratio {ratio:.2f}"


def _check_reuse_correlation(results):
    reuse = _avg(results, "fig8", "avg_reuse_distance")
    rest = max(_avg(results, "fig8", c)
               for c in ("branch_type", "target_distance", "bias"))
    assert reuse > rest, \
        f"reuse corr {reuse:.2f} not dominant (next {rest:.2f})"
    return f"reuse |r|={reuse:.2f} vs next property {rest:.2f}"


def _check_cold_bypass(results):
    cold = _avg(results, "fig9", "cold")
    hot = _avg(results, "fig9", "hot")
    assert cold > 10 * max(hot, 0.1), \
        f"cold bypass {cold:.1f}% not >> hot {hot:.2f}%"
    return f"cold bypass {cold:.1f}% vs hot {hot:.2f}%"


def _check_main_result(results):
    fig = results["fig11"]
    col = fig.columns.index
    avg = fig.row("Avg")
    therm, opt = avg[col("thermometer")], avg[col("opt")]
    priors = max(avg[col(n)] for n in ("srrip", "ghrp", "hawkeye"))
    assert opt >= therm > priors, \
        f"ordering broken: opt {opt:.2f}, therm {therm:.2f}, " \
        f"priors {priors:.2f}"
    assert therm > 0.4 * opt, \
        f"thermometer {therm:.2f}% captures <40% of OPT {opt:.2f}%"
    return (f"thermometer {therm:.2f}% = {100 * therm / opt:.0f}% of OPT, "
            f"best prior {priors:.2f}%")


def _check_miss_reduction_share(results):
    fig = results["fig12"]
    col = fig.columns.index
    avg = fig.row("Avg")
    share = avg[col("thermometer")] / avg[col("opt")]
    assert 0.4 < share <= 1.0, f"miss-reduction share {share:.2f} off"
    return f"thermometer removes {100 * share:.0f}% of OPT's misses " \
           f"(paper: 62.6%)"


def _check_training_profile_transfers(results):
    fig = results["fig13"]
    col = fig.columns.index
    avg = fig.row("Avg")
    training = avg[col("therm_training_profile")]
    srrip = avg[col("srrip")]
    assert training > 2 * max(srrip, 1.0), \
        f"training profile {training:.1f}% not >> srrip {srrip:.1f}%"
    return f"training-input profile {training:.1f}% of OPT vs " \
           f"srrip {srrip:.1f}%"


def _check_cbp5(results):
    rows = {row[0]: row[1] for row in results["fig17"].rows}
    assert rows["wins_vs_ghrp"] > 3 * max(rows["losses_vs_ghrp"], 1), \
        "wins/losses ratio below the paper's ~5x"
    assert rows["mean_reduction_pct"] > 0
    return (f"{rows['wins_vs_ghrp']:.0f} wins / "
            f"{rows['losses_vs_ghrp']:.0f} losses / "
            f"{rows['ties']:.0f} ties; mean "
            f"{rows['mean_reduction_pct']:.2f}%")


def _check_ipc1(results):
    fig = results["fig18"]
    col = fig.columns.index
    avg = fig.row("Avg")
    assert avg[col("opt")] >= avg[col("thermometer")] > avg[col("srrip")]
    return (f"thermometer {avg[col('thermometer')]:.2f}% vs srrip "
            f"{avg[col('srrip')]:.2f}% (paper: 1.07 vs 0.45)")


def _check_geometry_sweep(results):
    fig = results["fig19"]
    col = fig.columns.index
    rows = fig.rows
    better = sum(row[col("thermometer")] >= row[col("srrip")]
                 for row in rows)
    assert better >= 0.8 * len(rows), \
        f"thermometer >= srrip in only {better}/{len(rows)} geometries"
    worst = min(row[col("thermometer")] for row in rows)
    assert worst > -5.0, f"thermometer collapses at some geometry: {worst}"
    return f"thermometer >= srrip in {better}/{len(rows)} geometries"


def _check_twig_composition(results):
    fig = results["fig21"]
    col = fig.columns.index
    avg = fig.row("Avg")
    assert avg[col("thermometer")] > avg[col("srrip")]
    assert avg[col("thermometer")] > 0
    return (f"thermometer+Twig {avg[col('thermometer')]:.2f}% vs "
            f"srrip+Twig {avg[col('srrip')]:.2f}%")


CLAIMS: List[Claim] = [
    Claim("priors-gap", "OPT far exceeds every prior policy (Fig. 1)",
          ("fig1",), _check_priors_gap),
    Claim("perfect-btb-dominates",
          "Perfect BTB worth more than perfect BP (Fig. 2)",
          ("fig2",), _check_perfect_btb_dominates),
    Claim("verilator-outlier", "verilator is the L2iMPKI outlier (Fig. 3)",
          ("fig3",), _check_verilator_outlier),
    Claim("variance-ratio",
          "Transient variance ≫ holistic variance (Fig. 5)",
          ("fig5",), _check_variance_ratio),
    Claim("reuse-correlation",
          "Only holistic reuse distance predicts temperature (Fig. 8)",
          ("fig8",), _check_reuse_correlation),
    Claim("cold-bypass", "OPT bypasses cold, inserts hot (Fig. 9)",
          ("fig9",), _check_cold_bypass),
    Claim("main-result",
          "Thermometer beats all priors, near OPT (Fig. 11)",
          ("fig11",), _check_main_result),
    Claim("miss-share",
          "Thermometer removes ~60% of OPT's miss reduction (Fig. 12)",
          ("fig12",), _check_miss_reduction_share),
    Claim("profile-transfer",
          "Training-input profiles transfer to unseen inputs (Fig. 13)",
          ("fig13",), _check_training_profile_transfers),
    Claim("cbp5", "CBP-5: wins ≫ losses vs GHRP (Fig. 17)",
          ("fig17",), _check_cbp5),
    Claim("ipc1", "IPC-1: Thermometer > priors (Fig. 18)",
          ("fig18",), _check_ipc1),
    Claim("geometry", "Robust across BTB geometries (Fig. 19)",
          ("fig19",), _check_geometry_sweep),
    Claim("twig", "Composes with Twig prefetching (Fig. 21)",
          ("fig21",), _check_twig_composition),
]


def validate_results(results: Mapping[str, ExperimentResult],
                     claims: Optional[List[Claim]] = None
                     ) -> List[ClaimOutcome]:
    """Check every claim whose required figures are present."""
    outcomes = []
    for claim in claims or CLAIMS:
        if any(fig not in results for fig in claim.requires):
            missing = [f for f in claim.requires if f not in results]
            outcomes.append(ClaimOutcome(claim, "SKIP",
                                         f"missing {missing}"))
            continue
        try:
            detail = claim.check(results)
        except AssertionError as exc:
            outcomes.append(ClaimOutcome(claim, "FAIL", str(exc)))
        else:
            outcomes.append(ClaimOutcome(claim, "PASS", detail))
    return outcomes


def render_report(outcomes: List[ClaimOutcome]) -> str:
    lines = ["reproduction claims:"]
    for outcome in outcomes:
        lines.append(f"  [{outcome.status}] {outcome.claim.name}: "
                     f"{outcome.detail}")
    passed = sum(o.status == "PASS" for o in outcomes)
    failed = sum(o.status == "FAIL" for o in outcomes)
    skipped = sum(o.status == "SKIP" for o in outcomes)
    lines.append(f"{passed} passed, {failed} failed, {skipped} skipped")
    return "\n".join(lines)
