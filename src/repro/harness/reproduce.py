"""Regenerate every paper figure: ``python -m repro.harness.reproduce``.

Presets trade fidelity for runtime (pure-Python simulation on synthetic
traces):

* ``--preset quick`` — short traces, small suites; minutes.  For smoke runs.
* ``--preset full``  — the lengths EXPERIMENTS.md was produced with.

Select a subset with ``--only fig11,fig12``; write markdown with
``--output results.md``.  ``--jobs N`` (default ``REPRO_JOBS``) runs whole
figures in parallel worker processes; all workers share one persistent
artifact store (``--cache-dir``, default ``REPRO_CACHE_DIR`` or
``~/.cache/repro-thermometer``) so traces, OPT profiles, hint maps, and
baseline runs are computed once per machine.  ``--no-cache`` disables the
store.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Union

from repro.harness.engine import (ArtifactStore, default_cache_dir,
                                  default_jobs, default_max_retries)
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.reporting import CacheStats
from repro.harness.runner import Harness, HarnessConfig
from repro.telemetry.logconfig import (add_logging_args, emit,
                                       setup_cli_logging)

__all__ = ["main", "run_experiments", "PRESETS"]

log = logging.getLogger(__name__)

PRESETS: Dict[str, dict] = {
    # length: per-app trace records; cbp/ipc: suite sizes.
    "quick": {"length": 50_000, "cbp_count": 12, "ipc_count": 6,
              "suite_length": 50_000, "inputs": (1,)},
    "full": {"length": None, "cbp_count": 60, "ipc_count": 15,
             "suite_length": 120_000, "inputs": (1, 2, 3)},
}


def _experiment_kwargs(name: str, settings: dict) -> dict:
    if name == "fig13":
        return {"inputs": settings["inputs"]}
    if name == "fig17":
        return {"count": settings["cbp_count"],
                "length": settings["suite_length"]}
    if name == "fig18":
        return {"count": settings["ipc_count"],
                "length": settings["suite_length"]}
    return {}


def _harness_config(settings: dict,
                    apps: Optional[List[str]]) -> HarnessConfig:
    if apps:
        return HarnessConfig(apps=tuple(apps), length=settings["length"])
    return HarnessConfig(length=settings["length"])


def _run_one(name: str, preset: str, apps: Optional[List[str]],
             cache_dir: Optional[str] = None):
    """Worker entry point (must be module-level for process pools)."""
    settings = PRESETS[preset]
    store = ArtifactStore(cache_dir) if cache_dir else None
    harness = Harness(_harness_config(settings, apps), store=store)
    start = time.perf_counter()
    result = ALL_EXPERIMENTS[name](harness,
                                   **_experiment_kwargs(name, settings))
    stats = store.stats if store is not None else CacheStats()
    return name, result, time.perf_counter() - start, stats


def run_experiments(names: Optional[List[str]] = None,
                    preset: str = "full",
                    apps: Optional[List[str]] = None,
                    stream=sys.stdout,
                    jobs: int = 1,
                    cache_dir: Union[str, None] = None,
                    max_retries: Optional[int] = None
                    ) -> Dict[str, "ExperimentResult"]:
    """Run the named experiments (all by default) and stream their tables.

    ``jobs > 1`` runs whole figures in parallel worker processes; a
    figure whose worker raises or dies is retried on a fresh pool up to
    ``max_retries`` times (default :func:`default_max_retries`) before
    the whole reproduction fails, so one lost worker does not discard
    every other figure's work.  ``cache_dir`` points every process at one
    shared on-disk artifact store, so per-figure harnesses reuse each
    other's traces, profiles, hints, and LRU baselines (and so do later
    invocations — including those retries, which skip straight to the
    missing artifacts).
    """
    settings = PRESETS[preset]
    names = names or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}; available: "
                         f"{list(ALL_EXPERIMENTS)}")
    cache_dir = str(cache_dir) if cache_dir else None
    results = {}
    cache_stats = CacheStats()

    def record(name, result, elapsed, stats):
        results[name] = result
        cache_stats.merge(stats)
        # run_experiments is a library API streaming to a caller-chosen
        # file object, so it writes directly instead of logging.
        print(result.render(), file=stream)
        print(f"[{name} took {elapsed:.1f}s]\n", file=stream)
        stream.flush()

    if max_retries is None:
        max_retries = default_max_retries()
    if jobs > 1:
        # Retry rounds recreate the pool: a worker death breaks the whole
        # ProcessPoolExecutor, so surviving figures are re-run (their
        # artifacts are already in the shared store) on fresh processes.
        queue = list(names)
        for round_no in range(1 + max_retries):
            failed: List[str] = []
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [pool.submit(_run_one, name, preset, apps,
                                       cache_dir)
                           for name in queue]
                for name, future in zip(queue, futures):
                    try:
                        record(*future.result())
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BaseException as exc:
                        log.warning("figure %s failed in round %d "
                                    "(%s: %s)", name, round_no,
                                    type(exc).__name__, exc)
                        failed.append(name)
            queue = failed
            if not queue:
                break
        if queue:
            raise RuntimeError(
                f"experiments failed after {1 + max_retries} "
                f"attempt(s): {', '.join(queue)}")
    else:
        store = ArtifactStore(cache_dir) if cache_dir else None
        harness = Harness(_harness_config(settings, apps), store=store)
        for name in names:
            start = time.perf_counter()
            result = ALL_EXPERIMENTS[name](
                harness, **_experiment_kwargs(name, settings))
            record(name, result, time.perf_counter() - start,
                   CacheStats())
        if store is not None:
            cache_stats.merge(store.stats)
    if cache_dir:
        print(cache_stats.render(), file=stream)
        stream.flush()
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.reproduce",
        description="Regenerate the Thermometer paper's figures.")
    parser.add_argument("--preset", choices=sorted(PRESETS), default="full")
    parser.add_argument("--only", default=None,
                        help="comma-separated experiment names (e.g. "
                             "fig11,fig12)")
    parser.add_argument("--apps", default=None,
                        help="comma-separated subset of the 13 applications")
    parser.add_argument("--output", default=None,
                        help="also write results as markdown to this file")
    parser.add_argument("--jobs", type=int, default=default_jobs(),
                        help="run figures in N parallel processes "
                             "(default: REPRO_JOBS or 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent artifact store location (default: "
                             "REPRO_CACHE_DIR or ~/.cache/repro-thermometer)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent artifact store")
    parser.add_argument("--max-retries", type=int, default=None,
                        help="re-run a figure whose worker failed up to N "
                             "times (default: REPRO_MAX_RETRIES or 1)")
    parser.add_argument("--validate", action="store_true",
                        help="check the reproduction claims against the "
                             "results and exit non-zero on failures")
    add_logging_args(parser)
    args = parser.parse_args(argv)
    setup_cli_logging(args)
    names = args.only.split(",") if args.only else None
    apps = args.apps.split(",") if args.apps else None
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(default_cache_dir())
    results = run_experiments(names=names, preset=args.preset, apps=apps,
                              jobs=args.jobs, cache_dir=cache_dir,
                              max_retries=args.max_retries)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            for result in results.values():
                fh.write(result.to_markdown())
                fh.write("\n\n")
        emit(f"wrote {args.output}")
    if args.validate:
        from repro.harness.validate import render_report, validate_results
        outcomes = validate_results(results)
        emit(render_report(outcomes))
        if any(o.status == "FAIL" for o in outcomes):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
