"""Regenerate every paper figure: ``python -m repro.harness.reproduce``.

Presets trade fidelity for runtime (pure-Python simulation on synthetic
traces):

* ``--preset quick`` — short traces, small suites; minutes.  For smoke runs.
* ``--preset full``  — the lengths EXPERIMENTS.md was produced with.

Select a subset with ``--only fig11,fig12``; write markdown with
``--output results.md``.
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.runner import Harness, HarnessConfig

__all__ = ["main", "run_experiments", "PRESETS"]

PRESETS: Dict[str, dict] = {
    # length: per-app trace records; cbp/ipc: suite sizes.
    "quick": {"length": 50_000, "cbp_count": 12, "ipc_count": 6,
              "suite_length": 50_000, "inputs": (1,)},
    "full": {"length": None, "cbp_count": 60, "ipc_count": 15,
             "suite_length": 120_000, "inputs": (1, 2, 3)},
}


def _experiment_kwargs(name: str, settings: dict) -> dict:
    if name == "fig13":
        return {"inputs": settings["inputs"]}
    if name == "fig17":
        return {"count": settings["cbp_count"],
                "length": settings["suite_length"]}
    if name == "fig18":
        return {"count": settings["ipc_count"],
                "length": settings["suite_length"]}
    return {}


def _run_one(name: str, preset: str, apps: Optional[List[str]]):
    """Worker entry point (must be module-level for process pools)."""
    settings = PRESETS[preset]
    config = HarnessConfig(length=settings["length"])
    if apps:
        config = HarnessConfig(apps=tuple(apps), length=settings["length"])
    start = time.perf_counter()
    result = ALL_EXPERIMENTS[name](Harness(config),
                                   **_experiment_kwargs(name, settings))
    return name, result, time.perf_counter() - start


def run_experiments(names: Optional[List[str]] = None,
                    preset: str = "full",
                    apps: Optional[List[str]] = None,
                    stream=sys.stdout,
                    jobs: int = 1) -> Dict[str, "ExperimentResult"]:
    """Run the named experiments (all by default) and stream their tables.

    ``jobs > 1`` runs whole figures in parallel worker processes (each with
    its own harness; per-process caching still amortizes within a figure).
    """
    settings = PRESETS[preset]
    config = HarnessConfig(length=settings["length"])
    if apps:
        config = HarnessConfig(apps=tuple(apps), length=settings["length"])
    names = names or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}; available: "
                         f"{list(ALL_EXPERIMENTS)}")
    results = {}
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_run_one, name, preset, apps)
                       for name in names]
            for future in futures:
                name, result, elapsed = future.result()
                results[name] = result
                print(result.render(), file=stream)
                print(f"[{name} took {elapsed:.1f}s]\n", file=stream)
                stream.flush()
        return results
    harness = Harness(config)
    for name in names:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name](
            harness, **_experiment_kwargs(name, settings))
        elapsed = time.perf_counter() - start
        results[name] = result
        print(result.render(), file=stream)
        print(f"[{name} took {elapsed:.1f}s]\n", file=stream)
        stream.flush()
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.reproduce",
        description="Regenerate the Thermometer paper's figures.")
    parser.add_argument("--preset", choices=sorted(PRESETS), default="full")
    parser.add_argument("--only", default=None,
                        help="comma-separated experiment names (e.g. "
                             "fig11,fig12)")
    parser.add_argument("--apps", default=None,
                        help="comma-separated subset of the 13 applications")
    parser.add_argument("--output", default=None,
                        help="also write results as markdown to this file")
    parser.add_argument("--jobs", type=int, default=1,
                        help="run figures in N parallel processes")
    parser.add_argument("--validate", action="store_true",
                        help="check the reproduction claims against the "
                             "results and exit non-zero on failures")
    args = parser.parse_args(argv)
    names = args.only.split(",") if args.only else None
    apps = args.apps.split(",") if args.apps else None
    results = run_experiments(names=names, preset=args.preset, apps=apps,
                              jobs=args.jobs)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            for result in results.values():
                fh.write(result.to_markdown())
                fh.write("\n\n")
        print(f"wrote {args.output}")
    if args.validate:
        from repro.harness.validate import render_report, validate_results
        outcomes = validate_results(results)
        print(render_report(outcomes))
        if any(o.status == "FAIL" for o in outcomes):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
