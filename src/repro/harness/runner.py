"""Shared experiment machinery: trace/profile caches and simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.btb.btb import BTB, BTBStats, replay_stream_multi, run_btb
from repro.btb.config import (BTBConfig, DEFAULT_BTB_CONFIG,
                              THERMOMETER_7979_CONFIG)
from repro.btb.replacement.registry import make_policy
from repro.core.hints import HintMap, ThresholdQuantizer
from repro.core.pipeline import bypass_recommended
from repro.core.profiler import OptProfile, profile_trace
from repro.core.temperature import TemperatureProfile
from repro.frontend.params import DEFAULT_FRONTEND_PARAMS, FrontendParams
from repro.frontend.simulator import FrontendSimulator, SimResult
from repro.telemetry.metrics import get_registry
from repro.trace.record import BranchTrace
from repro.trace.stream import AccessStream, access_stream_for
from repro.workloads.datacenter import app_names, make_app_trace

__all__ = ["Harness", "HarnessConfig", "PRIOR_POLICIES"]

#: The prior replacement policies the paper compares against (Fig. 1).
PRIOR_POLICIES = ("srrip", "ghrp", "hawkeye")


@dataclass(frozen=True)
class HarnessConfig:
    """Configuration shared by every experiment run by one harness."""

    apps: Tuple[str, ...] = field(default_factory=lambda: tuple(app_names()))
    #: Dynamic trace length per app; None keeps each app's default.
    length: Optional[int] = None
    btb_config: BTBConfig = DEFAULT_BTB_CONFIG
    params: FrontendParams = DEFAULT_FRONTEND_PARAMS
    thresholds: Tuple[float, float] = (50.0, 80.0)
    #: Category for unprofiled branches (warm: no evidence either way).
    default_category: int = 1
    warmup_fraction: float = 0.2

    def scaled(self, length: int) -> "HarnessConfig":
        return replace(self, length=length)


class Harness:
    """Caches traces, profiles, hints, and baseline runs across experiments.

    One harness = one machine configuration; experiments that sweep a
    parameter (BTB size, FTQ depth, ...) construct variant configs
    explicitly and bypass the caches where the variant matters.

    ``store`` (an :class:`~repro.harness.engine.ArtifactStore`) adds a
    second, persistent cache level: artifacts missing from the in-memory
    dicts are loaded from disk when available and written back when
    computed, so they are shared across processes and CLI invocations.
    """

    def __init__(self, config: Optional[HarnessConfig] = None, store=None):
        # None-and-construct (not a default instance): a shared default
        # object would alias config-derived state across harnesses.
        self.config = config if config is not None else HarnessConfig()
        self.store = store
        self._traces: Dict[Tuple[str, int], BranchTrace] = {}
        self._profiles: Dict[Tuple[str, int, BTBConfig], OptProfile] = {}
        self._lru_sims: Dict[Tuple[str, int], SimResult] = {}

    def invalidate(self, app: Optional[str] = None,
                   input_id: Optional[int] = None) -> None:
        """Drop in-memory artifacts for ``(app, input_id)`` (or matching
        ``app`` regardless of input, or everything with no arguments).

        The engine calls this before retrying a failed job so the retry
        re-reads every intermediate artifact through the persistent store
        — a quarantined (corrupt) entry is then rebuilt instead of being
        resurrected from this harness's warm caches.
        """
        def matches(key: Tuple) -> bool:
            if app is not None and key[0] != app:
                return False
            if input_id is not None and key[1] != input_id:
                return False
            return True

        for cache in (self._traces, self._profiles, self._lru_sims):
            for key in [k for k in cache if matches(k)]:
                del cache[key]

    def adopt_trace(self, app: str, input_id: int,
                    trace: BranchTrace) -> None:
        """Seed the in-memory trace cache with an externally supplied
        trace (the engine's shared-memory fast path: workers adopt the
        parent's zero-copy columns instead of unpickling the store's).

        :meth:`invalidate` drops adopted traces like any other cached
        artifact, so retries still rebuild through the store.
        """
        self._traces[(app, input_id)] = trace

    def _fetch(self, kind: str, fields: dict, compute):
        """Compute an artifact through the persistent store, if any.

        Actual computes (in-memory and store misses, not store hits) run
        under a telemetry span named after the artifact kind, so span
        hierarchy mirrors the build graph (e.g. ``hints/profile/trace``
        when a hint map transitively computes its profile and trace).
        """
        def timed():
            with get_registry().span(kind):
                return compute()

        if self.store is None:
            return timed()
        return self.store.fetch(kind, self.store.key(kind, **fields),
                                timed)

    def lru_sim(self, app: str, input_id: int = 0) -> SimResult:
        """Cached LRU-baseline timing run (the denominator of every
        speedup figure)."""
        key = (app, input_id)
        cached = self._lru_sims.get(key)
        if cached is None:
            fields = dict(app=app, policy="lru", input_id=input_id,
                          length=self.config.length,
                          btb_config=self.config.btb_config,
                          params=self.config.params,
                          thresholds=tuple(self.config.thresholds),
                          default_category=self.config.default_category,
                          warmup_fraction=self.config.warmup_fraction)
            cached = self._fetch(
                "sim", fields,
                lambda: self.run_sim(self.trace(app, input_id), "lru"))
            self._lru_sims[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Cached artifacts
    # ------------------------------------------------------------------
    def trace(self, app: str, input_id: int = 0) -> BranchTrace:
        key = (app, input_id)
        cached = self._traces.get(key)
        if cached is None:
            fields = dict(app=app, input_id=input_id,
                          length=self.config.length)
            cached = self._fetch(
                "trace", fields,
                lambda: make_app_trace(app, input_id=input_id,
                                       length=self.config.length))
            self._traces[key] = cached
        return cached

    def profile(self, app: str, input_id: int = 0,
                btb_config: Optional[BTBConfig] = None) -> OptProfile:
        btb_config = btb_config or self.config.btb_config
        key = (app, input_id, btb_config)
        cached = self._profiles.get(key)
        if cached is None:
            fields = dict(app=app, input_id=input_id,
                          length=self.config.length, btb_config=btb_config)
            cached = self._fetch(
                "profile", fields,
                lambda: profile_trace(self.trace(app, input_id),
                                      btb_config))
            self._profiles[key] = cached
        return cached

    def temperatures(self, app: str, input_id: int = 0,
                     btb_config: Optional[BTBConfig] = None
                     ) -> TemperatureProfile:
        return TemperatureProfile.from_opt_profile(
            self.profile(app, input_id, btb_config))

    def hints(self, app: str, input_id: int = 0,
              btb_config: Optional[BTBConfig] = None,
              thresholds: Optional[Sequence[float]] = None) -> HintMap:
        thresholds = tuple(thresholds or self.config.thresholds)

        def compute() -> HintMap:
            return ThresholdQuantizer(thresholds).quantize(
                self.temperatures(app, input_id, btb_config),
                default_category=self.config.default_category)

        fields = dict(app=app, input_id=input_id, length=self.config.length,
                      btb_config=btb_config or self.config.btb_config,
                      thresholds=thresholds,
                      default_category=self.config.default_category)
        return self._fetch("hints", fields, compute)

    def stream(self, trace: BranchTrace,
               btb_config: Optional[BTBConfig] = None) -> AccessStream:
        """The shared columnar access stream for ``trace`` under the
        harness's (or the given) BTB geometry — memoized process-wide, so
        every policy in a sweep replays the same precomputed columns."""
        return access_stream_for(trace,
                                 btb_config or self.config.btb_config)

    # ------------------------------------------------------------------
    # Policy / BTB construction
    # ------------------------------------------------------------------
    def build_btb(self, policy_name: str, trace: BranchTrace,
                  btb_config: Optional[BTBConfig] = None,
                  hints: Optional[HintMap] = None) -> BTB:
        """A fresh BTB running ``policy_name`` for ``trace``.

        ``'thermometer'`` requires ``hints``; ``'thermometer-7979'`` uses
        the iso-storage configuration of Fig. 11.
        """
        btb_config = btb_config or self.config.btb_config
        if policy_name == "thermometer-7979":
            btb_config = THERMOMETER_7979_CONFIG
            policy_name = "thermometer"
        if policy_name in ("thermometer", "thermometer-dueling"):
            if hints is None:
                raise ValueError(f"{policy_name} needs hints")
            policy = make_policy(
                policy_name, hints=hints,
                default_category=self.config.default_category,
                bypass_enabled=bypass_recommended(hints, btb_config))
        elif policy_name == "opt":
            # The shared stream's next-use column is computed once per
            # (trace, geometry) and reused across every OPT consumer.
            policy = make_policy(
                "opt", stream=access_stream_for(trace, btb_config))
        else:
            policy = make_policy(policy_name)
        return BTB(btb_config, policy)

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def run_misses(self, trace: BranchTrace, policy_name: str,
                   btb_config: Optional[BTBConfig] = None,
                   hints: Optional[HintMap] = None) -> BTBStats:
        """Replay only the BTB (no timing) — fast path for miss figures."""
        with get_registry().span("misses"):
            btb = self.build_btb(policy_name, trace, btb_config, hints)
            return run_btb(trace, btb)

    def run_misses_multi(self, trace: BranchTrace,
                         policy_names: Sequence[str],
                         btb_config: Optional[BTBConfig] = None,
                         hints_by_policy: Optional[Dict[str, HintMap]] = None
                         ) -> list:
        """Replay several policies over ``trace`` in one sweep per
        geometry; returns one :class:`BTBStats` per name, in order.

        Result-identical to calling :meth:`run_misses` once per policy
        (the engine's group-replay path relies on that), but the stream
        columns are walked once per distinct BTB geometry instead of
        once per policy.  ``'thermometer-7979'`` silently lands in its
        own geometry group.
        """
        with get_registry().span("misses"):
            hints_by_policy = hints_by_policy or {}
            btbs = [self.build_btb(name, trace, btb_config,
                                   hints_by_policy.get(name))
                    for name in policy_names]
            by_config: Dict[BTBConfig, list] = {}
            for pos, btb in enumerate(btbs):
                by_config.setdefault(btb.config, []).append(pos)
            for config, positions in by_config.items():
                stream = access_stream_for(trace, config)
                replay_stream_multi(stream, [btbs[p] for p in positions])
            return [btb.stats for btb in btbs]

    def run_sim(self, trace: BranchTrace, policy_name: Optional[str] = "lru",
                btb_config: Optional[BTBConfig] = None,
                hints: Optional[HintMap] = None,
                params: Optional[FrontendParams] = None,
                prefetcher=None, **oracle_flags) -> SimResult:
        """Full timing simulation; ``policy_name=None`` with
        ``perfect_btb=True`` runs the perfect-BTB oracle."""
        with get_registry().span("sim"):
            params = params or self.config.params
            btb = None
            if not oracle_flags.get("perfect_btb"):
                btb = self.build_btb(policy_name, trace, btb_config, hints)
            sim = FrontendSimulator(params=params, btb=btb,
                                    prefetcher=prefetcher, **oracle_flags)
            return sim.simulate(trace,
                                warmup_fraction=self.config.warmup_fraction)

    def speedup_pct(self, result: SimResult, baseline: SimResult) -> float:
        """IPC speedup in percent."""
        return 100.0 * result.speedup_over(baseline)

    def miss_reduction_pct(self, stats: BTBStats,
                           baseline: BTBStats) -> float:
        if baseline.misses == 0:
            return 0.0
        return 100.0 * (baseline.misses - stats.misses) / baseline.misses
