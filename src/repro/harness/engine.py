"""Parallel, fault-tolerant experiment engine with a persistent cache.

Two layers:

* :class:`ArtifactStore` — a content-addressed on-disk cache for expensive
  simulation artifacts (synthetic traces, OPT profiles, hint maps, timing
  results).  Keys are SHA-256 hashes of the *full recipe* that produced an
  artifact (app/input/length, :class:`~repro.btb.config.BTBConfig`,
  :class:`~repro.frontend.params.FrontendParams`, policy, thresholds) plus
  a version salt, so any change to the recipe — or to the artifact format —
  naturally invalidates old entries.  Writes are atomic (temp file +
  ``os.replace``) and every payload carries an integrity digest; a corrupt
  file is moved into a ``.quarantine/`` directory for forensics and the
  artifact is recomputed, never served stale.

* :class:`ExperimentEngine` — fans :class:`SimJob` simulation jobs out over
  a ``concurrent.futures.ProcessPoolExecutor`` (``jobs > 1``) or runs them
  serially in-process (``jobs == 1``, the default).  Parallel jobs are
  grouped by (app, input, machine config) so each worker builds one trace
  and one shared :class:`~repro.trace.stream.AccessStream` per group and
  replays them across every policy in the group.  Every worker shares
  the same on-disk store, so traces and profiles are computed once per
  machine and reused across processes, benchmark runs, and CLI
  invocations.

Fault tolerance (see ``docs/FAULTS.md``): every job moves through the
:class:`JobState` machine (pending → running → succeeded / failed /
timed-out / skipped), journalled incrementally to the run directory so a
SIGKILL'd sweep leaves a forensic record.  Failed or timed-out attempts
are retried up to ``max_retries`` times with exponential backoff and
jitter; ``job_timeout`` bounds each attempt's wall clock via a
SIGALRM-based deadline inside the worker; a worker that dies mid-batch
breaks only its batch — the engine re-shards the affected jobs into
isolation batches on a fresh pool instead of failing the sweep.  A sweep
that still ends with unfinished jobs raises :class:`ExperimentError`
(after writing its manifest with ``status: failed``) and can be continued
with ``run(jobs, resume=run_id)``, which skips every job whose artifact
verifies in the store.

Environment knobs:

* ``REPRO_JOBS`` — default worker count (:func:`default_jobs`).
* ``REPRO_CACHE_DIR`` — default store location (:func:`default_cache_dir`);
  the CLI fallback is ``~/.cache/repro-thermometer``.
* ``REPRO_MAX_RETRIES`` / ``REPRO_JOB_TIMEOUT`` — retry/timeout defaults
  (:func:`default_max_retries`, :func:`default_job_timeout`).
* ``REPRO_TEST_FAST`` — skip backoff sleeps (tests, CI chaos job).
* ``REPRO_FAULT_PLAN`` — deterministic fault injection
  (:mod:`repro.testing.faults`).

The engine is *provably equivalent* to the serial
:class:`~repro.harness.runner.Harness` path: every simulation is keyed on
everything that can affect its outcome and all generators are
seed-deterministic, which ``tests/test_engine_equivalence.py`` checks
bit-for-bit; ``tests/test_engine_resume.py`` extends the same check to
crash-and-resume runs under injected faults.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import logging
import os
import pickle
import random
import signal
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple, Union)

from repro.btb.config import (BTBConfig, DEFAULT_BTB_CONFIG,
                              THERMOMETER_7979_CONFIG)
from repro.frontend.params import DEFAULT_FRONTEND_PARAMS, FrontendParams
from repro.harness.reporting import CacheStats
from repro.harness.runner import Harness, HarnessConfig
from repro.telemetry.metrics import get_registry, snapshot_delta
from repro.telemetry.profile_hooks import worker_profile
from repro.testing.faults import active_fault_plan, corrupt_file, inject

log = logging.getLogger(__name__)

__all__ = ["ArtifactStore", "ExperimentEngine", "ExperimentError",
           "GroupReplay", "JobResult", "JobState", "JobTimeoutError",
           "SimJob", "STORE_VERSION", "artifact_key", "backoff_delay",
           "default_cache_dir", "default_job_timeout", "default_jobs",
           "default_max_retries", "execute_job", "job_deadline",
           "multi_replay_enabled", "run_job", "run_job_batch"]

#: Bump to invalidate every cached artifact (format or semantics change).
#: "2": BTBStats grew the ``target_mismatches`` counter, so version-1
#: pickles would deserialize without the field.
STORE_VERSION = "2"

#: Policies whose construction requires a profile-derived hint map.
HINTED_POLICIES = ("thermometer", "thermometer-7979", "thermometer-dueling")

_MAGIC = b"RPRO"
_DIGEST_BYTES = 32  # sha256

#: Corrupt artifacts are moved here (under the store root) instead of
#: being destroyed, so a digest failure stays diagnosable after the fact.
QUARANTINE_DIR = ".quarantine"


def default_jobs() -> int:
    """Worker-count default: ``REPRO_JOBS`` or 1 (serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def default_cache_dir() -> Path:
    """Store-location default: ``REPRO_CACHE_DIR`` or a per-user cache."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-thermometer"


def default_max_retries() -> int:
    """Retry default: ``REPRO_MAX_RETRIES`` or 1."""
    try:
        return max(0, int(os.environ.get("REPRO_MAX_RETRIES", "1")))
    except ValueError:
        return 1


def default_job_timeout() -> Optional[float]:
    """Per-attempt wall-clock budget: ``REPRO_JOB_TIMEOUT`` seconds or
    None (unbounded)."""
    raw = os.environ.get("REPRO_JOB_TIMEOUT", "").strip()
    if not raw:
        return None
    try:
        seconds = float(raw)
    except ValueError:
        return None
    return seconds if seconds > 0 else None


def multi_replay_enabled() -> bool:
    """Single-pass multi-policy replay kill switch: ``REPRO_MULTI_REPLAY``
    (default on; ``0``/``false``/``off``/``no`` disable it)."""
    raw = os.environ.get("REPRO_MULTI_REPLAY", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


# ----------------------------------------------------------------------
# Content-addressed keys
# ----------------------------------------------------------------------

def _canonical(value: Any) -> Any:
    """Reduce a value to JSON-stable primitives for hashing.

    Dataclasses are tagged with their type name so two configs with
    coincidentally equal fields still key differently.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: _canonical(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__type__": type(value).__name__, **fields}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def artifact_key(kind: str, salt: str = STORE_VERSION, **fields) -> str:
    """SHA-256 content key for an artifact of ``kind`` built from
    ``fields``.  Stable across processes and machines (no reliance on
    ``hash()`` or dict order)."""
    payload = json.dumps({"kind": kind, "salt": salt,
                          "fields": _canonical(fields)},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------

class ArtifactStore:
    """Content-addressed pickle store with atomic writes and integrity
    checks.

    Layout: ``<root>/<kind>/<key[:2]>/<key>.pkl`` where each file is
    ``MAGIC + sha256(payload) + payload``.  A file that is missing, has a
    bad digest, or fails to unpickle is a cache miss; the corrupt bytes
    are quarantined under ``<root>/.quarantine/<kind>/`` and the caller
    recomputes the artifact — stale or mangled bytes are never returned.
    """

    def __init__(self, root: Union[str, Path], salt: str = STORE_VERSION):
        self.root = Path(root).expanduser()
        self.salt = salt
        self.stats = CacheStats()
        self.root.mkdir(parents=True, exist_ok=True)

    # -- keys and paths --------------------------------------------------
    def key(self, kind: str, **fields) -> str:
        return artifact_key(kind, salt=self.salt, **fields)

    def path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def quarantine_path(self, kind: str, key: str) -> Path:
        return self.root / QUARANTINE_DIR / kind / f"{key}.pkl"

    # -- encode / decode -------------------------------------------------
    @staticmethod
    def _encode(obj: Any) -> bytes:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return _MAGIC + hashlib.sha256(payload).digest() + payload

    @staticmethod
    def _decode(blob: bytes) -> Tuple[Optional[Tuple[Any]], Optional[str]]:
        """``((obj,), None)`` on success, or ``(None, reason)`` where
        ``reason`` is ``"format"`` (bad magic / truncated header),
        ``"digest"`` (integrity-digest mismatch), or ``"unpickle"``."""
        header = len(_MAGIC) + _DIGEST_BYTES
        if len(blob) < header or not blob.startswith(_MAGIC):
            return None, "format"
        digest = blob[len(_MAGIC):header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != digest:
            return None, "digest"
        try:
            return (pickle.loads(payload),), None
        except Exception:
            return None, "unpickle"

    def _quarantine(self, kind: str, key: str, path: Path) -> None:
        """Move a corrupt file out of the addressable tree (atomic
        rename; falls back to unlink) so it can never satisfy a get."""
        target = self.quarantine_path(kind, key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            self.stats.quarantined += 1
            get_registry().count("store/quarantined")
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    # -- store protocol --------------------------------------------------
    def get(self, kind: str, key: str) -> Optional[Any]:
        """The cached artifact, or None on a miss (absent or corrupt).

        Corruption — a bad integrity digest, mangled header, or
        unpicklable payload — is counted, logged as a warning, and the
        file quarantined (moved aside) so the caller recomputes the
        artifact instead of ever receiving stale bytes.
        """
        registry = get_registry()
        path = self.path(kind, key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            registry.count("store/miss")
            return None
        decoded, reason = self._decode(blob)
        if decoded is None:
            self.stats.corrupt += 1
            if reason == "digest":
                self.stats.digest_failures += 1
            self.stats.misses += 1
            registry.count("store/miss")
            registry.count("store/corrupt")
            self._quarantine(kind, key, path)
            log.warning("corrupt %s artifact %s (%s, %d bytes); "
                        "quarantined for recompute", kind, key[:12],
                        reason, len(blob))
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(blob)
        registry.count("store/hit")
        registry.count("store/bytes_read", len(blob))
        return decoded[0]

    def put(self, kind: str, key: str, obj: Any) -> None:
        """Atomically persist an artifact (write-to-temp + rename, so a
        concurrent reader never observes a partial file)."""
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = self._encode(obj)
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{key[:8]}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.bytes_written += len(blob)
        get_registry().count("store/bytes_written", len(blob))

    def fetch(self, kind: str, key: str, compute: Callable[[], Any]) -> Any:
        """get-or-compute-and-put, timing the compute under stage
        ``kind``."""
        cached = self.get(kind, key)
        if cached is not None:
            return cached
        with self.stats.stage(kind):
            value = compute()
        self.put(kind, key, value)
        return value


# ----------------------------------------------------------------------
# Job states, timeouts, backoff
# ----------------------------------------------------------------------

class JobState:
    """The per-job lifecycle: ``pending → running → succeeded``, with
    ``failed`` / ``timed-out`` after exhausted retries (a retried attempt
    transitions back to ``pending``) and ``skipped`` for resumed jobs
    whose artifact already verifies in the store."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMED_OUT = "timed-out"
    SKIPPED = "skipped"

    #: States a finished run may leave a job in.
    TERMINAL = (SUCCEEDED, FAILED, TIMED_OUT, SKIPPED)
    ALL = (PENDING, RUNNING) + TERMINAL


class JobTimeoutError(RuntimeError):
    """An attempt exceeded its ``job_timeout`` wall-clock budget."""


class ExperimentError(RuntimeError):
    """A sweep finished with jobs that never succeeded.

    Raised *after* the run manifest (``status: failed``) is written;
    ``run_id`` names the run to pass back as ``run(jobs, resume=...)``.
    """

    def __init__(self, message: str, run_id: Optional[str] = None,
                 failures: Sequence[dict] = ()):
        super().__init__(message)
        self.run_id = run_id
        self.failures = list(failures)


@contextmanager
def job_deadline(seconds: Optional[float]):
    """Bound a block to ``seconds`` of wall clock via SIGALRM, raising
    :class:`JobTimeoutError` on expiry.

    Interval timers only work on the main thread of a POSIX process (true
    for pool workers and the serial engine path); elsewhere, and for a
    None/zero budget, this is a no-op.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if (not hasattr(signal, "setitimer")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _expired(signum, frame):
        raise JobTimeoutError(
            f"job exceeded its {seconds:.3g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def backoff_delay(round_no: int, base: float = 0.25, cap: float = 8.0,
                  rng: Optional[random.Random] = None) -> float:
    """Exponential backoff with jitter: ``min(cap, base·2^round)`` scaled
    uniformly into its upper half so colliding retries decorrelate."""
    delay = min(cap, base * (2 ** max(0, round_no)))
    roll = (rng or random).random()
    return delay * (0.5 + 0.5 * roll)


def _backoff_sleep(seconds: float) -> None:
    """Sleep between retry rounds — skipped entirely under
    ``REPRO_TEST_FAST=1`` so test suites and CI chaos runs stay fast."""
    fast = os.environ.get("REPRO_TEST_FAST", "").strip().lower()
    if fast in ("1", "true", "on", "yes"):
        return
    if seconds > 0:
        time.sleep(seconds)


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimJob:
    """One simulation: (workload, policy, machine) → result.

    ``mode`` selects the result type: ``"sim"`` runs the full frontend
    timing model (→ :class:`~repro.frontend.simulator.SimResult`);
    ``"misses"`` replays only the BTB (→
    :class:`~repro.btb.btb.BTBStats`)."""

    app: str
    policy: str = "lru"
    input_id: int = 0
    length: Optional[int] = None
    mode: str = "sim"
    btb_config: BTBConfig = DEFAULT_BTB_CONFIG
    params: FrontendParams = DEFAULT_FRONTEND_PARAMS
    thresholds: Tuple[float, ...] = (50.0, 80.0)
    default_category: int = 1
    warmup_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.mode not in ("sim", "misses"):
            raise ValueError(f"mode must be 'sim' or 'misses', "
                             f"got {self.mode!r}")

    @property
    def needs_hints(self) -> bool:
        return self.policy in HINTED_POLICIES

    def harness_config(self) -> HarnessConfig:
        return HarnessConfig(
            apps=(self.app,), length=self.length,
            btb_config=self.btb_config, params=self.params,
            thresholds=tuple(self.thresholds),
            default_category=self.default_category,
            warmup_fraction=self.warmup_fraction)

    def key_fields(self) -> Dict[str, Any]:
        """Everything that can change this job's result."""
        return dict(app=self.app, policy=self.policy,
                    input_id=self.input_id, length=self.length,
                    btb_config=self.btb_config, params=self.params,
                    thresholds=tuple(self.thresholds),
                    default_category=self.default_category,
                    warmup_fraction=self.warmup_fraction)

    def cache_key(self, salt: str = STORE_VERSION) -> str:
        return artifact_key(self.mode, salt=salt, **self.key_fields())


@dataclass
class JobResult:
    """One finished attempt: its value plus cache and state provenance."""

    job: SimJob
    value: Any
    #: True when the *job-level* result came straight from the store.
    cached: bool
    seconds: float
    stats: CacheStats = field(default_factory=CacheStats)
    #: This job's telemetry-registry snapshot delta (counters, spans,
    #: histograms recorded while it ran) — merged by the parent into the
    #: run manifest.  See :mod:`repro.telemetry.metrics`.
    telemetry: Dict[str, Any] = field(default_factory=dict)
    #: Terminal :class:`JobState` of this attempt.
    state: str = JobState.SUCCEEDED
    #: Zero-based attempt number (0 = first try).
    attempt: int = 0
    #: Position in the sweep's job list (None outside an engine run).
    index: Optional[int] = None
    #: ``"ExcType: message"`` for failed / timed-out attempts.
    error: Optional[str] = None


def execute_job(job: SimJob, harness: Optional[Harness] = None,
                store: Optional[ArtifactStore] = None) -> Any:
    """Run one job through a :class:`Harness` (no job-level caching)."""
    h = harness if harness is not None else Harness(job.harness_config(),
                                                   store=store)
    trace = h.trace(job.app, job.input_id)
    hints = None
    if job.needs_hints:
        # Hints must be profiled against the geometry the policy runs
        # with; the iso-storage variant swaps in the 7979-entry config.
        hint_config = (THERMOMETER_7979_CONFIG
                       if job.policy == "thermometer-7979"
                       else job.btb_config)
        hints = h.hints(job.app, job.input_id, btb_config=hint_config)
    if job.mode == "misses":
        return h.run_misses(trace, job.policy, btb_config=job.btb_config,
                            hints=hints)
    return h.run_sim(trace, job.policy, btb_config=job.btb_config,
                     hints=hints, params=job.params)


class GroupReplay:
    """Single-pass multi-policy replay plan for one job group.

    The engine already routes all jobs sharing (app, input, machine
    config) through one :class:`Harness`, so their traces and access
    streams are built once — but each ``misses`` job still replayed the
    stream on its own.  A ``GroupReplay`` covers every ``misses`` job of
    one group and, the first time any member misses the store, runs
    :meth:`Harness.run_misses_multi` once: one sweep over the shared
    stream drives N policy states side by side.  Later members take
    their result from the memoized sweep and still go through the normal
    ``store.put`` path, so on-disk artifacts, resume, and fault
    injection are byte-identical to per-job replay (the sweep is
    result-identical by construction, and ``tests/test_multi_replay.py``
    checks it bit-for-bit).

    The sweep is lazy and store-aware: members whose artifacts already
    verify on disk are skipped, so a resumed run only pays for what is
    actually missing.  Plans are built per execution round by
    :meth:`plan`; retry and isolation rounds run ungrouped.
    """

    def __init__(self, jobs: Sequence[SimJob]):
        self.jobs = list(jobs)
        self._values: Optional[Dict[str, Any]] = None

    @staticmethod
    def _group_key(job: SimJob) -> Optional[Tuple]:
        """Jobs with equal keys replay the same stream columns (None:
        not groupable).  ``thermometer-7979`` lands in its own group —
        it replays the iso-storage geometry, not the job's nominal one.
        """
        if job.mode != "misses":
            return None
        effective = (THERMOMETER_7979_CONFIG
                     if job.policy == "thermometer-7979"
                     else job.btb_config)
        return (job.app, job.input_id, job.length, effective,
                job.harness_config())

    @classmethod
    def plan(cls, jobs: Sequence[SimJob]
             ) -> List[Optional["GroupReplay"]]:
        """One entry per job: its shared :class:`GroupReplay`, or None
        for jobs that replay alone (sim mode, singleton groups, or the
        ``REPRO_MULTI_REPLAY`` kill switch)."""
        assignment: List[Optional[GroupReplay]] = [None] * len(jobs)
        if not multi_replay_enabled():
            return assignment
        groups: Dict[Tuple, List[int]] = {}
        for i, job in enumerate(jobs):
            key = cls._group_key(job)
            if key is not None:
                groups.setdefault(key, []).append(i)
        for indices in groups.values():
            members = [jobs[i] for i in indices]
            # A sweep only pays off when it covers >= 2 distinct results.
            if len({job.cache_key() for job in members}) < 2:
                continue
            group = cls(members)
            for i in indices:
                assignment[i] = group
        return assignment

    def compute(self, job: SimJob, harness: Harness,
                store: Optional[ArtifactStore], salt: str) -> Any:
        """``job``'s result from the (memoized) group sweep, or None if
        the sweep cannot serve it (the caller then runs the job alone).
        """
        if self._values is None:
            self._values = self._sweep(job, harness, store, salt)
        return self._values.get(job.cache_key(salt))

    def _sweep(self, trigger: SimJob, harness: Harness,
               store: Optional[ArtifactStore],
               salt: str) -> Dict[str, Any]:
        """Replay every not-yet-stored member in one pass; ``trigger``
        (whose store lookup just missed) is always included."""
        trigger_key = trigger.cache_key(salt)
        todo: List[Tuple[str, SimJob]] = []
        seen: Set[str] = set()
        for job in self.jobs:
            key = job.cache_key(salt)
            if key in seen:
                continue
            seen.add(key)
            if (key != trigger_key and store is not None
                    and store.path(job.mode, key).exists()):
                continue
            todo.append((key, job))
        trace = harness.trace(trigger.app, trigger.input_id)
        hints_by_policy: Dict[str, Any] = {}
        for _, job in todo:
            if job.needs_hints and job.policy not in hints_by_policy:
                hint_config = (THERMOMETER_7979_CONFIG
                               if job.policy == "thermometer-7979"
                               else job.btb_config)
                hints_by_policy[job.policy] = harness.hints(
                    job.app, job.input_id, btb_config=hint_config)
        stats = harness.run_misses_multi(
            trace, [job.policy for _, job in todo],
            btb_config=trigger.btb_config,
            hints_by_policy=hints_by_policy)
        get_registry().count("engine/multi_replay/sweeps")
        return {key: value for (key, _), value in zip(todo, stats)}


def run_job(job: SimJob, cache_root: Optional[str] = None,
            salt: str = STORE_VERSION,
            store: Optional[ArtifactStore] = None,
            harness: Optional[Harness] = None, *,
            index: Optional[int] = None, attempt: int = 0,
            in_worker: bool = False,
            group: Optional[GroupReplay] = None) -> JobResult:
    """Worker entry point (module-level so process pools can pickle it).

    Checks the store for the finished result first; on a miss, computes it
    through a harness whose intermediate artifacts (trace, profile, hints)
    are themselves store-backed.  When the job belongs to a
    :class:`GroupReplay` (and a harness is supplied), the miss is served
    from the group's single-pass multi-policy sweep instead of a solo
    replay — same value, one stream walk for the whole group.

    ``index``/``attempt`` identify this attempt within an engine run; when
    a :mod:`fault plan <repro.testing.faults>` is active they select which
    injected fault (if any) fires on this exact attempt, on the real
    execution path.
    """
    if store is None and cache_root is not None:
        store = ArtifactStore(cache_root, salt=salt)
    registry = get_registry()
    fault = None
    if index is not None:
        plan = active_fault_plan()
        if plan is not None:
            fault = plan.fault_for(index, attempt)
    if fault is not None and fault.kind != "corrupt":
        registry.count("faults/injected")
        inject(fault, in_worker=in_worker)
    baseline = copy.deepcopy(store.stats) if store is not None else None
    telemetry_before = registry.snapshot() if registry.enabled else None
    start = time.perf_counter()
    cached = False
    if store is not None:
        key = job.cache_key(salt=store.salt)
        value = store.get(job.mode, key)
        cached = value is not None
        if value is None:
            with store.stats.stage(job.mode):
                if group is not None and harness is not None:
                    value = group.compute(job, harness, store, store.salt)
                if value is None:
                    value = execute_job(job, harness=harness, store=store)
            store.put(job.mode, key, value)
        if fault is not None and fault.kind == "corrupt":
            registry.count("faults/injected")
            if corrupt_file(store.path(job.mode, key)):
                log.warning("injected corruption into stored %s artifact "
                            "of job %d", job.mode, index)
    else:
        value = None
        if group is not None and harness is not None:
            value = group.compute(job, harness, None, salt)
        if value is None:
            value = execute_job(job, harness=harness)
    elapsed = time.perf_counter() - start
    stats = (_stats_delta(store.stats, baseline)
             if store is not None else CacheStats())
    telemetry = (snapshot_delta(registry.snapshot(), telemetry_before)
                 if telemetry_before is not None else {})
    return JobResult(job=job, value=value, cached=cached,
                     seconds=elapsed, stats=stats, telemetry=telemetry,
                     attempt=attempt, index=index)


def _execute_guarded(job: SimJob, *, index: Optional[int], attempt: int,
                     store: Optional[ArtifactStore] = None,
                     harness: Optional[Harness] = None,
                     salt: str = STORE_VERSION,
                     job_timeout: Optional[float] = None,
                     in_worker: bool = False,
                     group: Optional[GroupReplay] = None) -> JobResult:
    """One attempt that *always* returns a :class:`JobResult`.

    Timeouts and exceptions are folded into the result's ``state`` /
    ``error`` instead of escaping, so a bad job can never take down its
    batch (the engine, not the worker, decides about retries).
    """
    start = time.perf_counter()
    try:
        with job_deadline(job_timeout):
            return run_job(job, store=store, harness=harness, salt=salt,
                           index=index, attempt=attempt,
                           in_worker=in_worker, group=group)
    except JobTimeoutError as exc:
        return JobResult(job=job, value=None, cached=False,
                         seconds=time.perf_counter() - start,
                         state=JobState.TIMED_OUT, attempt=attempt,
                         index=index, error=str(exc))
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        return JobResult(job=job, value=None, cached=False,
                         seconds=time.perf_counter() - start,
                         state=JobState.FAILED, attempt=attempt,
                         index=index,
                         error=f"{type(exc).__name__}: {exc}")


def _attach_shared_streams(stream_handles) -> List[Tuple[Any, Any]]:
    """Attach the parent's exported streams (worker side).

    Each attached stream is adopted into this process's stream memo, so
    :func:`~repro.trace.stream.access_stream_for` serves the zero-copy
    columns instead of rebuilding them.  Any attach failure (the parent
    unlinked early, platform refuses the mapping, ...) just drops that
    handle — the job recomputes through the store as before.
    """
    if not stream_handles:
        return []
    from repro.trace.shm import attach_stream
    from repro.trace.stream import adopt_stream
    registry = get_registry()
    adopted = []
    for handle in stream_handles:
        try:
            stream = attach_stream(handle)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            log.warning("could not attach shared stream %s for %s/%d "
                        "(%s: %s); falling back to the store",
                        handle.shm_name, handle.app, handle.input_id,
                        type(exc).__name__, exc)
            continue
        adopt_stream(stream)
        adopted.append((handle, stream))
        registry.count("engine/shm/attached")
    return adopted


def run_job_batch(jobs: Sequence[SimJob], cache_root: Optional[str] = None,
                  salt: str = STORE_VERSION,
                  indices: Optional[Sequence[int]] = None,
                  attempts: Optional[Sequence[int]] = None,
                  job_timeout: Optional[float] = None,
                  stream_handles: Optional[Sequence[Any]] = None
                  ) -> List[JobResult]:
    """Worker entry point for a *group* of jobs (module-level so process
    pools can pickle it).

    The engine groups parallel jobs by (app, input, machine config) so one
    worker runs a whole group through one :class:`Harness` — the trace,
    its shared :class:`~repro.trace.stream.AccessStream`, the OPT profile,
    and the hint maps are built once and replayed across every policy in
    the group instead of once per job.  Each job is individually guarded:
    a failed or timed-out job yields a failed :class:`JobResult` and the
    rest of the batch still runs.

    ``stream_handles`` (see :mod:`repro.trace.shm`) carries the parent's
    shared-memory exports of the group's trace and access-stream columns:
    attaching replaces this worker's store unpickle and column rebuild
    with zero-copy views.  Handles are hints — any attach failure falls
    back to the store path.

    ``REPRO_PROFILE=cprofile|tracemalloc`` wraps the batch in a deep
    profiler (see :mod:`repro.telemetry.profile_hooks`).
    """
    store = (ArtifactStore(cache_root, salt=salt)
             if cache_root is not None else None)
    index_list = (list(indices) if indices is not None
                  else [None] * len(jobs))
    attempt_list = (list(attempts) if attempts is not None
                    else [0] * len(jobs))
    adopted = _attach_shared_streams(stream_handles)
    harnesses: Dict[HarnessConfig, Harness] = {}
    results: List[JobResult] = []
    groups = GroupReplay.plan(jobs)
    with worker_profile(cache_root):
        for job, index, attempt, group in zip(jobs, index_list,
                                              attempt_list, groups):
            config = job.harness_config()
            harness = harnesses.get(config)
            if harness is None:
                harness = Harness(config, store=store)
                for handle, stream in adopted:
                    if handle.length == config.length:
                        harness.adopt_trace(handle.app, handle.input_id,
                                            stream.trace)
                harnesses[config] = harness
            results.append(_execute_guarded(
                job, index=index, attempt=attempt, store=store,
                harness=harness, salt=salt, job_timeout=job_timeout,
                in_worker=True, group=group))
    # Streams were attached before any per-job telemetry delta started;
    # piggy-back the count on the last result so it reaches the parent.
    if results and adopted:
        counters = results[-1].telemetry.setdefault("counters", {})
        counters["engine/shm/attached"] = (
            counters.get("engine/shm/attached", 0) + len(adopted))
    # The profile hook records its gauges after every per-job delta was
    # taken; piggy-back them on the last result so they reach the parent.
    registry = get_registry()
    if results and registry.enabled and registry.gauges:
        profile_gauges = {name: value
                          for name, value in registry.gauges.items()
                          if name.startswith("profile/")}
        if profile_gauges:
            results[-1].telemetry.setdefault("gauges", {}).update(
                profile_gauges)
    return results


def _stats_delta(current: CacheStats, baseline: CacheStats) -> CacheStats:
    """This job's contribution to a (possibly shared) store's stats."""
    delta = CacheStats(
        hits=current.hits - baseline.hits,
        misses=current.misses - baseline.misses,
        corrupt=current.corrupt - baseline.corrupt,
        digest_failures=(current.digest_failures
                         - baseline.digest_failures),
        quarantined=current.quarantined - baseline.quarantined,
        bytes_read=current.bytes_read - baseline.bytes_read,
        bytes_written=current.bytes_written - baseline.bytes_written)
    for name, secs in current.stage_seconds.items():
        diff = secs - baseline.stage_seconds.get(name, 0.0)
        if diff > 0.0:
            delta.stage_seconds[name] = diff
    for name, count in current.stage_counts.items():
        diff = count - baseline.stage_counts.get(name, 0)
        if diff > 0:
            delta.stage_counts[name] = diff
    return delta


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

@dataclass
class _RunState:
    """Mutable bookkeeping for one :meth:`ExperimentEngine.run`."""

    jobs: List[SimJob]
    states: List[str]
    attempts: List[int]
    results: List[Optional[JobResult]]
    rng: random.Random
    journal: Optional[Any] = None
    #: Jobs already counted in ``engine/jobs/retried`` (once per job).
    retried: Set[int] = field(default_factory=set)
    #: Jobs already counted in ``engine/jobs/timed_out`` (once per job).
    timed_out: Set[int] = field(default_factory=set)

    def event(self, index: int, state: str, **extra) -> None:
        if self.journal is not None:
            self.journal.event(index=index, state=state, **extra)


class ExperimentEngine:
    """Fan :class:`SimJob` batches out over processes, backed by one
    shared :class:`ArtifactStore`.

    ``jobs == 1`` (or a single-job batch) runs serially in-process —
    bit-identical to driving a :class:`Harness` by hand — and reuses one
    harness per distinct machine configuration so in-memory caches
    amortize exactly as before.

    ``max_retries`` / ``job_timeout`` bound each job's attempts and
    per-attempt wall clock; a worker death re-shards its batch instead of
    failing the sweep; ``run(jobs, resume=run_id)`` continues an
    interrupted run, skipping jobs whose artifacts verify in the store
    (see ``docs/FAULTS.md``).

    Every :meth:`run` against a cache directory also writes a **run
    manifest** (``manifest.jsonl`` + ``summary.json``, plus an
    incremental ``events.jsonl`` job-state journal and a ``jobs.json``
    index) under ``<cache_dir>/runs/<run id>`` — per-job timings, cache
    provenance, merged telemetry, worker utilization, terminal status,
    and any exception (see :mod:`repro.telemetry.manifest` and
    ``docs/TELEMETRY.md``).  Disable with ``write_manifest=False`` or
    point it elsewhere with ``manifest_dir``.
    """

    def __init__(self, cache_dir: Union[str, Path, None] = None,
                 jobs: Optional[int] = None, salt: str = STORE_VERSION,
                 manifest_dir: Union[str, Path, None] = None,
                 write_manifest: bool = True,
                 max_retries: Optional[int] = None,
                 job_timeout: Optional[float] = None,
                 backoff_base: float = 0.25, backoff_cap: float = 8.0):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.salt = salt
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir else None
        self.store = (ArtifactStore(self.cache_dir, salt=salt)
                      if self.cache_dir else None)
        self.stats = CacheStats()
        self.max_retries = (default_max_retries() if max_retries is None
                            else max(0, int(max_retries)))
        if job_timeout is None:
            self.job_timeout = default_job_timeout()
        else:
            self.job_timeout = (float(job_timeout)
                                if float(job_timeout) > 0 else None)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        if manifest_dir is not None:
            self.manifest_dir: Optional[Path] = \
                Path(manifest_dir).expanduser()
        elif self.cache_dir is not None:
            self.manifest_dir = self.cache_dir / "runs"
        else:
            self.manifest_dir = None
        if not write_manifest:
            self.manifest_dir = None
        #: The most recent run's manifest directory (None until a run
        #: completes with manifests enabled).
        self.last_manifest: Optional[Path] = None
        #: The most recent run's id (set at run start, so it is available
        #: even when the run fails — it is what ``resume=`` takes).
        self.last_run_id: Optional[str] = None
        #: The most recent run's merged telemetry snapshot.
        self.last_run_telemetry: Dict[str, Any] = {}
        self._used_workers = False

    @classmethod
    def from_env(cls, jobs: Optional[int] = None) -> "ExperimentEngine":
        """An engine at the default cache location and ``REPRO_JOBS``."""
        return cls(cache_dir=default_cache_dir(), jobs=jobs)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[SimJob],
            resume: Optional[str] = None) -> List[JobResult]:
        """Run every job, returning results in input order.

        ``resume`` continues an earlier run (a run id under the manifest
        directory, or ``"latest"``): jobs whose artifacts verify in the
        store are marked ``skipped`` and served from disk; everything
        else runs normally.  If any job still has not succeeded after
        ``1 + max_retries`` attempts, the run manifest is written with
        ``status: failed`` and :class:`ExperimentError` is raised — the
        completed jobs' artifacts stay in the store, so a resumed run
        only repeats the unfinished work.
        """
        from repro.telemetry.manifest import RunJournal, new_run_id
        jobs = list(jobs)
        registry = get_registry()
        run_id = new_run_id()
        self.last_run_id = run_id
        resumed_from = (self._resolve_resume(resume)
                        if resume is not None else None)
        parent_before = registry.snapshot() if registry.enabled else None
        start = time.perf_counter()
        rs = _RunState(jobs=jobs,
                       states=[JobState.PENDING] * len(jobs),
                       attempts=[0] * len(jobs),
                       results=[None] * len(jobs),
                       rng=random.Random(run_id))
        if self.manifest_dir is not None:
            try:
                rs.journal = RunJournal(
                    self.manifest_dir / run_id,
                    jobs_index=[{"index": i, "app": job.app,
                                 "policy": job.policy, "mode": job.mode,
                                 "input_id": job.input_id,
                                 "key": job.cache_key(self.salt)}
                                for i, job in enumerate(jobs)])
            except OSError as exc:  # pragma: no cover - disk-full etc.
                log.warning("could not open run journal under %s: %s",
                            self.manifest_dir, exc)
        failure: Optional[dict] = None
        self._used_workers = False
        try:
            if resumed_from is not None:
                self._skip_verified(rs, resumed_from)
            pending = [i for i in range(len(jobs))
                       if rs.results[i] is None]
            if self.jobs > 1 and len(pending) > 1:
                self._used_workers = True
                self._run_parallel(rs, pending)
            else:
                self._run_serial(rs, pending)
        except BaseException as exc:
            failure = {"where": type(self).__name__,
                       "error": f"{type(exc).__name__}: {exc}"}
            raise
        finally:
            if rs.journal is not None:
                rs.journal.close()
            wall = time.perf_counter() - start
            self._write_manifest(rs, wall, parent_before, failure,
                                 run_id=run_id, resumed_from=resumed_from)
        failed = [i for i in range(len(jobs))
                  if rs.states[i] in (JobState.FAILED, JobState.TIMED_OUT)]
        if failed:
            details = "; ".join(
                f"{jobs[i].app}/{jobs[i].policy}[{i}]: "
                f"{rs.results[i].error}" for i in failed[:5])
            if len(failed) > 5:
                details += f"; ... {len(failed) - 5} more"
            raise ExperimentError(
                f"{len(failed)} of {len(jobs)} job(s) did not complete "
                f"after {1 + self.max_retries} attempt(s): {details} "
                f"(continue with resume={run_id!r})",
                run_id=run_id,
                failures=[{"index": i, "app": jobs[i].app,
                           "policy": jobs[i].policy,
                           "state": rs.states[i],
                           "error": rs.results[i].error} for i in failed])
        return rs.results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _resolve_resume(self, resume: str) -> str:
        """Validate a resume target and return its run id."""
        if self.store is None or self.manifest_dir is None:
            raise ValueError("resume requires a cache directory: the "
                             "store is what verifies completed jobs")
        if resume == "latest":
            candidates = [p for p in self.manifest_dir.iterdir()
                          if p.is_dir() and (
                              (p / "summary.json").exists()
                              or (p / "events.jsonl").exists())] \
                if self.manifest_dir.is_dir() else []
            if not candidates:
                raise ValueError(f"no previous run to resume under "
                                 f"{self.manifest_dir}")
            return max(candidates, key=lambda p: p.stat().st_mtime).name
        if not (self.manifest_dir / resume).is_dir():
            raise ValueError(f"no run {resume!r} under "
                             f"{self.manifest_dir}")
        return resume

    def _skip_verified(self, rs: _RunState, resumed_from: str) -> None:
        """Mark every job whose artifact decodes and passes its integrity
        digest as ``skipped`` — the store read *is* the verification; a
        corrupt artifact is quarantined here and the job re-runs."""
        from repro.telemetry.manifest import read_jobs_index
        registry = get_registry()
        previous = {row.get("key") for row in
                    read_jobs_index(self.manifest_dir / resumed_from)}
        current = {job.cache_key(self.salt) for job in rs.jobs}
        if previous and previous != current:
            log.warning(
                "resume %s: job list differs from the original run "
                "(%d shared of %d current); unmatched jobs run fresh",
                resumed_from, len(previous & current), len(current))
        for i, job in enumerate(rs.jobs):
            baseline = copy.deepcopy(self.store.stats)
            value = self.store.get(job.mode, job.cache_key(self.salt))
            if value is None:
                # The verification read may have quarantined a corrupt
                # artifact; keep that accounting even though the job now
                # re-runs instead of being skipped.
                self.stats.merge(_stats_delta(self.store.stats, baseline))
                continue
            stats = _stats_delta(self.store.stats, baseline)
            rs.results[i] = JobResult(job=job, value=value, cached=True,
                                      seconds=0.0, stats=stats,
                                      state=JobState.SKIPPED, index=i)
            rs.states[i] = JobState.SKIPPED
            self.stats.merge(stats)
            registry.count("engine/jobs/skipped")
            rs.event(i, JobState.SKIPPED)
        skipped = sum(1 for s in rs.states if s == JobState.SKIPPED)
        log.info("resume %s: %d of %d job(s) verified in the store and "
                 "skipped", resumed_from, skipped, len(rs.jobs))

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def _start_attempt(self, rs: _RunState, i: int) -> None:
        rs.attempts[i] += 1
        rs.states[i] = JobState.RUNNING
        rs.event(i, JobState.RUNNING, attempt=rs.attempts[i] - 1)

    def _record_outcome(self, rs: _RunState, i: int,
                        result: JobResult) -> bool:
        """Fold one attempt's outcome into the run; True ⇒ retry it."""
        registry = get_registry()
        job = rs.jobs[i]
        result.index = i
        if result.state == JobState.SUCCEEDED:
            rs.states[i] = JobState.SUCCEEDED
            rs.results[i] = result
            self.stats.merge(result.stats)
            registry.count("engine/jobs/succeeded")
            rs.event(i, JobState.SUCCEEDED, attempt=result.attempt,
                     cached=result.cached,
                     seconds=round(result.seconds, 6))
            return False
        if result.state == JobState.TIMED_OUT and i not in rs.timed_out:
            rs.timed_out.add(i)
            registry.count("engine/jobs/timed_out")
        if rs.attempts[i] < 1 + self.max_retries:
            if i not in rs.retried:
                rs.retried.add(i)
                registry.count("engine/jobs/retried")
            rs.states[i] = JobState.PENDING
            rs.results[i] = None
            rs.event(i, JobState.PENDING, attempt=result.attempt,
                     error=result.error, retry=True)
            log.warning("job %d (%s/%s) %s on attempt %d: %s — retrying",
                        i, job.app, job.policy, result.state,
                        result.attempt, result.error)
            return True
        rs.states[i] = result.state
        rs.results[i] = result
        registry.count("engine/jobs/failed")
        rs.event(i, result.state, attempt=result.attempt,
                 error=result.error)
        log.error("job %d (%s/%s) %s after %d attempt(s): %s",
                  i, job.app, job.policy, result.state, rs.attempts[i],
                  result.error)
        return False

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------
    def _run_serial(self, rs: _RunState, pending: Sequence[int]) -> None:
        harnesses: Dict[HarnessConfig, Harness] = {}
        queue = list(pending)
        round_no = 0
        while queue:
            # Retry rounds replay each job alone: a group sweep memoized
            # before a fault could resurrect a value the retry is meant
            # to recompute through the store.
            groups = (GroupReplay.plan([rs.jobs[i] for i in queue])
                      if round_no == 0 else [None] * len(queue))
            retry: List[int] = []
            for qi, i in enumerate(queue):
                job = rs.jobs[i]
                config = job.harness_config()
                harness = harnesses.get(config)
                if harness is None:
                    harness = Harness(config, store=self.store)
                    harnesses[config] = harness
                if rs.attempts[i] > 0:
                    # Retries recompute through the store rather than the
                    # harness's warm in-memory artifacts, so a quarantined
                    # (corrupt) intermediate is rebuilt, not resurrected.
                    harness.invalidate(job.app, job.input_id)
                self._start_attempt(rs, i)
                result = _execute_guarded(
                    job, index=i, attempt=rs.attempts[i] - 1,
                    store=self.store, harness=harness, salt=self.salt,
                    job_timeout=self.job_timeout, in_worker=False,
                    group=groups[qi])
                if self._record_outcome(rs, i, result):
                    retry.append(i)
            if retry:
                _backoff_sleep(backoff_delay(round_no,
                                             base=self.backoff_base,
                                             cap=self.backoff_cap,
                                             rng=rs.rng))
            queue = retry
            round_no += 1

    @staticmethod
    def _batch(jobs: Sequence[SimJob], target: int) -> List[List[int]]:
        """Group job indices by (app, input, machine config) so each
        worker replays one shared access stream across its group's
        policies; large groups are split while workers would sit idle."""
        groups: Dict[Any, List[int]] = {}
        for i, job in enumerate(jobs):
            key = (job.app, job.input_id, job.harness_config())
            groups.setdefault(key, []).append(i)
        batches = list(groups.values())
        while len(batches) < target:
            largest = max(batches, key=len)
            if len(largest) <= 1:
                break
            batches.remove(largest)
            mid = len(largest) // 2
            batches.extend([largest[:mid], largest[mid:]])
        return batches

    @staticmethod
    def _stream_key(job: SimJob) -> Tuple[str, int, Optional[int],
                                          BTBConfig]:
        """Identity of the (trace, geometry) pair one export covers."""
        return (job.app, job.input_id, job.length, job.btb_config)

    def _export_streams(self, rs: _RunState,
                        batches: Sequence[Sequence[int]]) -> Dict[Any, Any]:
        """Export each round-0 group's stream columns over shared memory.

        Only traces already present in the store are exported — the
        parent shares what exists, it never computes a missing trace
        (that stays the worker's job).  Returns ``{stream key:
        ExportedStream}``; the caller owns the exports and must close
        (unlink) them after the run.
        """
        from repro.trace.shm import export_stream, shm_enabled
        from repro.trace.stream import access_stream_for
        if self.store is None or not shm_enabled():
            return {}
        exports: Dict[Any, Any] = {}
        for batch in batches:
            job = rs.jobs[batch[0]]
            key = self._stream_key(job)
            if key in exports:
                continue
            trace = self.store.get("trace", self.store.key(
                "trace", app=job.app, input_id=job.input_id,
                length=job.length))
            if trace is None:
                continue
            try:
                stream = access_stream_for(trace, job.btb_config)
                exports[key] = export_stream(stream, job.app,
                                             job.input_id, job.length)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                log.warning("stream export failed for %s/%d (%s: %s); "
                            "workers will rebuild from the store",
                            job.app, job.input_id,
                            type(exc).__name__, exc)
        if exports:
            get_registry().count("engine/shm/exported", len(exports))
            total = sum(e.handle.nbytes for e in exports.values())
            log.info("exported %d shared stream(s) (%.1f MiB) for "
                     "zero-copy worker attach", len(exports),
                     total / (1024 * 1024))
        return exports

    def _run_parallel(self, rs: _RunState,
                      pending: Sequence[int]) -> None:
        from concurrent.futures.process import BrokenProcessPool
        cache_root = str(self.cache_dir) if self.cache_dir else None
        queue = list(pending)
        round_no = 0
        exports: Dict[Any, Any] = {}
        try:
            self._run_parallel_rounds(rs, queue, round_no, cache_root,
                                      exports, BrokenProcessPool)
        finally:
            for exported in exports.values():
                exported.close()

    def _run_parallel_rounds(self, rs: _RunState, queue: List[int],
                             round_no: int, cache_root: Optional[str],
                             exports: Dict[Any, Any],
                             BrokenProcessPool) -> None:
        while queue:
            if round_no == 0:
                local = self._batch([rs.jobs[i] for i in queue],
                                    min(self.jobs, len(queue)))
                batches = [[queue[li] for li in b] for b in local]
                exports.update(self._export_streams(rs, batches))
            else:
                # Retry rounds run every job in its own isolation batch
                # (on a fresh pool): one poison job can then take down at
                # most itself, never re-kill healthy neighbours.  They
                # also drop the shared-memory handles — a retried job
                # rebuilds everything through the store.
                batches = [[i] for i in queue]
            workers = min(self.jobs, len(batches))
            retry: List[int] = []
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for batch in batches:
                    for i in batch:
                        self._start_attempt(rs, i)
                    handles = None
                    if round_no == 0:
                        exported = exports.get(
                            self._stream_key(rs.jobs[batch[0]]))
                        if exported is not None:
                            handles = [exported.handle]
                    future = pool.submit(
                        run_job_batch, [rs.jobs[i] for i in batch],
                        cache_root, self.salt, indices=list(batch),
                        attempts=[rs.attempts[i] - 1 for i in batch],
                        job_timeout=self.job_timeout,
                        stream_handles=handles)
                    futures[future] = batch
                for future in as_completed(futures):
                    batch = futures[future]
                    try:
                        batch_results = future.result()
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BaseException as exc:
                        # A worker died mid-batch (SIGKILL, OOM, ...);
                        # the pool is broken, so sibling batches land
                        # here too.  Degrade gracefully: every affected
                        # job is requeued for the re-shard round.
                        if isinstance(exc, BrokenProcessPool):
                            get_registry().count(
                                "engine/batches/worker_lost")
                        log.warning("worker lost batch %s (%s: %s); "
                                    "re-sharding", batch,
                                    type(exc).__name__, exc)
                        for i in batch:
                            ghost = JobResult(
                                job=rs.jobs[i], value=None, cached=False,
                                seconds=0.0, state=JobState.FAILED,
                                attempt=rs.attempts[i] - 1, index=i,
                                error=(f"worker died: "
                                       f"{type(exc).__name__}: {exc}"))
                            if self._record_outcome(rs, i, ghost):
                                retry.append(i)
                        continue
                    for i, result in zip(batch, batch_results):
                        if self._record_outcome(rs, i, result):
                            retry.append(i)
            if retry:
                _backoff_sleep(backoff_delay(round_no,
                                             base=self.backoff_base,
                                             cap=self.backoff_cap,
                                             rng=rs.rng))
            queue = retry
            round_no += 1

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _status(self, rs: _RunState, failure: Optional[dict],
                resumed_from: Optional[str]) -> str:
        if failure is not None:
            return "failed"
        if any(s not in (JobState.SUCCEEDED, JobState.SKIPPED)
               for s in rs.states):
            return "failed"
        return "resumed" if resumed_from is not None else "completed"

    def _write_manifest(self, rs: _RunState, wall: float,
                        parent_before: Optional[dict],
                        failure: Optional[dict], run_id: str,
                        resumed_from: Optional[str]) -> None:
        from repro.telemetry.manifest import write_run_manifest
        from repro.telemetry.metrics import merge_snapshots
        registry = get_registry()
        results = [r for r in rs.results if r is not None]
        parent_delta = (snapshot_delta(registry.snapshot(), parent_before)
                        if parent_before is not None else {})
        # Serial runs record jobs directly into the parent registry; the
        # parent delta already contains them, so merge job deltas only
        # for worker processes (whose registries died with them).
        if self._used_workers:
            snapshots = [r.telemetry for r in results if r.telemetry]
            snapshots.append(parent_delta)
            self.last_run_telemetry = merge_snapshots(snapshots)
        else:
            self.last_run_telemetry = parent_delta
        if self.manifest_dir is None:
            return
        run_cache = CacheStats()
        for result in results:
            run_cache.merge(result.stats)
        exceptions = [failure] if failure else []
        for result in results:
            if result.state in (JobState.FAILED, JobState.TIMED_OUT):
                exceptions.append(
                    {"where": (f"job {result.index} "
                               f"({result.job.app}/{result.job.policy})"),
                     "error": result.error or result.state})
        job_states: Dict[str, int] = {}
        for state in rs.states:
            job_states[state] = job_states.get(state, 0) + 1
        try:
            self.last_manifest = write_run_manifest(
                self.manifest_dir, results, wall_seconds=wall,
                workers=min(self.jobs, max(1, len(results))),
                run_id=run_id, cache_stats=run_cache,
                telemetry=self.last_run_telemetry,
                exceptions=exceptions,
                status=self._status(rs, failure, resumed_from),
                resumed_from=resumed_from, job_states=job_states)
            log.info("run manifest: %s", self.last_manifest)
        except OSError as exc:  # pragma: no cover - disk-full etc.
            log.warning("could not write run manifest under %s: %s",
                        self.manifest_dir, exc)
