"""Parallel experiment engine with a persistent artifact cache.

Two layers:

* :class:`ArtifactStore` — a content-addressed on-disk cache for expensive
  simulation artifacts (synthetic traces, OPT profiles, hint maps, timing
  results).  Keys are SHA-256 hashes of the *full recipe* that produced an
  artifact (app/input/length, :class:`~repro.btb.config.BTBConfig`,
  :class:`~repro.frontend.params.FrontendParams`, policy, thresholds) plus
  a version salt, so any change to the recipe — or to the artifact format —
  naturally invalidates old entries.  Writes are atomic (temp file +
  ``os.replace``) and every payload carries an integrity digest, so
  concurrent writers cannot torn-write and corrupted files are detected and
  recomputed instead of crashing.

* :class:`ExperimentEngine` — fans :class:`SimJob` simulation jobs out over
  a ``concurrent.futures.ProcessPoolExecutor`` (``jobs > 1``) or runs them
  serially in-process (``jobs == 1``, the default).  Parallel jobs are
  grouped by (app, input, machine config) so each worker builds one trace
  and one shared :class:`~repro.trace.stream.AccessStream` per group and
  replays them across every policy in the group.  Every worker shares
  the same on-disk store, so traces and profiles are computed once per
  machine and reused across processes, benchmark runs, and CLI
  invocations.

Environment knobs:

* ``REPRO_JOBS`` — default worker count (:func:`default_jobs`).
* ``REPRO_CACHE_DIR`` — default store location (:func:`default_cache_dir`);
  the CLI fallback is ``~/.cache/repro-thermometer``.

The engine is *provably equivalent* to the serial
:class:`~repro.harness.runner.Harness` path: every simulation is keyed on
everything that can affect its outcome and all generators are
seed-deterministic, which ``tests/test_engine_equivalence.py`` checks
bit-for-bit.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import logging
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.btb.config import (BTBConfig, DEFAULT_BTB_CONFIG,
                              THERMOMETER_7979_CONFIG)
from repro.frontend.params import DEFAULT_FRONTEND_PARAMS, FrontendParams
from repro.harness.reporting import CacheStats
from repro.harness.runner import Harness, HarnessConfig
from repro.telemetry.metrics import get_registry, snapshot_delta
from repro.telemetry.profile_hooks import worker_profile

log = logging.getLogger(__name__)

__all__ = ["ArtifactStore", "ExperimentEngine", "JobResult", "SimJob",
           "STORE_VERSION", "artifact_key", "default_cache_dir",
           "default_jobs", "execute_job", "run_job", "run_job_batch"]

#: Bump to invalidate every cached artifact (format or semantics change).
#: "2": BTBStats grew the ``target_mismatches`` counter, so version-1
#: pickles would deserialize without the field.
STORE_VERSION = "2"

#: Policies whose construction requires a profile-derived hint map.
HINTED_POLICIES = ("thermometer", "thermometer-7979", "thermometer-dueling")

_MAGIC = b"RPRO"
_DIGEST_BYTES = 32  # sha256


def default_jobs() -> int:
    """Worker-count default: ``REPRO_JOBS`` or 1 (serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def default_cache_dir() -> Path:
    """Store-location default: ``REPRO_CACHE_DIR`` or a per-user cache."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-thermometer"


# ----------------------------------------------------------------------
# Content-addressed keys
# ----------------------------------------------------------------------

def _canonical(value: Any) -> Any:
    """Reduce a value to JSON-stable primitives for hashing.

    Dataclasses are tagged with their type name so two configs with
    coincidentally equal fields still key differently.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: _canonical(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__type__": type(value).__name__, **fields}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def artifact_key(kind: str, salt: str = STORE_VERSION, **fields) -> str:
    """SHA-256 content key for an artifact of ``kind`` built from
    ``fields``.  Stable across processes and machines (no reliance on
    ``hash()`` or dict order)."""
    payload = json.dumps({"kind": kind, "salt": salt,
                          "fields": _canonical(fields)},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------

class ArtifactStore:
    """Content-addressed pickle store with atomic writes and integrity
    checks.

    Layout: ``<root>/<kind>/<key[:2]>/<key>.pkl`` where each file is
    ``MAGIC + sha256(payload) + payload``.  A file that is missing, has a
    bad digest, or fails to unpickle is a cache miss (and is unlinked);
    the caller recomputes and overwrites it.
    """

    def __init__(self, root: Union[str, Path], salt: str = STORE_VERSION):
        self.root = Path(root).expanduser()
        self.salt = salt
        self.stats = CacheStats()
        self.root.mkdir(parents=True, exist_ok=True)

    # -- keys and paths --------------------------------------------------
    def key(self, kind: str, **fields) -> str:
        return artifact_key(kind, salt=self.salt, **fields)

    def path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    # -- encode / decode -------------------------------------------------
    @staticmethod
    def _encode(obj: Any) -> bytes:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return _MAGIC + hashlib.sha256(payload).digest() + payload

    @staticmethod
    def _decode(blob: bytes) -> Tuple[Optional[Tuple[Any]], Optional[str]]:
        """``((obj,), None)`` on success, or ``(None, reason)`` where
        ``reason`` is ``"format"`` (bad magic / truncated header),
        ``"digest"`` (integrity-digest mismatch), or ``"unpickle"``."""
        header = len(_MAGIC) + _DIGEST_BYTES
        if len(blob) < header or not blob.startswith(_MAGIC):
            return None, "format"
        digest = blob[len(_MAGIC):header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != digest:
            return None, "digest"
        try:
            return (pickle.loads(payload),), None
        except Exception:
            return None, "unpickle"

    # -- store protocol --------------------------------------------------
    def get(self, kind: str, key: str) -> Optional[Any]:
        """The cached artifact, or None on a miss (absent or corrupt).

        Corruption — a bad integrity digest, mangled header, or
        unpicklable payload — is counted, logged as a warning, and the
        file quarantined (unlinked) so the caller recomputes it.
        """
        registry = get_registry()
        path = self.path(kind, key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            registry.count("store/miss")
            return None
        decoded, reason = self._decode(blob)
        if decoded is None:
            self.stats.corrupt += 1
            if reason == "digest":
                self.stats.digest_failures += 1
            self.stats.misses += 1
            registry.count("store/miss")
            registry.count("store/corrupt")
            log.warning("corrupt %s artifact %s (%s, %d bytes); "
                        "quarantined for recompute", kind, key[:12],
                        reason, len(blob))
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(blob)
        registry.count("store/hit")
        registry.count("store/bytes_read", len(blob))
        return decoded[0]

    def put(self, kind: str, key: str, obj: Any) -> None:
        """Atomically persist an artifact (write-to-temp + rename, so a
        concurrent reader never observes a partial file)."""
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = self._encode(obj)
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{key[:8]}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.bytes_written += len(blob)
        get_registry().count("store/bytes_written", len(blob))

    def fetch(self, kind: str, key: str, compute: Callable[[], Any]) -> Any:
        """get-or-compute-and-put, timing the compute under stage
        ``kind``."""
        cached = self.get(kind, key)
        if cached is not None:
            return cached
        with self.stats.stage(kind):
            value = compute()
        self.put(kind, key, value)
        return value


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimJob:
    """One simulation: (workload, policy, machine) → result.

    ``mode`` selects the result type: ``"sim"`` runs the full frontend
    timing model (→ :class:`~repro.frontend.simulator.SimResult`);
    ``"misses"`` replays only the BTB (→
    :class:`~repro.btb.btb.BTBStats`)."""

    app: str
    policy: str = "lru"
    input_id: int = 0
    length: Optional[int] = None
    mode: str = "sim"
    btb_config: BTBConfig = DEFAULT_BTB_CONFIG
    params: FrontendParams = DEFAULT_FRONTEND_PARAMS
    thresholds: Tuple[float, ...] = (50.0, 80.0)
    default_category: int = 1
    warmup_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.mode not in ("sim", "misses"):
            raise ValueError(f"mode must be 'sim' or 'misses', "
                             f"got {self.mode!r}")

    @property
    def needs_hints(self) -> bool:
        return self.policy in HINTED_POLICIES

    def harness_config(self) -> HarnessConfig:
        return HarnessConfig(
            apps=(self.app,), length=self.length,
            btb_config=self.btb_config, params=self.params,
            thresholds=tuple(self.thresholds),
            default_category=self.default_category,
            warmup_fraction=self.warmup_fraction)

    def key_fields(self) -> Dict[str, Any]:
        """Everything that can change this job's result."""
        return dict(app=self.app, policy=self.policy,
                    input_id=self.input_id, length=self.length,
                    btb_config=self.btb_config, params=self.params,
                    thresholds=tuple(self.thresholds),
                    default_category=self.default_category,
                    warmup_fraction=self.warmup_fraction)

    def cache_key(self, salt: str = STORE_VERSION) -> str:
        return artifact_key(self.mode, salt=salt, **self.key_fields())


@dataclass
class JobResult:
    """One finished job: its value plus cache provenance."""

    job: SimJob
    value: Any
    #: True when the *job-level* result came straight from the store.
    cached: bool
    seconds: float
    stats: CacheStats = field(default_factory=CacheStats)
    #: This job's telemetry-registry snapshot delta (counters, spans,
    #: histograms recorded while it ran) — merged by the parent into the
    #: run manifest.  See :mod:`repro.telemetry.metrics`.
    telemetry: Dict[str, Any] = field(default_factory=dict)


def execute_job(job: SimJob, harness: Optional[Harness] = None,
                store: Optional[ArtifactStore] = None) -> Any:
    """Run one job through a :class:`Harness` (no job-level caching)."""
    h = harness if harness is not None else Harness(job.harness_config(),
                                                   store=store)
    trace = h.trace(job.app, job.input_id)
    hints = None
    if job.needs_hints:
        # Hints must be profiled against the geometry the policy runs
        # with; the iso-storage variant swaps in the 7979-entry config.
        hint_config = (THERMOMETER_7979_CONFIG
                       if job.policy == "thermometer-7979"
                       else job.btb_config)
        hints = h.hints(job.app, job.input_id, btb_config=hint_config)
    if job.mode == "misses":
        return h.run_misses(trace, job.policy, btb_config=job.btb_config,
                            hints=hints)
    return h.run_sim(trace, job.policy, btb_config=job.btb_config,
                     hints=hints, params=job.params)


def run_job(job: SimJob, cache_root: Optional[str] = None,
            salt: str = STORE_VERSION,
            store: Optional[ArtifactStore] = None,
            harness: Optional[Harness] = None) -> JobResult:
    """Worker entry point (module-level so process pools can pickle it).

    Checks the store for the finished result first; on a miss, computes it
    through a harness whose intermediate artifacts (trace, profile, hints)
    are themselves store-backed.
    """
    if store is None and cache_root is not None:
        store = ArtifactStore(cache_root, salt=salt)
    baseline = copy.deepcopy(store.stats) if store is not None else None
    registry = get_registry()
    telemetry_before = registry.snapshot() if registry.enabled else None
    start = time.perf_counter()
    cached = False
    if store is not None:
        key = job.cache_key(salt=store.salt)
        value = store.get(job.mode, key)
        cached = value is not None
        if value is None:
            with store.stats.stage(job.mode):
                value = execute_job(job, harness=harness, store=store)
            store.put(job.mode, key, value)
    else:
        value = execute_job(job, harness=harness)
    elapsed = time.perf_counter() - start
    stats = (_stats_delta(store.stats, baseline)
             if store is not None else CacheStats())
    telemetry = (snapshot_delta(registry.snapshot(), telemetry_before)
                 if telemetry_before is not None else {})
    return JobResult(job=job, value=value, cached=cached,
                     seconds=elapsed, stats=stats, telemetry=telemetry)


def run_job_batch(jobs: Sequence[SimJob], cache_root: Optional[str] = None,
                  salt: str = STORE_VERSION) -> List[JobResult]:
    """Worker entry point for a *group* of jobs (module-level so process
    pools can pickle it).

    The engine groups parallel jobs by (app, input, machine config) so one
    worker runs a whole group through one :class:`Harness` — the trace,
    its shared :class:`~repro.trace.stream.AccessStream`, the OPT profile,
    and the hint maps are built once and replayed across every policy in
    the group instead of once per job.

    ``REPRO_PROFILE=cprofile|tracemalloc`` wraps the batch in a deep
    profiler (see :mod:`repro.telemetry.profile_hooks`).
    """
    store = (ArtifactStore(cache_root, salt=salt)
             if cache_root is not None else None)
    harnesses: Dict[HarnessConfig, Harness] = {}
    results: List[JobResult] = []
    with worker_profile(cache_root):
        for job in jobs:
            config = job.harness_config()
            harness = harnesses.get(config)
            if harness is None:
                harness = Harness(config, store=store)
                harnesses[config] = harness
            results.append(run_job(job, store=store, harness=harness,
                                   salt=salt))
    # The profile hook records its gauges after every per-job delta was
    # taken; piggy-back them on the last result so they reach the parent.
    registry = get_registry()
    if results and registry.enabled and registry.gauges:
        profile_gauges = {name: value
                          for name, value in registry.gauges.items()
                          if name.startswith("profile/")}
        if profile_gauges:
            results[-1].telemetry.setdefault("gauges", {}).update(
                profile_gauges)
    return results


def _stats_delta(current: CacheStats, baseline: CacheStats) -> CacheStats:
    """This job's contribution to a (possibly shared) store's stats."""
    delta = CacheStats(
        hits=current.hits - baseline.hits,
        misses=current.misses - baseline.misses,
        corrupt=current.corrupt - baseline.corrupt,
        digest_failures=(current.digest_failures
                         - baseline.digest_failures),
        bytes_read=current.bytes_read - baseline.bytes_read,
        bytes_written=current.bytes_written - baseline.bytes_written)
    for name, secs in current.stage_seconds.items():
        diff = secs - baseline.stage_seconds.get(name, 0.0)
        if diff > 0.0:
            delta.stage_seconds[name] = diff
    for name, count in current.stage_counts.items():
        diff = count - baseline.stage_counts.get(name, 0)
        if diff > 0:
            delta.stage_counts[name] = diff
    return delta


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

class ExperimentEngine:
    """Fan :class:`SimJob` batches out over processes, backed by one
    shared :class:`ArtifactStore`.

    ``jobs == 1`` (or a single-job batch) runs serially in-process —
    bit-identical to driving a :class:`Harness` by hand — and reuses one
    harness per distinct machine configuration so in-memory caches
    amortize exactly as before.

    Every :meth:`run` against a cache directory also writes a **run
    manifest** (``manifest.jsonl`` + ``summary.json``) under
    ``<cache_dir>/runs/<run id>`` — per-job timings, cache provenance,
    merged telemetry, worker utilization, and any exception (see
    :mod:`repro.telemetry.manifest` and ``docs/TELEMETRY.md``).  Disable
    with ``write_manifest=False`` or point it elsewhere with
    ``manifest_dir``.
    """

    def __init__(self, cache_dir: Union[str, Path, None] = None,
                 jobs: Optional[int] = None, salt: str = STORE_VERSION,
                 manifest_dir: Union[str, Path, None] = None,
                 write_manifest: bool = True):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.salt = salt
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir else None
        self.store = (ArtifactStore(self.cache_dir, salt=salt)
                      if self.cache_dir else None)
        self.stats = CacheStats()
        if manifest_dir is not None:
            self.manifest_dir: Optional[Path] = \
                Path(manifest_dir).expanduser()
        elif self.cache_dir is not None:
            self.manifest_dir = self.cache_dir / "runs"
        else:
            self.manifest_dir = None
        if not write_manifest:
            self.manifest_dir = None
        #: The most recent run's manifest directory (None until a run
        #: completes with manifests enabled).
        self.last_manifest: Optional[Path] = None
        #: The most recent run's merged telemetry snapshot.
        self.last_run_telemetry: Dict[str, Any] = {}

    @classmethod
    def from_env(cls, jobs: Optional[int] = None) -> "ExperimentEngine":
        """An engine at the default cache location and ``REPRO_JOBS``."""
        return cls(cache_dir=default_cache_dir(), jobs=jobs)

    def run(self, jobs: Sequence[SimJob]) -> List[JobResult]:
        """Run every job, returning results in input order.

        A failing job propagates its exception, but the run manifest is
        still written first (with the error recorded), so a crashed
        sweep leaves a forensic record of what did complete.
        """
        jobs = list(jobs)
        registry = get_registry()
        parent_before = registry.snapshot() if registry.enabled else None
        start = time.perf_counter()
        results: List[JobResult] = []
        failure: Optional[dict] = None
        try:
            if self.jobs <= 1 or len(jobs) <= 1:
                results = self._run_serial(jobs)
            else:
                results = self._run_parallel(jobs)
        except BaseException as exc:
            failure = {"where": type(self).__name__,
                       "error": f"{type(exc).__name__}: {exc}"}
            raise
        finally:
            wall = time.perf_counter() - start
            self._write_manifest(results, wall, parent_before, failure)
        return results

    def _write_manifest(self, results: Sequence[JobResult], wall: float,
                        parent_before: Optional[dict],
                        failure: Optional[dict]) -> None:
        from repro.telemetry.manifest import write_run_manifest
        from repro.telemetry.metrics import merge_snapshots
        registry = get_registry()
        parent_delta = (snapshot_delta(registry.snapshot(), parent_before)
                        if parent_before is not None else {})
        # Serial runs record jobs directly into the parent registry; the
        # parent delta already contains them, so merge job deltas only
        # for worker processes (whose registries died with them).
        if self.jobs > 1 and len(results) > 1:
            snapshots = [r.telemetry for r in results if r.telemetry]
            snapshots.append(parent_delta)
            self.last_run_telemetry = merge_snapshots(snapshots)
        else:
            self.last_run_telemetry = parent_delta
        if self.manifest_dir is None:
            return
        run_cache = CacheStats()
        for result in results:
            run_cache.merge(result.stats)
        try:
            self.last_manifest = write_run_manifest(
                self.manifest_dir, results, wall_seconds=wall,
                workers=min(self.jobs, max(1, len(results))),
                cache_stats=run_cache,
                telemetry=self.last_run_telemetry,
                exceptions=[failure] if failure else [])
            log.info("run manifest: %s", self.last_manifest)
        except OSError as exc:  # pragma: no cover - disk-full etc.
            log.warning("could not write run manifest under %s: %s",
                        self.manifest_dir, exc)

    def _run_serial(self, jobs: Sequence[SimJob]) -> List[JobResult]:
        harnesses: Dict[HarnessConfig, Harness] = {}
        results = []
        for job in jobs:
            config = job.harness_config()
            harness = harnesses.get(config)
            if harness is None:
                harness = Harness(config, store=self.store)
                harnesses[config] = harness
            result = run_job(job, store=self.store, harness=harness,
                             salt=self.salt)
            self.stats.merge(result.stats)
            results.append(result)
        return results

    @staticmethod
    def _batch(jobs: Sequence[SimJob], target: int) -> List[List[int]]:
        """Group job indices by (app, input, machine config) so each
        worker replays one shared access stream across its group's
        policies; large groups are split while workers would sit idle."""
        groups: Dict[Any, List[int]] = {}
        for i, job in enumerate(jobs):
            key = (job.app, job.input_id, job.harness_config())
            groups.setdefault(key, []).append(i)
        batches = list(groups.values())
        while len(batches) < target:
            largest = max(batches, key=len)
            if len(largest) <= 1:
                break
            batches.remove(largest)
            mid = len(largest) // 2
            batches.extend([largest[:mid], largest[mid:]])
        return batches

    def _run_parallel(self, jobs: Sequence[SimJob]) -> List[JobResult]:
        cache_root = str(self.cache_dir) if self.cache_dir else None
        batches = self._batch(jobs, min(self.jobs, len(jobs)))
        workers = min(self.jobs, len(batches))
        results: List[Optional[JobResult]] = [None] * len(jobs)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(run_job_batch, [jobs[i] for i in batch],
                            cache_root, self.salt): batch
                for batch in batches}
            for future, batch in futures.items():
                for index, result in zip(batch, future.result()):
                    self.stats.merge(result.stats)
                    results[index] = result
        return results  # type: ignore[return-value]
