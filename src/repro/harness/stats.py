"""Replication statistics: run experiments across seeds, report CIs.

The synthetic workload generator is seeded, so every headline number can be
replicated across independent trace draws.  This module provides the
machinery: :func:`replicate` runs any metric across seeds and returns a
mean with a Student-t confidence interval; :func:`speedup_replication`
packages the common case — per-policy IPC speedup over LRU for one
application — as an :class:`~repro.harness.reporting.ExperimentResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.btb.btb import BTB, btb_access_stream, run_btb
from repro.btb.config import BTBConfig, DEFAULT_BTB_CONFIG
from repro.btb.replacement.registry import make_policy
from repro.core.hints import ThresholdQuantizer
from repro.core.pipeline import ThermometerPipeline
from repro.frontend.simulator import simulate
from repro.harness.reporting import ExperimentResult
from repro.workloads.datacenter import make_app_trace

__all__ = ["ReplicationResult", "replicate", "speedup_replication"]

#: Two-sided 95% Student-t critical values by degrees of freedom (1-30);
#: beyond 30 the normal value is used.
_T95 = [12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042]


def _t95(dof: int) -> float:
    if dof < 1:
        raise ValueError("need at least 2 samples for an interval")
    return _T95[dof - 1] if dof <= len(_T95) else 1.96


@dataclass(frozen=True)
class ReplicationResult:
    """Mean and 95% confidence interval of a replicated metric."""

    metric: str
    values: tuple

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1)."""
        if self.n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((v - mean) ** 2 for v in self.values)
                         / (self.n - 1))

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the two-sided 95% Student-t interval."""
        if self.n < 2:
            return 0.0
        return _t95(self.n - 1) * self.std / math.sqrt(self.n)

    @property
    def ci95(self) -> tuple:
        half = self.ci95_halfwidth
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        return (f"{self.metric}: {self.mean:.3f} ± "
                f"{self.ci95_halfwidth:.3f} (n={self.n})")


def replicate(metric_fn: Callable[[int], float], seeds: Sequence[int],
              metric: str = "metric") -> ReplicationResult:
    """Evaluate ``metric_fn(seed)`` for every seed."""
    if not seeds:
        raise ValueError("need at least one seed")
    return ReplicationResult(metric=metric,
                             values=tuple(metric_fn(seed)
                                          for seed in seeds))


def speedup_replication(app: str,
                        policies: Sequence[str] = ("srrip", "thermometer",
                                                   "opt"),
                        seeds: Sequence[int] = (0, 1, 2),
                        length: Optional[int] = None,
                        config: BTBConfig = DEFAULT_BTB_CONFIG,
                        use_ipc: bool = False) -> ExperimentResult:
    """Per-policy gains over LRU for ``app``, replicated across seeds.

    By default reports BTB **miss reduction** (fast); with ``use_ipc`` the
    full timing model runs and the metric is IPC speedup.  Both in percent.
    """
    samples: dict = {name: [] for name in policies}
    for seed in seeds:
        trace = make_app_trace(app, length=length, seed=seed)
        pcs, _ = btb_access_stream(trace)
        pipeline = ThermometerPipeline(config=config,
                                       quantizer=ThresholdQuantizer())
        hints = pipeline.build_hints(trace)

        def build(name):
            if name == "thermometer":
                return BTB(config, pipeline.policy(hints))
            if name == "opt":
                return BTB(config, make_policy("opt", stream=pcs))
            return BTB(config, make_policy(name))

        if use_ipc:
            base = simulate(trace, btb=build("lru"))
            for name in policies:
                result = simulate(trace, btb=build(name))
                samples[name].append(100.0 * result.speedup_over(base))
        else:
            base = run_btb(trace, build("lru"))
            for name in policies:
                stats = run_btb(trace, build(name))
                reduction = (100.0 * (base.misses - stats.misses)
                             / base.misses if base.misses else 0.0)
                samples[name].append(reduction)

    metric = "ipc_speedup_pct" if use_ipc else "miss_reduction_pct"
    result = ExperimentResult(
        "replication", f"{app}: {metric} over LRU across "
                       f"{len(seeds)} seeds",
        ["policy", "mean", "std", "ci95_half", "n"],
        notes="95% Student-t interval over independent trace draws.")
    for name in policies:
        rep = ReplicationResult(metric=name, values=tuple(samples[name]))
        result.rows.append([name, rep.mean, rep.std, rep.ci95_halfwidth,
                            rep.n])
    return result
