"""Experiment harness: one function per paper figure/table.

Typical use::

    from repro.harness import Harness, experiments
    h = Harness()                       # default: all 13 apps, paper config
    result = experiments.fig11(h)       # main speedup comparison
    print(result.render())

``python -m repro.harness.reproduce`` regenerates every figure.
"""

from repro.harness.runner import Harness, HarnessConfig
from repro.harness.engine import (ArtifactStore, ExperimentEngine,
                                  ExperimentError, JobResult, JobState,
                                  SimJob)
from repro.harness.reporting import CacheStats, ExperimentResult, format_table
from repro.harness.charts import (bar_chart, grouped_bar_chart,
                                  result_chart, sparkline)
from repro.harness.stats import (ReplicationResult, replicate,
                                 speedup_replication)
from repro.harness import experiments

__all__ = [
    "ArtifactStore",
    "CacheStats",
    "ExperimentEngine",
    "ExperimentError",
    "ExperimentResult",
    "Harness",
    "HarnessConfig",
    "JobResult",
    "JobState",
    "ReplicationResult",
    "SimJob",
    "bar_chart",
    "experiments",
    "format_table",
    "grouped_bar_chart",
    "replicate",
    "result_chart",
    "sparkline",
    "speedup_replication",
]
