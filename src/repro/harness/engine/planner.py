"""Planning: which jobs share a sweep, a worker batch, a stream export.

The :class:`Planner` is pure bookkeeping — it looks at a job list and
decides how work should be shaped (single-pass multi-policy replay
groups, per-worker batches, shared-memory stream exports) without
running anything.  The executors in
:mod:`repro.harness.engine.executor` consume its plans; the service's
request coalescer reuses the same group keys so a coalesced request
lands in the sweep the planner would have built anyway.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.harness.engine.keys import (batch_key, effective_btb_config,
                                       replay_group_key, stream_key)
from repro.harness.runner import Harness
from repro.telemetry.metrics import get_registry
from repro.telemetry.tracing import trace_span

log = logging.getLogger(__name__)

__all__ = ["GroupReplay", "Planner", "multi_replay_enabled"]


def multi_replay_enabled() -> bool:
    """Single-pass multi-policy replay kill switch: ``REPRO_MULTI_REPLAY``
    (default on; ``0``/``false``/``off``/``no`` disable it)."""
    raw = os.environ.get("REPRO_MULTI_REPLAY", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


class GroupReplay:
    """Single-pass multi-policy replay plan for one job group.

    The engine already routes all jobs sharing (app, input, machine
    config) through one :class:`Harness`, so their traces and access
    streams are built once — but each ``misses`` job still replayed the
    stream on its own.  A ``GroupReplay`` covers every ``misses`` job of
    one group and, the first time any member misses the store, runs
    :meth:`Harness.run_misses_multi` once: one sweep over the shared
    stream drives N policy states side by side.  Later members take
    their result from the memoized sweep and still go through the normal
    ``store.put`` path, so on-disk artifacts, resume, and fault
    injection are byte-identical to per-job replay (the sweep is
    result-identical by construction, and ``tests/test_multi_replay.py``
    checks it bit-for-bit).

    The sweep is lazy and store-aware: members whose artifacts already
    verify on disk are skipped, so a resumed run only pays for what is
    actually missing.  Plans are built per execution round by
    :meth:`plan`; retry and isolation rounds run ungrouped.

    The sweep memo is guarded by a lock, so interleaved submitters (the
    async executor above concurrency 1, the service's coalescer) trigger
    exactly one sweep per group instead of racing to run it twice.
    """

    def __init__(self, jobs: Sequence):
        self.jobs = list(jobs)
        self._values: Optional[Dict[str, Any]] = None
        self._sweep_lock = threading.Lock()

    @staticmethod
    def _group_key(job) -> Optional[Tuple]:
        """Jobs with equal keys replay the same stream columns (None:
        not groupable) — see
        :func:`repro.harness.engine.keys.replay_group_key`."""
        return replay_group_key(job)

    @classmethod
    def plan(cls, jobs: Sequence) -> List[Optional["GroupReplay"]]:
        """One entry per job: its shared :class:`GroupReplay`, or None
        for jobs that replay alone (sim mode, singleton groups, or the
        ``REPRO_MULTI_REPLAY`` kill switch)."""
        assignment: List[Optional[GroupReplay]] = [None] * len(jobs)
        if not multi_replay_enabled():
            return assignment
        groups: Dict[Tuple, List[int]] = {}
        for i, job in enumerate(jobs):
            key = replay_group_key(job)
            if key is not None:
                groups.setdefault(key, []).append(i)
        for indices in groups.values():
            members = [jobs[i] for i in indices]
            # A sweep only pays off when it covers >= 2 distinct results.
            if len({job.cache_key() for job in members}) < 2:
                continue
            group = cls(members)
            for i in indices:
                assignment[i] = group
        return assignment

    def compute(self, job, harness: Harness, store, salt: str) -> Any:
        """``job``'s result from the (memoized) group sweep, or None if
        the sweep cannot serve it (the caller then runs the job alone).
        """
        with self._sweep_lock:
            if self._values is None:
                self._values = self._sweep(job, harness, store, salt)
        return self._values.get(job.cache_key(salt))

    def _sweep(self, trigger, harness: Harness, store,
               salt: str) -> Dict[str, Any]:
        """Replay every not-yet-stored member in one pass; ``trigger``
        (whose store lookup just missed) is always included."""
        trigger_key = trigger.cache_key(salt)
        todo: List[Tuple[str, Any]] = []
        seen: Set[str] = set()
        for job in self.jobs:
            key = job.cache_key(salt)
            if key in seen:
                continue
            seen.add(key)
            if (key != trigger_key and store is not None
                    and store.path(job.mode, key).exists()):
                continue
            todo.append((key, job))
        trace = harness.trace(trigger.app, trigger.input_id)
        hints_by_policy: Dict[str, Any] = {}
        for _, job in todo:
            if job.needs_hints and job.policy not in hints_by_policy:
                hint_config = effective_btb_config(job.policy,
                                                   job.btb_config)
                hints_by_policy[job.policy] = harness.hints(
                    job.app, job.input_id, btb_config=hint_config)
        with trace_span("sweep/multi", app=trigger.app,
                        input_id=trigger.input_id, policies=len(todo)):
            stats = harness.run_misses_multi(
                trace, [job.policy for _, job in todo],
                btb_config=trigger.btb_config,
                hints_by_policy=hints_by_policy)
        get_registry().count("engine/multi_replay/sweeps")
        return {key: value for (key, _), value in zip(todo, stats)}


class Planner:
    """Turns a job list into execution shape: replay groups, worker
    batches, and shared-memory stream exports.

    Stateless — every method is a pure function of its arguments — so
    one planner instance can serve every engine and service run in a
    process.
    """

    def plan_groups(self, jobs: Sequence) -> List[Optional[GroupReplay]]:
        """Per-job :class:`GroupReplay` assignment (see
        :meth:`GroupReplay.plan`)."""
        return GroupReplay.plan(jobs)

    def plan_batches(self, jobs: Sequence, target: int) -> List[List[int]]:
        """Group job indices by (app, input, machine config) so each
        worker replays one shared access stream across its group's
        policies; large groups are split while workers would sit idle."""
        groups: Dict[Any, List[int]] = {}
        for i, job in enumerate(jobs):
            groups.setdefault(batch_key(job), []).append(i)
        batches = list(groups.values())
        while len(batches) < target:
            largest = max(batches, key=len)
            if len(largest) <= 1:
                break
            batches.remove(largest)
            mid = len(largest) // 2
            batches.extend([largest[:mid], largest[mid:]])
        return batches

    def plan_stream_exports(self, batches: Sequence[Sequence],
                            store) -> Dict[Any, Any]:
        """Export each batch's stream columns over shared memory.

        ``batches`` holds job sequences (one per worker batch).  Only
        traces already present in the store are exported — the parent
        shares what exists, it never computes a missing trace (that
        stays the worker's job).  Returns ``{stream key:
        ExportedStream}``; the caller owns the exports and must close
        (unlink) them after the run.
        """
        from repro.trace.shm import export_stream, shm_enabled
        from repro.trace.stream import access_stream_for
        if store is None or not shm_enabled():
            return {}
        exports: Dict[Any, Any] = {}
        for batch in batches:
            job = batch[0]
            key = stream_key(job)
            if key in exports:
                continue
            trace = store.get("trace", store.key(
                "trace", app=job.app, input_id=job.input_id,
                length=job.length))
            if trace is None:
                continue
            try:
                stream = access_stream_for(trace, job.btb_config)
                exports[key] = export_stream(stream, job.app,
                                             job.input_id, job.length)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                log.warning("stream export failed for %s/%d (%s: %s); "
                            "workers will rebuild from the store",
                            job.app, job.input_id,
                            type(exc).__name__, exc)
        if exports:
            get_registry().count("engine/shm/exported", len(exports))
            total = sum(e.handle.nbytes for e in exports.values())
            log.info("exported %d shared stream(s) (%.1f MiB) for "
                     "zero-copy worker attach", len(exports),
                     total / (1024 * 1024))
        return exports
