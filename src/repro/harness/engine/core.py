"""The :class:`ExperimentEngine` façade: open a run, pick an executor,
write the manifest.

The engine owns run-scoped policy (store location, worker count, retry
budget, manifest directory) and run lifecycle (run ids, journals,
resume, failure reporting); everything else is delegated — planning to
:class:`~repro.harness.engine.planner.Planner`, execution to an
:class:`~repro.harness.engine.executor.Executor`, per-run state to
:class:`~repro.harness.engine.context.RunContext`.  Library users who
need finer control can compose those pieces directly; the façade keeps
the one-call ``engine.run(jobs)`` surface everything else in the repo
(runner, reproduce, simulate, chaos, benchmarks, the service) builds on.
"""

from __future__ import annotations

import copy
import logging
import random
import time
from dataclasses import replace
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.harness.engine.context import RunContext
from repro.harness.engine.executor import (AsyncExecutor, Executor,
                                           ProcessPoolJobExecutor,
                                           SerialExecutor)
from repro.harness.engine.jobs import (JobResult, JobState, SimJob,
                                       _stats_delta, default_job_timeout,
                                       default_jobs, default_max_retries)
from repro.harness.engine.planner import Planner
from repro.harness.engine.store import (ArtifactStore, STORE_VERSION,
                                        default_cache_dir)
from repro.harness.reporting import CacheStats
from repro.telemetry.metrics import get_registry, snapshot_delta
from repro.telemetry.tracing import (TraceContext, child_context,
                                     new_span_id, span_record,
                                     tracing_enabled)

log = logging.getLogger(__name__)

__all__ = ["ExperimentEngine", "ExperimentError"]


class ExperimentError(RuntimeError):
    """A sweep finished with jobs that never succeeded.

    Raised *after* the run manifest (``status: failed``) is written;
    ``run_id`` names the run to pass back as ``run(jobs, resume=...)``.
    """

    def __init__(self, message: str, run_id: Optional[str] = None,
                 failures: Sequence[dict] = ()):
        super().__init__(message)
        self.run_id = run_id
        self.failures = list(failures)


class ExperimentEngine:
    """Fan :class:`SimJob` batches out over processes, backed by one
    shared :class:`ArtifactStore`.

    ``jobs == 1`` (or a single-job batch) runs serially in-process —
    bit-identical to driving a :class:`Harness` by hand — and reuses one
    harness per distinct machine configuration so in-memory caches
    amortize exactly as before.

    ``max_retries`` / ``job_timeout`` bound each job's attempts and
    per-attempt wall clock; a worker death re-shards its batch instead of
    failing the sweep; ``run(jobs, resume=run_id)`` continues an
    interrupted run, skipping jobs whose artifacts verify in the store
    (see ``docs/FAULTS.md``).

    Every :meth:`run` against a cache directory also writes a **run
    manifest** (``manifest.jsonl`` + ``summary.json``, plus an
    incremental ``events.jsonl`` job-state journal and a ``jobs.json``
    index) under ``<cache_dir>/runs/<run id>`` — per-job timings, cache
    provenance, merged telemetry, worker utilization, terminal status,
    and any exception (see :mod:`repro.telemetry.manifest` and
    ``docs/TELEMETRY.md``).  Disable with ``write_manifest=False`` or
    point it elsewhere with ``manifest_dir``.

    Library composition points (see ``docs/ENGINE.md``): ``store=``
    accepts a pre-built :class:`ArtifactStore` — in particular a tenant
    namespace from :meth:`ArtifactStore.namespace`, which scopes the
    run's artifacts *and* its manifests under that tenant's root;
    ``executor=`` swaps the execution strategy (any
    :class:`~repro.harness.engine.executor.Executor`); ``on_result=``
    streams terminal :class:`JobResult`\\ s as they land; and
    :meth:`run_async` runs the whole sweep cooperatively on an asyncio
    loop.
    """

    def __init__(self, cache_dir: Union[str, Path, None] = None,
                 jobs: Optional[int] = None, salt: str = STORE_VERSION,
                 manifest_dir: Union[str, Path, None] = None,
                 write_manifest: bool = True,
                 max_retries: Optional[int] = None,
                 job_timeout: Optional[float] = None,
                 backoff_base: float = 0.25, backoff_cap: float = 8.0,
                 store: Optional[ArtifactStore] = None,
                 executor: Optional[Executor] = None):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if store is not None:
            # A pre-built store (e.g. a tenant namespace) brings its own
            # root and salt; manifests default under that root too, so a
            # namespaced engine keeps everything inside its tenant.
            self.store: Optional[ArtifactStore] = store
            self.salt = store.salt
            self.cache_dir: Optional[Path] = store.root
        else:
            self.salt = salt
            self.cache_dir = (Path(cache_dir).expanduser()
                              if cache_dir else None)
            self.store = (ArtifactStore(self.cache_dir, salt=self.salt)
                          if self.cache_dir else None)
        self.stats = CacheStats()
        self.planner = Planner()
        self.max_retries = (default_max_retries() if max_retries is None
                            else max(0, int(max_retries)))
        if job_timeout is None:
            self.job_timeout = default_job_timeout()
        else:
            self.job_timeout = (float(job_timeout)
                                if float(job_timeout) > 0 else None)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        if manifest_dir is not None:
            self.manifest_dir: Optional[Path] = \
                Path(manifest_dir).expanduser()
        elif self.cache_dir is not None:
            self.manifest_dir = self.cache_dir / "runs"
        else:
            self.manifest_dir = None
        if not write_manifest:
            self.manifest_dir = None
        self._executor = executor
        #: The most recent run's manifest directory (None until a run
        #: completes with manifests enabled).
        self.last_manifest: Optional[Path] = None
        #: The most recent run's id (set at run start, so it is available
        #: even when the run fails — it is what ``resume=`` takes).
        self.last_run_id: Optional[str] = None
        #: The most recent run's merged telemetry snapshot.
        self.last_run_telemetry: Dict[str, Any] = {}
        self._used_workers = False

    @classmethod
    def from_env(cls, jobs: Optional[int] = None) -> "ExperimentEngine":
        """An engine at the default cache location and ``REPRO_JOBS``."""
        return cls(cache_dir=default_cache_dir(), jobs=jobs)

    # ------------------------------------------------------------------
    # Run lifecycle (shared by run / run_async)
    # ------------------------------------------------------------------
    def _begin_run(self, jobs: Sequence[SimJob], resume: Optional[str],
                   on_result: Optional[Callable[[JobResult], None]]
                   ) -> RunContext:
        from repro.telemetry.manifest import RunJournal, new_run_id
        jobs = list(jobs)
        registry = get_registry()
        run_id = new_run_id()
        self.last_run_id = run_id
        resumed_from = (self._resolve_resume(resume)
                        if resume is not None else None)
        run_trace = None
        if tracing_enabled():
            # The run's root span: when the caller (the service) already
            # stamped contexts onto the jobs, join that trace as a
            # sibling of those job spans; otherwise open a child of the
            # ambient context (or a fresh root) and stamp each job with
            # its own child — either way the whole tree stays linked
            # across the process-pool boundary.
            carried = next((job.trace_context for job in jobs
                            if job.trace_context is not None), None)
            if carried is not None:
                run_trace = TraceContext(carried.trace_id, new_span_id(),
                                         carried.parent_id)
            else:
                run_trace = child_context()
            jobs = [job if job.trace_context is not None
                    else replace(job,
                                 trace_context=run_trace.child_context())
                    for job in jobs]
        ctx = RunContext(jobs=jobs, run_id=run_id,
                         max_retries=self.max_retries, stats=self.stats,
                         rng=random.Random(run_id),
                         resumed_from=resumed_from, on_result=on_result,
                         trace=run_trace,
                         parent_before=(registry.snapshot()
                                        if registry.enabled else None))
        if self.manifest_dir is not None:
            try:
                ctx.journal = RunJournal(
                    self.manifest_dir / run_id,
                    jobs_index=[{"index": i, "app": job.app,
                                 "policy": job.policy, "mode": job.mode,
                                 "input_id": job.input_id,
                                 "key": job.cache_key(self.salt)}
                                for i, job in enumerate(jobs)])
            except OSError as exc:  # pragma: no cover - disk-full etc.
                log.warning("could not open run journal under %s: %s",
                            self.manifest_dir, exc)
        return ctx

    def _prepare(self, ctx: RunContext) -> List[int]:
        """Resume-skip verified jobs; return the pending index list."""
        if ctx.resumed_from is not None:
            self._skip_verified(ctx)
        return ctx.pending()

    def _finish_run(self, ctx: RunContext,
                    failure: Optional[dict]) -> List[JobResult]:
        """Close out a run (manifest + failure policy); returns results."""
        failed = ctx.failed()
        if failed:
            jobs = ctx.jobs
            details = "; ".join(
                f"{jobs[i].app}/{jobs[i].policy}[{i}]: "
                f"{ctx.results[i].error}" for i in failed[:5])
            if len(failed) > 5:
                details += f"; ... {len(failed) - 5} more"
            raise ExperimentError(
                f"{len(failed)} of {len(jobs)} job(s) did not complete "
                f"after {1 + self.max_retries} attempt(s): {details} "
                f"(continue with resume={ctx.run_id!r})",
                run_id=ctx.run_id,
                failures=[{"index": i, "app": jobs[i].app,
                           "policy": jobs[i].policy,
                           "state": ctx.states[i],
                           "error": ctx.results[i].error}
                          for i in failed])
        return ctx.results  # type: ignore[return-value]

    def _journal_run_span(self, ctx: RunContext,
                          failure: Optional[dict]) -> None:
        """Close the run's root span into the journal, giving an
        exported trace one parent for the whole sweep."""
        if ctx.trace is None or ctx.journal is None:
            return
        ctx.journal.span(span_record(
            "engine/run", ctx.trace, ctx.started_epoch,
            ctx.wall_seconds(),
            args={"run_id": ctx.run_id, "jobs": len(ctx.jobs)},
            error=failure is not None))

    def set_executor(self, executor: Optional[Executor]) -> None:
        """Swap the execution strategy for subsequent runs.

        The library seam for executors that must be wired back to their
        engine *after* it exists — the fabric coordinator builds the
        engine first, then installs a
        :class:`~repro.fabric.coordinator.FabricExecutor` pointing at
        both.  ``None`` restores the default jobs-count-based choice.
        """
        self._executor = executor

    def _select_executor(self, pending: Sequence[int]) -> Executor:
        if self._executor is not None:
            # An injected strategy declares whether attempts ran in
            # other processes (see Executor.uses_workers) — that is what
            # decides the manifest's telemetry-merge policy.
            self._used_workers = bool(getattr(self._executor,
                                              "uses_workers", False))
            return self._executor
        if self.jobs > 1 and len(pending) > 1:
            self._used_workers = True
            return ProcessPoolJobExecutor(self)
        return SerialExecutor(self)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[SimJob], resume: Optional[str] = None,
            on_result: Optional[Callable[[JobResult], None]] = None
            ) -> List[JobResult]:
        """Run every job, returning results in input order.

        ``resume`` continues an earlier run (a run id under the manifest
        directory, or ``"latest"``): jobs whose artifacts verify in the
        store are marked ``skipped`` and served from disk; everything
        else runs normally.  ``on_result`` receives every terminal
        :class:`JobResult` as it is recorded.  If any job still has not
        succeeded after ``1 + max_retries`` attempts, the run manifest
        is written with ``status: failed`` and :class:`ExperimentError`
        is raised — the completed jobs' artifacts stay in the store, so
        a resumed run only repeats the unfinished work.
        """
        ctx = self._begin_run(jobs, resume, on_result)
        failure: Optional[dict] = None
        self._used_workers = False
        try:
            pending = self._prepare(ctx)
            executor = self._select_executor(pending)
            executor.execute(ctx, pending)
        except BaseException as exc:
            failure = {"where": type(self).__name__,
                       "error": f"{type(exc).__name__}: {exc}"}
            raise
        finally:
            self._journal_run_span(ctx, failure)
            ctx.close_journal()
            self._write_manifest(ctx, failure)
        return self._finish_run(ctx, failure)

    async def run_async(self, jobs: Sequence[SimJob],
                        resume: Optional[str] = None,
                        on_result: Optional[Callable[[JobResult],
                                                     None]] = None,
                        concurrency: int = 1) -> List[JobResult]:
        """:meth:`run` as a coroutine, attempts on event-loop threads.

        Identical semantics (states, retries, journal, manifest, the
        :class:`ExperimentError` contract) with cooperative execution:
        the event loop keeps running while jobs compute, and terminal
        results stream through ``on_result`` as they land — this is the
        seam :mod:`repro.service` builds its coalescing sweeps on.
        ``concurrency`` bounds simultaneous attempts (see
        :class:`~repro.harness.engine.executor.AsyncExecutor` for why it
        defaults to 1).
        """
        ctx = self._begin_run(jobs, resume, on_result)
        failure: Optional[dict] = None
        self._used_workers = False
        try:
            pending = self._prepare(ctx)
            await AsyncExecutor(self, concurrency).execute(ctx, pending)
        except BaseException as exc:
            failure = {"where": type(self).__name__,
                       "error": f"{type(exc).__name__}: {exc}"}
            raise
        finally:
            self._journal_run_span(ctx, failure)
            ctx.close_journal()
            self._write_manifest(ctx, failure)
        return self._finish_run(ctx, failure)

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _resolve_resume(self, resume: str) -> str:
        """Validate a resume target and return its run id."""
        if self.store is None or self.manifest_dir is None:
            raise ValueError("resume requires a cache directory: the "
                             "store is what verifies completed jobs")
        if resume == "latest":
            candidates = [p for p in self.manifest_dir.iterdir()
                          if p.is_dir() and (
                              (p / "summary.json").exists()
                              or (p / "events.jsonl").exists())] \
                if self.manifest_dir.is_dir() else []
            if not candidates:
                raise ValueError(f"no previous run to resume under "
                                 f"{self.manifest_dir}")
            return max(candidates, key=lambda p: p.stat().st_mtime).name
        if not (self.manifest_dir / resume).is_dir():
            raise ValueError(f"no run {resume!r} under "
                             f"{self.manifest_dir}")
        return resume

    def _skip_verified(self, ctx: RunContext) -> None:
        """Mark every job whose artifact decodes and passes its integrity
        digest as ``skipped`` — the store read *is* the verification; a
        corrupt artifact is quarantined here and the job re-runs."""
        from repro.telemetry.manifest import read_jobs_index
        resumed_from = ctx.resumed_from
        previous = {row.get("key") for row in
                    read_jobs_index(self.manifest_dir / resumed_from)}
        current = {job.cache_key(self.salt) for job in ctx.jobs}
        if previous and previous != current:
            log.warning(
                "resume %s: job list differs from the original run "
                "(%d shared of %d current); unmatched jobs run fresh",
                resumed_from, len(previous & current), len(current))
        for i, job in enumerate(ctx.jobs):
            baseline = copy.deepcopy(self.store.stats)
            value = self.store.get(job.mode, job.cache_key(self.salt))
            if value is None:
                # The verification read may have quarantined a corrupt
                # artifact; keep that accounting even though the job now
                # re-runs instead of being skipped.
                self.stats.merge(_stats_delta(self.store.stats, baseline))
                continue
            stats = _stats_delta(self.store.stats, baseline)
            ctx.record_skip(i, JobResult(job=job, value=value, cached=True,
                                         seconds=0.0, stats=stats,
                                         state=JobState.SKIPPED, index=i))
        skipped = sum(1 for s in ctx.states if s == JobState.SKIPPED)
        log.info("resume %s: %d of %d job(s) verified in the store and "
                 "skipped", resumed_from, skipped, len(ctx.jobs))

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _status(self, ctx: RunContext, failure: Optional[dict]) -> str:
        if failure is not None:
            return "failed"
        if any(s not in (JobState.SUCCEEDED, JobState.SKIPPED)
               for s in ctx.states):
            return "failed"
        return "resumed" if ctx.resumed_from is not None else "completed"

    def _write_manifest(self, ctx: RunContext,
                        failure: Optional[dict]) -> None:
        from repro.telemetry.manifest import write_run_manifest
        from repro.telemetry.metrics import merge_snapshots
        registry = get_registry()
        wall = ctx.wall_seconds()
        results = [r for r in ctx.results if r is not None]
        parent_delta = (snapshot_delta(registry.snapshot(),
                                       ctx.parent_before)
                        if ctx.parent_before is not None else {})
        # Serial runs record jobs directly into the parent registry; the
        # parent delta already contains them, so merge job deltas only
        # for worker processes (whose registries died with them).
        if self._used_workers:
            snapshots = [r.telemetry for r in results if r.telemetry]
            snapshots.append(parent_delta)
            self.last_run_telemetry = merge_snapshots(snapshots)
        else:
            self.last_run_telemetry = parent_delta
        if self.manifest_dir is None:
            return
        run_cache = CacheStats()
        for result in results:
            run_cache.merge(result.stats)
        exceptions = [failure] if failure else []
        for result in results:
            if result.state in (JobState.FAILED, JobState.TIMED_OUT):
                exceptions.append(
                    {"where": (f"job {result.index} "
                               f"({result.job.app}/{result.job.policy})"),
                     "error": result.error or result.state})
        namespaces = None
        if self.store is not None:
            summaries = self.store.namespaces_summary()
            if summaries:
                namespaces = list(summaries.values())
        try:
            self.last_manifest = write_run_manifest(
                self.manifest_dir, results, wall_seconds=wall,
                workers=min(self.jobs, max(1, len(results))),
                run_id=ctx.run_id, cache_stats=run_cache,
                telemetry=self.last_run_telemetry,
                exceptions=exceptions,
                status=self._status(ctx, failure),
                resumed_from=ctx.resumed_from,
                job_states=ctx.job_states(), namespaces=namespaces)
            log.info("run manifest: %s", self.last_manifest)
        except OSError as exc:  # pragma: no cover - disk-full etc.
            log.warning("could not write run manifest under %s: %s",
                        self.manifest_dir, exc)
