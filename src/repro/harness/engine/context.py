"""Per-run bookkeeping: the :class:`RunContext` every executor drives.

A ``RunContext`` owns one run's mutable state — job states, attempt
counts, results, the incremental journal, the telemetry baseline, and
the retry policy — and exposes the two transitions executors perform:
:meth:`start_attempt` and :meth:`record_outcome`.  Keeping the state
machine here means every executor (serial, process-pool, async) shares
identical retry/journal/telemetry semantics, and the engine façade only
has to open a context, hand it to an executor, and write the manifest.

``on_result`` is the incremental-streaming seam: the service registers a
callback and receives every *terminal* :class:`JobResult` (succeeded,
skipped, failed, timed-out — not retried attempts) the moment it is
recorded, without waiting for the sweep to finish.
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.harness.engine.jobs import JobResult, JobState, SimJob
from repro.harness.reporting import CacheStats
from repro.telemetry.metrics import get_registry

log = logging.getLogger(__name__)

__all__ = ["RunContext"]


@dataclass
class RunContext:
    """Mutable bookkeeping for one engine run (any executor)."""

    jobs: List[SimJob]
    run_id: str
    max_retries: int = 0
    #: The engine-level stats object successful results merge into.
    stats: CacheStats = field(default_factory=CacheStats)
    states: List[str] = field(default_factory=list)
    attempts: List[int] = field(default_factory=list)
    results: List[Optional[JobResult]] = field(default_factory=list)
    rng: random.Random = field(default_factory=random.Random)
    journal: Optional[Any] = None
    resumed_from: Optional[str] = None
    #: Streaming callback: invoked with every terminal JobResult.
    on_result: Optional[Callable[[JobResult], None]] = None
    #: Telemetry snapshot taken when the run opened (None: disabled).
    parent_before: Optional[dict] = None
    #: Root trace context of this run (None: tracing disabled) — every
    #: job's pickled context is a child of it.
    trace: Optional[Any] = None
    started: float = field(default_factory=time.perf_counter)
    started_epoch: float = field(default_factory=time.time)
    #: Jobs already counted in ``engine/jobs/retried`` (once per job).
    retried: Set[int] = field(default_factory=set)
    #: Jobs already counted in ``engine/jobs/timed_out`` (once per job).
    timed_out: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.states:
            self.states = [JobState.PENDING] * len(self.jobs)
        if not self.attempts:
            self.attempts = [0] * len(self.jobs)
        if not self.results:
            self.results = [None] * len(self.jobs)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pending(self) -> List[int]:
        """Indices still needing an attempt (input order)."""
        return [i for i in range(len(self.jobs))
                if self.results[i] is None]

    def failed(self) -> List[int]:
        """Indices whose job never succeeded (terminal failure)."""
        return [i for i in range(len(self.jobs))
                if self.states[i] in (JobState.FAILED,
                                      JobState.TIMED_OUT)]

    def wall_seconds(self) -> float:
        return time.perf_counter() - self.started

    def job_states(self) -> Dict[str, int]:
        """State-name → count histogram over the sweep."""
        histogram: Dict[str, int] = {}
        for state in self.states:
            histogram[state] = histogram.get(state, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def event(self, index: int, state: str, **extra) -> None:
        if self.journal is not None:
            self.journal.event(index=index, state=state, **extra)

    def _emit(self, result: JobResult) -> None:
        if self.on_result is not None:
            self.on_result(result)

    def _journal_spans(self, result: JobResult) -> None:
        """Write the attempt's collected trace spans into the journal
        (next to the state rows — one ``events.jsonl``, two kinds)."""
        if self.journal is None or not result.trace_spans:
            return
        for record in result.trace_spans:
            self.journal.span(record)

    def start_attempt(self, i: int) -> None:
        self.attempts[i] += 1
        self.states[i] = JobState.RUNNING
        self.event(i, JobState.RUNNING, attempt=self.attempts[i] - 1)

    def record_skip(self, i: int, result: JobResult) -> None:
        """A resumed job whose artifact verified in the store."""
        self.results[i] = result
        self.states[i] = JobState.SKIPPED
        self.stats.merge(result.stats)
        get_registry().count("engine/jobs/skipped")
        self.event(i, JobState.SKIPPED)
        self._journal_spans(result)
        self._emit(result)

    def record_outcome(self, i: int, result: JobResult) -> bool:
        """Fold one attempt's outcome into the run; True ⇒ retry it."""
        registry = get_registry()
        job = self.jobs[i]
        result.index = i
        # Spans are journaled for *every* attempt, retried ones included:
        # a retry's trace shows the failed attempt next to the one that
        # replaced it.
        self._journal_spans(result)
        if result.state == JobState.SUCCEEDED:
            self.states[i] = JobState.SUCCEEDED
            self.results[i] = result
            self.stats.merge(result.stats)
            registry.count("engine/jobs/succeeded")
            self.event(i, JobState.SUCCEEDED, attempt=result.attempt,
                       cached=result.cached,
                       seconds=round(result.seconds, 6))
            self._emit(result)
            return False
        if (result.state == JobState.TIMED_OUT
                and i not in self.timed_out):
            self.timed_out.add(i)
            registry.count("engine/jobs/timed_out")
        if self.attempts[i] < 1 + self.max_retries:
            if i not in self.retried:
                self.retried.add(i)
                registry.count("engine/jobs/retried")
            self.states[i] = JobState.PENDING
            self.results[i] = None
            self.event(i, JobState.PENDING, attempt=result.attempt,
                       error=result.error, retry=True)
            log.warning("job %d (%s/%s) %s on attempt %d: %s — retrying",
                        i, job.app, job.policy, result.state,
                        result.attempt, result.error)
            return True
        self.states[i] = result.state
        self.results[i] = result
        registry.count("engine/jobs/failed")
        self.event(i, result.state, attempt=result.attempt,
                   error=result.error)
        log.error("job %d (%s/%s) %s after %d attempt(s): %s",
                  i, job.app, job.policy, result.state, self.attempts[i],
                  result.error)
        self._emit(result)
        return False

    def close_journal(self) -> None:
        if self.journal is not None:
            self.journal.close()
