"""Engine-as-a-library: the experiment engine as composable pieces.

What used to be one monolithic ``engine.py`` is now a package of
separately usable layers:

* :mod:`~repro.harness.engine.store` — content-addressed, multi-tenant
  :class:`ArtifactStore` (namespaces, quotas, single-flight fetch).
* :mod:`~repro.harness.engine.keys` — the shared job-identity helpers
  (replay-group, stream, and batch keys) every layer keys work by.
* :mod:`~repro.harness.engine.jobs` — :class:`SimJob` / \
  :class:`JobResult`, the :class:`JobState` machine, deadlines, backoff.
* :mod:`~repro.harness.engine.planner` — :class:`Planner` /
  :class:`GroupReplay`: how jobs share sweeps, batches, and streams.
* :mod:`~repro.harness.engine.worker` — process-pool entry points.
* :mod:`~repro.harness.engine.context` — per-run :class:`RunContext`
  state machine (journal, retries, result streaming).
* :mod:`~repro.harness.engine.executor` — serial / process-pool / async
  execution strategies behind one :class:`Executor` interface.
* :mod:`~repro.harness.engine.core` — the :class:`ExperimentEngine`
  façade tying it together (and :meth:`ExperimentEngine.run_async`,
  which :mod:`repro.service` builds on).

This module re-exports the full historical ``repro.harness.engine``
surface, so ``from repro.harness.engine import ExperimentEngine, ...``
keeps working unchanged.
"""

from __future__ import annotations

# Kept at package scope for test monkeypatching
# (``repro.harness.engine.time.sleep``) and backward compatibility.
import time  # noqa: F401

from repro.harness.engine.store import (ArtifactStore, QUARANTINE_DIR,
                                        QuotaExceededError, STORE_VERSION,
                                        TENANTS_DIR, artifact_key,
                                        default_cache_dir,
                                        validate_namespace)
from repro.harness.engine.keys import (batch_key, effective_btb_config,
                                       replay_group_key, stream_key)
from repro.harness.engine.jobs import (HINTED_POLICIES, JobResult,
                                       JobState, JobTimeoutError, SimJob,
                                       _backoff_sleep, _stats_delta,
                                       backoff_delay, default_job_timeout,
                                       default_jobs, default_max_retries,
                                       execute_job, job_deadline)
from repro.harness.engine.planner import (GroupReplay, Planner,
                                          multi_replay_enabled)
from repro.harness.engine.worker import (_execute_guarded, run_job,
                                         run_job_batch)
from repro.harness.engine.context import RunContext
from repro.harness.engine.executor import (AsyncExecutor, Executor,
                                           ProcessPoolJobExecutor,
                                           SerialExecutor)
from repro.harness.engine.core import ExperimentEngine, ExperimentError

__all__ = ["ArtifactStore", "AsyncExecutor", "Executor",
           "ExperimentEngine", "ExperimentError", "GroupReplay",
           "JobResult", "JobState", "JobTimeoutError", "Planner",
           "ProcessPoolJobExecutor", "QUARANTINE_DIR",
           "QuotaExceededError", "RunContext", "SerialExecutor",
           "SimJob", "STORE_VERSION", "TENANTS_DIR", "artifact_key",
           "backoff_delay", "batch_key", "default_cache_dir",
           "default_job_timeout", "default_jobs", "default_max_retries",
           "effective_btb_config", "execute_job", "job_deadline",
           "multi_replay_enabled", "replay_group_key", "run_job",
           "run_job_batch", "stream_key", "validate_namespace"]
