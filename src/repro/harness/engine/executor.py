"""Execution strategies: how a planned job list actually runs.

Every executor drives the same :class:`~repro.harness.engine.context.
RunContext` state machine — ``start_attempt`` → guarded execution →
``record_outcome`` → retry rounds with jittered backoff — so retry,
journal, and telemetry semantics are identical regardless of *where*
attempts run:

* :class:`SerialExecutor` — in the calling thread, one harness per
  machine config (bit-identical to driving a :class:`Harness` by hand).
* :class:`ProcessPoolJobExecutor` — batches over a process pool with
  shared-memory stream exports and worker-death re-sharding.
* :class:`AsyncExecutor` — attempts on ``loop.run_in_executor`` threads
  so an asyncio service can interleave engine runs with its event loop
  (cooperative: results stream back between attempts, backoff awaits
  instead of blocking).
"""

from __future__ import annotations

import asyncio
import logging
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Dict, List, Optional, Sequence

from repro.harness.engine.context import RunContext
from repro.harness.engine.jobs import (JobResult, JobState, SimJob,
                                       _backoff_sleep, _fast_mode,
                                       backoff_delay)
from repro.harness.engine.keys import stream_key
from repro.harness.engine.planner import Planner
from repro.harness.engine.worker import _execute_guarded, run_job_batch
from repro.harness.runner import Harness, HarnessConfig
from repro.telemetry.metrics import get_registry

log = logging.getLogger(__name__)

__all__ = ["AsyncExecutor", "Executor", "ProcessPoolJobExecutor",
           "SerialExecutor"]


class Executor:
    """Strategy interface: run ``pending`` job indices to termination.

    An executor is constructed around its engine (for the store, salt,
    timeout, and backoff policy) and invoked once per run with that
    run's :class:`RunContext`.  Implementations must loop until every
    pending job reaches a terminal state (retries included) — the
    engine's façade only opens/closes the run around this call.
    """

    #: True when attempts run in *other processes* whose telemetry
    #: registries die with them — the engine then merges each
    #: :class:`JobResult`'s telemetry delta into the run manifest
    #: instead of relying on the parent registry having seen the work.
    uses_workers: bool = False

    def __init__(self, engine) -> None:
        self.engine = engine
        self.planner: Planner = engine.planner

    def execute(self, ctx: RunContext, pending: Sequence[int]) -> None:
        raise NotImplementedError

    def _backoff(self, ctx: RunContext, round_no: int) -> float:
        return backoff_delay(round_no, base=self.engine.backoff_base,
                             cap=self.engine.backoff_cap, rng=ctx.rng)


class SerialExecutor(Executor):
    """Run attempts inline, reusing one harness per machine config."""

    def execute(self, ctx: RunContext, pending: Sequence[int]) -> None:
        engine = self.engine
        harnesses: Dict[HarnessConfig, Harness] = {}
        queue = list(pending)
        round_no = 0
        while queue:
            # Retry rounds replay each job alone: a group sweep memoized
            # before a fault could resurrect a value the retry is meant
            # to recompute through the store.
            groups = (self.planner.plan_groups(
                          [ctx.jobs[i] for i in queue])
                      if round_no == 0 else [None] * len(queue))
            retry: List[int] = []
            for qi, i in enumerate(queue):
                job = ctx.jobs[i]
                config = job.harness_config()
                harness = harnesses.get(config)
                if harness is None:
                    harness = Harness(config, store=engine.store)
                    harnesses[config] = harness
                if ctx.attempts[i] > 0:
                    # Retries recompute through the store rather than the
                    # harness's warm in-memory artifacts, so a quarantined
                    # (corrupt) intermediate is rebuilt, not resurrected.
                    harness.invalidate(job.app, job.input_id)
                ctx.start_attempt(i)
                result = _execute_guarded(
                    job, index=i, attempt=ctx.attempts[i] - 1,
                    store=engine.store, harness=harness, salt=engine.salt,
                    job_timeout=engine.job_timeout, in_worker=False,
                    group=groups[qi])
                if ctx.record_outcome(i, result):
                    retry.append(i)
            if retry:
                _backoff_sleep(self._backoff(ctx, round_no))
            queue = retry
            round_no += 1


class ProcessPoolJobExecutor(Executor):
    """Fan batches out over a process pool (the ``jobs > 1`` path)."""

    uses_workers = True

    def execute(self, ctx: RunContext, pending: Sequence[int]) -> None:
        from concurrent.futures.process import BrokenProcessPool
        engine = self.engine
        cache_root = str(engine.cache_dir) if engine.cache_dir else None
        queue = list(pending)
        exports: Dict[Any, Any] = {}
        try:
            self._run_rounds(ctx, queue, cache_root, exports,
                             BrokenProcessPool)
        finally:
            for exported in exports.values():
                exported.close()

    def _run_rounds(self, ctx: RunContext, queue: List[int],
                    cache_root: Optional[str], exports: Dict[Any, Any],
                    BrokenProcessPool) -> None:
        engine = self.engine
        round_no = 0
        while queue:
            if round_no == 0:
                local = self.planner.plan_batches(
                    [ctx.jobs[i] for i in queue],
                    min(engine.jobs, len(queue)))
                batches = [[queue[li] for li in b] for b in local]
                exports.update(self.planner.plan_stream_exports(
                    [[ctx.jobs[i] for i in batch] for batch in batches],
                    engine.store))
            else:
                # Retry rounds run every job in its own isolation batch
                # (on a fresh pool): one poison job can then take down at
                # most itself, never re-kill healthy neighbours.  They
                # also drop the shared-memory handles — a retried job
                # rebuilds everything through the store.
                batches = [[i] for i in queue]
            workers = min(engine.jobs, len(batches))
            retry: List[int] = []
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for batch in batches:
                    for i in batch:
                        ctx.start_attempt(i)
                    handles = None
                    if round_no == 0:
                        exported = exports.get(
                            stream_key(ctx.jobs[batch[0]]))
                        if exported is not None:
                            handles = [exported.handle]
                    future = pool.submit(
                        run_job_batch, [ctx.jobs[i] for i in batch],
                        cache_root, engine.salt, indices=list(batch),
                        attempts=[ctx.attempts[i] - 1 for i in batch],
                        job_timeout=engine.job_timeout,
                        stream_handles=handles)
                    futures[future] = batch
                for future in as_completed(futures):
                    batch = futures[future]
                    try:
                        batch_results = future.result()
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BaseException as exc:
                        # A worker died mid-batch (SIGKILL, OOM, ...);
                        # the pool is broken, so sibling batches land
                        # here too.  Degrade gracefully: every affected
                        # job is requeued for the re-shard round.
                        if isinstance(exc, BrokenProcessPool):
                            get_registry().count(
                                "engine/batches/worker_lost")
                        log.warning("worker lost batch %s (%s: %s); "
                                    "re-sharding", batch,
                                    type(exc).__name__, exc)
                        for i in batch:
                            ghost = JobResult(
                                job=ctx.jobs[i], value=None, cached=False,
                                seconds=0.0, state=JobState.FAILED,
                                attempt=ctx.attempts[i] - 1, index=i,
                                error=(f"worker died: "
                                       f"{type(exc).__name__}: {exc}"))
                            if ctx.record_outcome(i, ghost):
                                retry.append(i)
                        continue
                    for i, result in zip(batch, batch_results):
                        if ctx.record_outcome(i, result):
                            retry.append(i)
            if retry:
                _backoff_sleep(self._backoff(ctx, round_no))
            queue = retry
            round_no += 1


class AsyncExecutor(Executor):
    """Run attempts on event-loop worker threads (``run_in_executor``).

    Built for the asyncio service: the loop stays responsive while jobs
    compute, terminal results stream through ``ctx.on_result`` as they
    land, and retry backoff ``await``s instead of blocking.

    ``concurrency`` bounds simultaneous attempts and defaults to 1: the
    telemetry registry is process-global and not thread-safe, and one
    compute thread already saturates a core on the pure-Python
    simulators.  Group sweeps stay correct at any concurrency (the
    :class:`~repro.harness.engine.planner.GroupReplay` memo is locked),
    but counter deltas may interleave above 1 — raise it only for
    I/O-bound (fully cached) sweeps.
    """

    def __init__(self, engine, concurrency: int = 1) -> None:
        super().__init__(engine)
        self.concurrency = max(1, int(concurrency))

    async def execute(self, ctx: RunContext,
                      pending: Sequence[int]) -> None:
        engine = self.engine
        loop = asyncio.get_running_loop()
        semaphore = asyncio.Semaphore(self.concurrency)
        harnesses: Dict[HarnessConfig, Harness] = {}
        queue = list(pending)
        round_no = 0
        while queue:
            groups = (self.planner.plan_groups(
                          [ctx.jobs[i] for i in queue])
                      if round_no == 0 else [None] * len(queue))
            retry: List[int] = []

            async def attempt(qi: int, i: int) -> None:
                job = ctx.jobs[i]
                config = job.harness_config()
                harness = harnesses.get(config)
                if harness is None:
                    harness = Harness(config, store=engine.store)
                    harnesses[config] = harness
                if ctx.attempts[i] > 0:
                    harness.invalidate(job.app, job.input_id)
                async with semaphore:
                    ctx.start_attempt(i)
                    result = await loop.run_in_executor(
                        None, lambda: _execute_guarded(
                            job, index=i, attempt=ctx.attempts[i] - 1,
                            store=engine.store, harness=harness,
                            salt=engine.salt,
                            job_timeout=engine.job_timeout,
                            in_worker=False, group=groups[qi]))
                if ctx.record_outcome(i, result):
                    retry.append(i)

            await asyncio.gather(*(attempt(qi, i)
                                   for qi, i in enumerate(queue)))
            if retry:
                retry.sort()
                if not _fast_mode():
                    await asyncio.sleep(self._backoff(ctx, round_no))
            queue = retry
            round_no += 1
