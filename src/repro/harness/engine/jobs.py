"""Job identity and execution primitives: :class:`SimJob`,
:class:`JobResult`, the :class:`JobState` machine, attempt deadlines,
and retry backoff.

This layer knows how to describe and run *one* simulation; planning
(which jobs share a sweep) lives in
:mod:`repro.harness.engine.planner`, worker entry points in
:mod:`repro.harness.engine.worker`, and orchestration in
:mod:`repro.harness.engine.core`.
"""

from __future__ import annotations

import logging
import os
import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.btb.config import BTBConfig, DEFAULT_BTB_CONFIG
from repro.frontend.params import DEFAULT_FRONTEND_PARAMS, FrontendParams
from repro.harness.engine.keys import effective_btb_config
from repro.harness.engine.store import ArtifactStore, STORE_VERSION
from repro.harness.reporting import CacheStats
from repro.harness.runner import Harness, HarnessConfig
from repro.telemetry.tracing import TraceContext, trace_span

log = logging.getLogger(__name__)

__all__ = ["HINTED_POLICIES", "JobResult", "JobState", "JobTimeoutError",
           "SimJob", "backoff_delay", "default_job_timeout",
           "default_jobs", "default_max_retries", "execute_job",
           "job_deadline"]

#: Policies whose construction requires a profile-derived hint map.
HINTED_POLICIES = ("thermometer", "thermometer-7979", "thermometer-dueling")


def default_jobs() -> int:
    """Worker-count default: ``REPRO_JOBS`` or 1 (serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def default_max_retries() -> int:
    """Retry default: ``REPRO_MAX_RETRIES`` or 1."""
    try:
        return max(0, int(os.environ.get("REPRO_MAX_RETRIES", "1")))
    except ValueError:
        return 1


def default_job_timeout() -> Optional[float]:
    """Per-attempt wall-clock budget: ``REPRO_JOB_TIMEOUT`` seconds or
    None (unbounded)."""
    raw = os.environ.get("REPRO_JOB_TIMEOUT", "").strip()
    if not raw:
        return None
    try:
        seconds = float(raw)
    except ValueError:
        return None
    return seconds if seconds > 0 else None


# ----------------------------------------------------------------------
# Job states, timeouts, backoff
# ----------------------------------------------------------------------

class JobState:
    """The per-job lifecycle: ``pending → running → succeeded``, with
    ``failed`` / ``timed-out`` after exhausted retries (a retried attempt
    transitions back to ``pending``) and ``skipped`` for resumed jobs
    whose artifact already verifies in the store."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMED_OUT = "timed-out"
    SKIPPED = "skipped"

    #: States a finished run may leave a job in.
    TERMINAL = (SUCCEEDED, FAILED, TIMED_OUT, SKIPPED)
    ALL = (PENDING, RUNNING) + TERMINAL


class JobTimeoutError(RuntimeError):
    """An attempt exceeded its ``job_timeout`` wall-clock budget."""


@contextmanager
def job_deadline(seconds: Optional[float]):
    """Bound a block to ``seconds`` of wall clock via SIGALRM, raising
    :class:`JobTimeoutError` on expiry.

    Interval timers only work on the main thread of a POSIX process (true
    for pool workers and the serial engine path); elsewhere — including
    the async executor's worker threads — and for a None/zero budget,
    this is a no-op.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if (not hasattr(signal, "setitimer")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _expired(signum, frame):
        raise JobTimeoutError(
            f"job exceeded its {seconds:.3g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def backoff_delay(round_no: int, base: float = 0.25, cap: float = 8.0,
                  rng: Optional[random.Random] = None) -> float:
    """Exponential backoff with jitter: ``min(cap, base·2^round)`` scaled
    uniformly into its upper half so colliding retries decorrelate."""
    delay = min(cap, base * (2 ** max(0, round_no)))
    roll = (rng or random).random()
    return delay * (0.5 + 0.5 * roll)


def _backoff_sleep(seconds: float) -> None:
    """Sleep between retry rounds — skipped entirely under
    ``REPRO_TEST_FAST=1`` so test suites and CI chaos runs stay fast."""
    if _fast_mode():
        return
    if seconds > 0:
        time.sleep(seconds)


def _fast_mode() -> bool:
    fast = os.environ.get("REPRO_TEST_FAST", "").strip().lower()
    return fast in ("1", "true", "on", "yes")


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimJob:
    """One simulation: (workload, policy, machine) → result.

    ``mode`` selects the result type: ``"sim"`` runs the full frontend
    timing model (→ :class:`~repro.frontend.simulator.SimResult`);
    ``"misses"`` replays only the BTB (→
    :class:`~repro.btb.btb.BTBStats`)."""

    app: str
    policy: str = "lru"
    input_id: int = 0
    length: Optional[int] = None
    mode: str = "sim"
    btb_config: BTBConfig = DEFAULT_BTB_CONFIG
    params: FrontendParams = DEFAULT_FRONTEND_PARAMS
    thresholds: Tuple[float, ...] = (50.0, 80.0)
    default_category: int = 1
    warmup_fraction: float = 0.2
    #: Trace context this job's worker-side spans link under (assigned
    #: by the engine / service; ``compare=False`` keeps it out of
    #: equality, hashing, and the cache key — causality is provenance,
    #: not identity).
    trace_context: Optional[TraceContext] = field(default=None,
                                                  compare=False)

    def __post_init__(self) -> None:
        if self.mode not in ("sim", "misses"):
            raise ValueError(f"mode must be 'sim' or 'misses', "
                             f"got {self.mode!r}")

    @property
    def needs_hints(self) -> bool:
        return self.policy in HINTED_POLICIES

    def harness_config(self) -> HarnessConfig:
        return HarnessConfig(
            apps=(self.app,), length=self.length,
            btb_config=self.btb_config, params=self.params,
            thresholds=tuple(self.thresholds),
            default_category=self.default_category,
            warmup_fraction=self.warmup_fraction)

    def key_fields(self) -> Dict[str, Any]:
        """Everything that can change this job's result."""
        return dict(app=self.app, policy=self.policy,
                    input_id=self.input_id, length=self.length,
                    btb_config=self.btb_config, params=self.params,
                    thresholds=tuple(self.thresholds),
                    default_category=self.default_category,
                    warmup_fraction=self.warmup_fraction)

    def cache_key(self, salt: str = STORE_VERSION) -> str:
        from repro.harness.engine.store import artifact_key
        return artifact_key(self.mode, salt=salt, **self.key_fields())


@dataclass
class JobResult:
    """One finished attempt: its value plus cache and state provenance."""

    job: SimJob
    value: Any
    #: True when the *job-level* result came straight from the store.
    cached: bool
    seconds: float
    stats: CacheStats = field(default_factory=CacheStats)
    #: This job's telemetry-registry snapshot delta (counters, spans,
    #: histograms recorded while it ran) — merged by the parent into the
    #: run manifest.  See :mod:`repro.telemetry.metrics`.
    telemetry: Dict[str, Any] = field(default_factory=dict)
    #: Terminal :class:`JobState` of this attempt.
    state: str = JobState.SUCCEEDED
    #: Zero-based attempt number (0 = first try).
    attempt: int = 0
    #: Position in the sweep's job list (None outside an engine run).
    index: Optional[int] = None
    #: ``"ExcType: message"`` for failed / timed-out attempts.
    error: Optional[str] = None
    #: Trace-span records collected while this attempt ran (see
    #: :mod:`repro.telemetry.tracing`) — journaled by the parent into
    #: the run's ``events.jsonl``, exactly like the telemetry delta is
    #: merged into the manifest.
    trace_spans: list = field(default_factory=list)


def execute_job(job: SimJob, harness: Optional[Harness] = None,
                store: Optional[ArtifactStore] = None) -> Any:
    """Run one job through a :class:`Harness` (no job-level caching)."""
    h = harness if harness is not None else Harness(job.harness_config(),
                                                   store=store)
    with trace_span("harness/trace", app=job.app, input_id=job.input_id):
        trace = h.trace(job.app, job.input_id)
    hints = None
    if job.needs_hints:
        # Hints must be profiled against the geometry the policy runs
        # with; the iso-storage variant swaps in the 7979-entry config.
        hint_config = effective_btb_config(job.policy, job.btb_config)
        with trace_span("harness/hints", app=job.app, policy=job.policy):
            hints = h.hints(job.app, job.input_id, btb_config=hint_config)
    with trace_span("replay", app=job.app, policy=job.policy,
                    mode=job.mode):
        if job.mode == "misses":
            return h.run_misses(trace, job.policy,
                                btb_config=job.btb_config, hints=hints)
        return h.run_sim(trace, job.policy, btb_config=job.btb_config,
                         hints=hints, params=job.params)


def _stats_delta(current: CacheStats, baseline: CacheStats) -> CacheStats:
    """This job's contribution to a (possibly shared) store's stats."""
    delta = CacheStats(
        hits=current.hits - baseline.hits,
        misses=current.misses - baseline.misses,
        corrupt=current.corrupt - baseline.corrupt,
        digest_failures=(current.digest_failures
                         - baseline.digest_failures),
        quarantined=current.quarantined - baseline.quarantined,
        quota_rejected=(current.quota_rejected
                        - baseline.quota_rejected),
        bytes_read=current.bytes_read - baseline.bytes_read,
        bytes_written=current.bytes_written - baseline.bytes_written)
    for name, secs in current.stage_seconds.items():
        diff = secs - baseline.stage_seconds.get(name, 0.0)
        if diff > 0.0:
            delta.stage_seconds[name] = diff
    for name, count in current.stage_counts.items():
        diff = count - baseline.stage_counts.get(name, 0)
        if diff > 0:
            delta.stage_counts[name] = diff
    return delta
