"""Content-addressed, namespace-aware artifact store.

:class:`ArtifactStore` is an on-disk cache for expensive simulation
artifacts (synthetic traces, OPT profiles, hint maps, timing results).
Keys are SHA-256 hashes of the *full recipe* that produced an artifact
plus a version salt, so any change to the recipe — or to the artifact
format — naturally invalidates old entries.  Writes are atomic (temp
file + ``os.replace``) and every payload carries an integrity digest; a
corrupt file is moved into a ``.quarantine/`` directory for forensics
and the artifact is recomputed, never served stale.

Multi-tenancy (the service's isolation primitive): a root store hands
out **namespaces** via :meth:`ArtifactStore.namespace` — child stores
rooted at ``<root>/tenants/<name>`` with their own
:class:`~repro.harness.reporting.CacheStats` and an optional byte quota.
Two namespaces never share artifact files, so one tenant can neither
read nor evict another's cache; a namespace over its quota rejects new
writes with :class:`QuotaExceededError` instead of growing unbounded.

Concurrency: interleaved submitters (the asyncio service, threaded
tests) share one store object, so every stats/usage update happens under
an internal lock and :meth:`ArtifactStore.fetch` is **single-flight** —
concurrent fetches of the same key run the compute exactly once and the
other callers block until the artifact lands, then read it back.  File
I/O itself was already safe (atomic renames, digest-verified reads).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
import re
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.harness.reporting import CacheStats
from repro.telemetry.metrics import get_registry
from repro.telemetry.tracing import trace_span

log = logging.getLogger(__name__)

__all__ = ["ArtifactStore", "QuotaExceededError", "QUARANTINE_DIR",
           "STORE_VERSION", "TENANTS_DIR", "artifact_key",
           "default_cache_dir", "validate_namespace"]

#: Bump to invalidate every cached artifact (format or semantics change).
#: "2": BTBStats grew the ``target_mismatches`` counter, so version-1
#: pickles would deserialize without the field.
STORE_VERSION = "2"

_MAGIC = b"RPRO"
_DIGEST_BYTES = 32  # sha256

#: Corrupt artifacts are moved here (under the store root) instead of
#: being destroyed, so a digest failure stays diagnosable after the fact.
QUARANTINE_DIR = ".quarantine"

#: Namespace (tenant) roots live here, under the parent store's root.
TENANTS_DIR = "tenants"

#: Namespace names must be path-safe: no separators, no dot-dot.
_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_namespace(name: str) -> str:
    """``name`` back if it is a legal namespace (tenant) name.

    Raises :class:`ValueError` otherwise — the same check
    :meth:`ArtifactStore.namespace` enforces, exposed so front doors
    (the service's wire handler) can reject a bad tenant name up front
    instead of letting it explode mid-run.
    """
    if not _NAMESPACE_RE.match(name or ""):
        raise ValueError(f"invalid namespace name {name!r}: must "
                         f"match {_NAMESPACE_RE.pattern}")
    return name


def default_cache_dir() -> Path:
    """Store-location default: ``REPRO_CACHE_DIR`` or a per-user cache."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-thermometer"


# ----------------------------------------------------------------------
# Content-addressed keys
# ----------------------------------------------------------------------

def _canonical(value: Any) -> Any:
    """Reduce a value to JSON-stable primitives for hashing.

    Dataclasses are tagged with their type name so two configs with
    coincidentally equal fields still key differently.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: _canonical(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__type__": type(value).__name__, **fields}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def artifact_key(kind: str, salt: str = STORE_VERSION, **fields) -> str:
    """SHA-256 content key for an artifact of ``kind`` built from
    ``fields``.  Stable across processes and machines (no reliance on
    ``hash()`` or dict order)."""
    payload = json.dumps({"kind": kind, "salt": salt,
                          "fields": _canonical(fields)},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class QuotaExceededError(RuntimeError):
    """A namespace write would push its on-disk footprint past its quota.

    The store rejects the write (nothing is evicted and nothing partial
    is left behind); the artifact simply stays uncached, so callers that
    treat the store as a cache keep working — they just recompute.
    """

    def __init__(self, message: str, namespace: Optional[str] = None,
                 quota_bytes: Optional[int] = None,
                 usage_bytes: Optional[int] = None):
        super().__init__(message)
        self.namespace = namespace
        self.quota_bytes = quota_bytes
        self.usage_bytes = usage_bytes


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------

class ArtifactStore:
    """Content-addressed pickle store with atomic writes, integrity
    checks, and tenant namespaces.

    Layout: ``<root>/<kind>/<key[:2]>/<key>.pkl`` where each file is
    ``MAGIC + sha256(payload) + payload``.  A file that is missing, has a
    bad digest, or fails to unpickle is a cache miss; the corrupt bytes
    are quarantined under ``<root>/.quarantine/<kind>/`` and the caller
    recomputes the artifact — stale or mangled bytes are never returned.

    ``namespace``/``quota_bytes`` are normally set by
    :meth:`namespace`, which roots a child store at
    ``<root>/tenants/<name>`` — see the module docstring for the
    isolation and quota semantics.
    """

    def __init__(self, root: Union[str, Path], salt: str = STORE_VERSION,
                 *, namespace: Optional[str] = None,
                 quota_bytes: Optional[int] = None):
        self.root = Path(root).expanduser()
        self.salt = salt
        #: This store's tenant name (None for a root store).
        self.tenant = namespace
        self.quota_bytes = (int(quota_bytes)
                            if quota_bytes is not None else None)
        self.stats = CacheStats()
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        #: (kind, key) → lock serializing in-flight fetch computes.
        self._flights: Dict[Tuple[str, str], threading.Lock] = {}
        self._namespaces: Dict[str, "ArtifactStore"] = {}
        # Usage is tracked incrementally only when a quota needs it —
        # scanning the tree at construction would tax every pool worker.
        self._usage_bytes: Optional[int] = (
            self._scan_usage() if self.quota_bytes is not None else None)

    # -- namespaces ------------------------------------------------------
    def namespace(self, name: str,
                  quota_bytes: Optional[int] = None) -> "ArtifactStore":
        """The child store for tenant ``name`` (created on first use),
        rooted at ``<root>/tenants/<name>`` with its own stats and
        optional quota.  Repeated calls return the same object; a
        ``quota_bytes`` on a later call tightens/loosens the existing
        namespace's quota."""
        validate_namespace(name)
        with self._lock:
            child = self._namespaces.get(name)
            if child is None:
                child = ArtifactStore(self.root / TENANTS_DIR / name,
                                      salt=self.salt, namespace=name,
                                      quota_bytes=quota_bytes)
                self._namespaces[name] = child
            elif quota_bytes is not None:
                child.set_quota(quota_bytes)
            return child

    def namespaces(self) -> Dict[str, "ArtifactStore"]:
        """The live namespace children handed out so far (name → store)."""
        with self._lock:
            return dict(self._namespaces)

    def set_quota(self, quota_bytes: Optional[int]) -> None:
        """(Re)bound this store's on-disk footprint; None lifts it."""
        with self._lock:
            self.quota_bytes = (int(quota_bytes)
                                if quota_bytes is not None else None)
            if self.quota_bytes is not None and self._usage_bytes is None:
                self._usage_bytes = self._scan_usage()

    def _scan_usage(self) -> int:
        """On-disk footprint of this store's root (artifacts, manifests,
        quarantine — everything a tenant occupies)."""
        total = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                try:
                    total += os.path.getsize(os.path.join(dirpath,
                                                          filename))
                except OSError:
                    continue
        return total

    def usage_bytes(self) -> int:
        """Current on-disk footprint (tracked incrementally under a
        quota, scanned on demand otherwise)."""
        with self._lock:
            if self._usage_bytes is not None:
                return self._usage_bytes
        return self._scan_usage()

    def namespace_summary(self) -> Dict[str, Any]:
        """This store's own tenancy summary (stats + quota + usage) as
        plain JSON — one row of a manifest's/status endpoint's
        ``namespaces`` mapping."""
        with self._lock:
            return {
                "namespace": self.tenant,
                "quota_bytes": self.quota_bytes,
                "usage_bytes": self.usage_bytes(),
                "cache": self.stats.to_dict(),
            }

    def namespaces_summary(self) -> Dict[str, Dict[str, Any]]:
        """Tenancy summaries for manifests / the service status endpoint:
        one entry per child namespace for a parent store, or this
        store's own entry when it *is* a namespace."""
        if self.tenant is not None:
            return {self.tenant: self.namespace_summary()}
        return {name: child.namespace_summary()
                for name, child in sorted(self.namespaces().items())}

    # -- keys and paths --------------------------------------------------
    def key(self, kind: str, **fields) -> str:
        return artifact_key(kind, salt=self.salt, **fields)

    def path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def quarantine_path(self, kind: str, key: str) -> Path:
        return self.root / QUARANTINE_DIR / kind / f"{key}.pkl"

    # -- encode / decode -------------------------------------------------
    @staticmethod
    def _encode(obj: Any) -> bytes:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return _MAGIC + hashlib.sha256(payload).digest() + payload

    @staticmethod
    def _decode(blob: bytes) -> Tuple[Optional[Tuple[Any]], Optional[str]]:
        """``((obj,), None)`` on success, or ``(None, reason)`` where
        ``reason`` is ``"format"`` (bad magic / truncated header),
        ``"digest"`` (integrity-digest mismatch), or ``"unpickle"``."""
        header = len(_MAGIC) + _DIGEST_BYTES
        if len(blob) < header or not blob.startswith(_MAGIC):
            return None, "format"
        digest = blob[len(_MAGIC):header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != digest:
            return None, "digest"
        try:
            return (pickle.loads(payload),), None
        except Exception:
            return None, "unpickle"

    def _quarantine(self, kind: str, key: str, path: Path) -> None:
        """Move a corrupt file out of the addressable tree (atomic
        rename; falls back to unlink) so it can never satisfy a get."""
        target = self.quarantine_path(kind, key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            # Quarantine lives under the store root, so the move keeps
            # the tracked on-disk footprint unchanged.
            os.replace(path, target)
            with self._lock:
                self.stats.quarantined += 1
            get_registry().count("store/quarantined")
        except OSError:
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            try:
                path.unlink()
            except OSError:
                return
            with self._lock:
                if self._usage_bytes is not None:
                    self._usage_bytes -= size

    # -- store protocol --------------------------------------------------
    def get(self, kind: str, key: str) -> Optional[Any]:
        """The cached artifact, or None on a miss (absent or corrupt).

        Corruption — a bad integrity digest, mangled header, or
        unpicklable payload — is counted, logged as a warning, and the
        file quarantined (moved aside) so the caller recomputes the
        artifact instead of ever receiving stale bytes.
        """
        registry = get_registry()
        path = self.path(kind, key)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.stats.misses += 1
            registry.count("store/miss")
            return None
        decoded, reason = self._decode(blob)
        if decoded is None:
            with self._lock:
                self.stats.corrupt += 1
                if reason == "digest":
                    self.stats.digest_failures += 1
                self.stats.misses += 1
            registry.count("store/miss")
            registry.count("store/corrupt")
            self._quarantine(kind, key, path)
            log.warning("corrupt %s artifact %s (%s, %d bytes); "
                        "quarantined for recompute", kind, key[:12],
                        reason, len(blob))
            return None
        with self._lock:
            self.stats.hits += 1
            self.stats.bytes_read += len(blob)
        registry.count("store/hit")
        registry.count("store/bytes_read", len(blob))
        return decoded[0]

    def put(self, kind: str, key: str, obj: Any) -> None:
        """Atomically persist an artifact (write-to-temp + rename, so a
        concurrent reader never observes a partial file).

        Under a namespace quota, a *new* write that would push the
        footprint past the bound is rejected with
        :class:`QuotaExceededError` before any bytes touch disk
        (overwrites of an existing key are always allowed — the store
        is content-addressed, so they replace like with like).  The
        quota check and the usage update happen in one lock scope: the
        footprint change is reserved while the check holds, so
        interleaved puts cannot each pass the check and overshoot the
        quota together.
        """
        self._write_blob(kind, key, self._encode(obj))

    def read_blob(self, kind: str, key: str) -> Optional[bytes]:
        """The artifact's raw on-disk envelope (magic + digest +
        payload), or None when absent.

        No stats, no validation: this is the *serving* side of the
        fabric's peer fetch-by-digest — bytes ship verbatim and the
        consumer's :meth:`get` (after :meth:`adopt_blob`) is what
        verifies the integrity digest.
        """
        try:
            return self.path(kind, key).read_bytes()
        except OSError:
            return None

    def adopt_blob(self, kind: str, key: str, blob: bytes) -> None:
        """Adopt an already-encoded envelope byte-verbatim (the write
        side of peer fetch and of the coordinator's result mirroring).

        Adopting instead of re-pickling guarantees every copy of an
        artifact across fabric hosts is byte-identical.  The envelope is
        self-verifying, so nothing is validated here: a corrupt adopted
        blob is caught — and quarantined — by the next :meth:`get`,
        exactly like local bit rot.  Quota accounting matches
        :meth:`put`.
        """
        self._write_blob(kind, key, bytes(blob))

    def _write_blob(self, kind: str, key: str, blob: bytes) -> None:
        """Shared atomic-write path of :meth:`put` / :meth:`adopt_blob`
        (quota reservation, temp-file rename, usage/stats updates)."""
        path = self.path(kind, key)
        delta: Optional[int] = None
        with self._lock:
            if self._usage_bytes is not None:
                try:
                    prior = path.stat().st_size
                except OSError:
                    prior = 0
                delta = len(blob) - prior
                if (self.quota_bytes is not None and prior == 0
                        and self._usage_bytes + delta
                        > self.quota_bytes):
                    self.stats.quota_rejected += 1
                    get_registry().count("store/quota_rejected")
                    raise QuotaExceededError(
                        f"namespace {self.tenant or self.root.name!r} "
                        f"over quota: {self._usage_bytes} + {len(blob)} "
                        f"bytes exceeds {self.quota_bytes}",
                        namespace=self.tenant,
                        quota_bytes=self.quota_bytes,
                        usage_bytes=self._usage_bytes)
                self._usage_bytes += delta
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{key[:8]}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if delta is not None:
                with self._lock:
                    self._usage_bytes -= delta
            raise
        with self._lock:
            self.stats.bytes_written += len(blob)
        get_registry().count("store/bytes_written", len(blob))

    def _flight_lock(self, kind: str, key: str) -> threading.Lock:
        with self._lock:
            lock = self._flights.get((kind, key))
            if lock is None:
                lock = threading.Lock()
                self._flights[(kind, key)] = lock
            return lock

    def fetch(self, kind: str, key: str, compute: Callable[[], Any]) -> Any:
        """get-or-compute-and-put, timing the compute under stage
        ``kind``.

        Single-flight: when several threads fetch the same key
        concurrently, one runs ``compute`` and the rest block on it,
        then read the stored artifact back — the compute never runs
        twice for one key.  Distinct keys never block each other.

        Quota rejections never fail the fetch: the computed value is
        returned uncached (the rejection is counted in the stats) and a
        later fetch simply recomputes.
        """
        with trace_span("store/fetch", kind=kind) as span:
            cached = self.get(kind, key)
            if cached is not None:
                span.set(hit=True)
                return cached
            span.set(hit=False)
            flight = self._flight_lock(kind, key)
            with flight:
                # Another flight may have landed while we waited.
                cached = self.get(kind, key)
                if cached is not None:
                    span.set(hit=True, coalesced=True)
                    return cached
                start = time.perf_counter()
                value = compute()
                elapsed = time.perf_counter() - start
                with self._lock:
                    self.stats.add_stage(kind, elapsed)
                try:
                    self.put(kind, key, value)
                except QuotaExceededError:
                    pass
            with self._lock:
                self._flights.pop((kind, key), None)
            return value
