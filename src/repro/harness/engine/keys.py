"""Shared job-identity helpers: effective geometry and group keys.

Three places need to agree on "which jobs replay the same stream": the
:class:`~repro.harness.engine.planner.GroupReplay` planner (which jobs a
single-pass multi-policy sweep may cover), the engine's shared-memory
stream export (which (trace, geometry) columns a worker batch can
attach), and the service's request coalescer (which concurrent requests
fold into one sweep).  Before this module each computed its own variant
of the (app, input, length, effective-config) key inline; now they all
call the helpers below, and ``tests/test_group_keys.py`` pins the
semantics.

The subtlety the helpers encode: ``thermometer-7979`` names the
iso-storage variant of Fig. 11, which replays the 7979-entry geometry
*regardless of the job's nominal* :class:`~repro.btb.config.BTBConfig` —
so its replay group, its hint profile, and its stream columns all key on
the *effective* geometry, not the nominal one.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.btb.config import BTBConfig, THERMOMETER_7979_CONFIG

__all__ = ["batch_key", "effective_btb_config", "replay_group_key",
           "stream_key"]


def effective_btb_config(policy: str, btb_config: BTBConfig) -> BTBConfig:
    """The geometry ``policy`` actually replays (and profiles hints
    against): the nominal config, except ``thermometer-7979`` which
    always runs the iso-storage 7979-entry configuration."""
    if policy == "thermometer-7979":
        return THERMOMETER_7979_CONFIG
    return btb_config


def replay_group_key(job) -> Optional[Tuple]:
    """Identity of the shared-stream replay group a ``misses`` job
    belongs to, or None for jobs that cannot share a sweep (``sim``
    mode replays through the timing model, not the bare stream).

    Jobs with equal keys walk the same precomputed stream columns, so
    one :meth:`~repro.harness.runner.Harness.run_misses_multi` sweep can
    drive all of their policy states side by side.
    """
    if job.mode != "misses":
        return None
    effective = effective_btb_config(job.policy, job.btb_config)
    return (job.app, job.input_id, job.length, effective,
            job.harness_config())


def stream_key(job) -> Tuple[str, int, Optional[int], BTBConfig]:
    """Identity of the (trace, geometry) pair one shared-memory stream
    export covers (see :mod:`repro.trace.shm`).  Keyed on the *nominal*
    geometry: the export carries the columns the batch's harness would
    build for the job's own config."""
    return (job.app, job.input_id, job.length, job.btb_config)


def batch_key(job) -> Tuple:
    """Identity of the worker batch a job lands in: every job sharing it
    runs through one :class:`~repro.harness.runner.Harness` (one trace,
    one access stream, one profile) in the same worker process."""
    return (job.app, job.input_id, job.harness_config())
