"""Worker entry points: run one job, or a batch, with store + harness.

These functions are module-level so ``ProcessPoolExecutor`` can pickle
them by reference; they are also the *only* layer that touches the
fault-injection hooks (:mod:`repro.testing.faults`) — faults fire on
the real execution path, in whichever process runs the job.
"""

from __future__ import annotations

import copy
import logging
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.harness.engine.jobs import (JobResult, JobState,
                                       JobTimeoutError, SimJob,
                                       _stats_delta, execute_job,
                                       job_deadline)
from repro.harness.reporting import CacheStats
from repro.harness.engine.planner import GroupReplay
from repro.harness.engine.store import (ArtifactStore,
                                        QuotaExceededError,
                                        STORE_VERSION)
from repro.harness.runner import Harness, HarnessConfig
from repro.telemetry.metrics import get_registry, snapshot_delta
from repro.telemetry.profile_hooks import worker_profile
from repro.telemetry.tracing import collect_spans, trace_span
from repro.testing.faults import active_fault_plan, corrupt_file, inject

log = logging.getLogger(__name__)

__all__ = ["run_job", "run_job_batch"]


def run_job(job: SimJob, cache_root: Optional[str] = None,
            salt: str = STORE_VERSION,
            store: Optional[ArtifactStore] = None,
            harness: Optional[Harness] = None, *,
            index: Optional[int] = None, attempt: int = 0,
            in_worker: bool = False,
            group: Optional[GroupReplay] = None) -> JobResult:
    """Worker entry point (module-level so process pools can pickle it).

    Checks the store for the finished result first; on a miss, computes it
    through a harness whose intermediate artifacts (trace, profile, hints)
    are themselves store-backed.  When the job belongs to a
    :class:`GroupReplay` (and a harness is supplied), the miss is served
    from the group's single-pass multi-policy sweep instead of a solo
    replay — same value, one stream walk for the whole group.

    ``index``/``attempt`` identify this attempt within an engine run; when
    a :mod:`fault plan <repro.testing.faults>` is active they select which
    injected fault (if any) fires on this exact attempt, on the real
    execution path.
    """
    if store is None and cache_root is not None:
        store = ArtifactStore(cache_root, salt=salt)
    registry = get_registry()
    fault = None
    if index is not None:
        plan = active_fault_plan()
        if plan is not None:
            fault = plan.fault_for(index, attempt)
    # ``corrupt`` applies after the compute (below); ``partition`` is a
    # transport fault the fabric worker performs itself before calling
    # in here — with no fabric link to sever it is inert.
    if fault is not None and fault.kind not in ("corrupt", "partition"):
        registry.count("faults/injected")
        inject(fault, in_worker=in_worker)
    baseline = copy.deepcopy(store.stats) if store is not None else None
    telemetry_before = registry.snapshot() if registry.enabled else None
    start = time.perf_counter()
    cached = False
    # The job span's identity is the context pickled into the job, so a
    # process-pool worker's span links straight back to the request (or
    # engine run) that caused it.
    with trace_span("job", context=job.trace_context, app=job.app,
                    policy=job.policy, mode=job.mode, index=index,
                    attempt=attempt) as jspan:
        if store is not None:
            key = job.cache_key(salt=store.salt)
            if store.tenant is not None:
                jspan.set(tenant=store.tenant)
            jspan.set(key=key)
            with trace_span("store/get", kind=job.mode) as gspan:
                value = store.get(job.mode, key)
                gspan.set(hit=value is not None)
            cached = value is not None
            jspan.set(cached=cached)
            if value is None:
                with store.stats.stage(job.mode):
                    if group is not None and harness is not None:
                        value = group.compute(job, harness, store,
                                              store.salt)
                    if value is None:
                        value = execute_job(job, harness=harness,
                                            store=store)
                try:
                    with trace_span("store/put", kind=job.mode):
                        store.put(job.mode, key, value)
                except QuotaExceededError as exc:
                    # The store is a cache: an over-quota namespace keeps
                    # working, the successfully computed value is simply
                    # returned uncached (retrying could never succeed).
                    log.warning("result of %s/%s not cached: %s",
                                job.app, job.policy, exc)
            if fault is not None and fault.kind == "corrupt":
                registry.count("faults/injected")
                if corrupt_file(store.path(job.mode, key)):
                    log.warning("injected corruption into stored %s "
                                "artifact of job %d", job.mode, index)
        else:
            value = None
            if group is not None and harness is not None:
                value = group.compute(job, harness, None, salt)
            if value is None:
                value = execute_job(job, harness=harness)
            jspan.set(cached=False)
    elapsed = time.perf_counter() - start
    stats = (_stats_delta(store.stats, baseline)
             if store is not None else CacheStats())
    telemetry = (snapshot_delta(registry.snapshot(), telemetry_before)
                 if telemetry_before is not None else {})
    return JobResult(job=job, value=value, cached=cached,
                     seconds=elapsed, stats=stats, telemetry=telemetry,
                     attempt=attempt, index=index)


def _execute_guarded(job: SimJob, *, index: Optional[int], attempt: int,
                     store: Optional[ArtifactStore] = None,
                     harness: Optional[Harness] = None,
                     salt: str = STORE_VERSION,
                     job_timeout: Optional[float] = None,
                     in_worker: bool = False,
                     group: Optional[GroupReplay] = None) -> JobResult:
    """One attempt that *always* returns a :class:`JobResult`.

    Timeouts and exceptions are folded into the result's ``state`` /
    ``error`` instead of escaping, so a bad job can never take down its
    batch (the engine, not the worker, decides about retries).
    """
    start = time.perf_counter()
    # The guard owns the span-collection scope so a failed or timed-out
    # attempt still ships whatever spans it finished — the job span's
    # ``error`` flag is how the trace shows *where* the attempt died.
    with collect_spans() as spans:
        try:
            with job_deadline(job_timeout):
                result = run_job(job, store=store, harness=harness,
                                 salt=salt, index=index, attempt=attempt,
                                 in_worker=in_worker, group=group)
        except JobTimeoutError as exc:
            result = JobResult(job=job, value=None, cached=False,
                               seconds=time.perf_counter() - start,
                               state=JobState.TIMED_OUT, attempt=attempt,
                               index=index, error=str(exc))
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            result = JobResult(job=job, value=None, cached=False,
                               seconds=time.perf_counter() - start,
                               state=JobState.FAILED, attempt=attempt,
                               index=index,
                               error=f"{type(exc).__name__}: {exc}")
    result.trace_spans = spans
    return result


def _attach_shared_streams(stream_handles) -> List[Tuple[Any, Any]]:
    """Attach the parent's exported streams (worker side).

    Each attached stream is adopted into this process's stream memo, so
    :func:`~repro.trace.stream.access_stream_for` serves the zero-copy
    columns instead of rebuilding them.  Any attach failure (the parent
    unlinked early, platform refuses the mapping, ...) just drops that
    handle — the job recomputes through the store as before.
    """
    if not stream_handles:
        return []
    from repro.trace.shm import attach_stream
    from repro.trace.stream import adopt_stream
    registry = get_registry()
    adopted = []
    for handle in stream_handles:
        try:
            stream = attach_stream(handle)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            log.warning("could not attach shared stream %s for %s/%d "
                        "(%s: %s); falling back to the store",
                        handle.shm_name, handle.app, handle.input_id,
                        type(exc).__name__, exc)
            continue
        adopt_stream(stream)
        adopted.append((handle, stream))
        registry.count("engine/shm/attached")
    return adopted


def run_job_batch(jobs: Sequence[SimJob], cache_root: Optional[str] = None,
                  salt: str = STORE_VERSION,
                  indices: Optional[Sequence[int]] = None,
                  attempts: Optional[Sequence[int]] = None,
                  job_timeout: Optional[float] = None,
                  stream_handles: Optional[Sequence[Any]] = None
                  ) -> List[JobResult]:
    """Worker entry point for a *group* of jobs (module-level so process
    pools can pickle it).

    The engine groups parallel jobs by (app, input, machine config) so one
    worker runs a whole group through one :class:`Harness` — the trace,
    its shared :class:`~repro.trace.stream.AccessStream`, the OPT profile,
    and the hint maps are built once and replayed across every policy in
    the group instead of once per job.  Each job is individually guarded:
    a failed or timed-out job yields a failed :class:`JobResult` and the
    rest of the batch still runs.

    ``stream_handles`` (see :mod:`repro.trace.shm`) carries the parent's
    shared-memory exports of the group's trace and access-stream columns:
    attaching replaces this worker's store unpickle and column rebuild
    with zero-copy views.  Handles are hints — any attach failure falls
    back to the store path.

    ``REPRO_PROFILE=cprofile|tracemalloc`` wraps the batch in a deep
    profiler (see :mod:`repro.telemetry.profile_hooks`).
    """
    store = (ArtifactStore(cache_root, salt=salt)
             if cache_root is not None else None)
    index_list = (list(indices) if indices is not None
                  else [None] * len(jobs))
    attempt_list = (list(attempts) if attempts is not None
                    else [0] * len(jobs))
    adopted = _attach_shared_streams(stream_handles)
    harnesses: Dict[HarnessConfig, Harness] = {}
    results: List[JobResult] = []
    groups = GroupReplay.plan(jobs)
    with worker_profile(cache_root):
        for job, index, attempt, group in zip(jobs, index_list,
                                              attempt_list, groups):
            config = job.harness_config()
            harness = harnesses.get(config)
            if harness is None:
                harness = Harness(config, store=store)
                for handle, stream in adopted:
                    if handle.length == config.length:
                        harness.adopt_trace(handle.app, handle.input_id,
                                            stream.trace)
                harnesses[config] = harness
            results.append(_execute_guarded(
                job, index=index, attempt=attempt, store=store,
                harness=harness, salt=salt, job_timeout=job_timeout,
                in_worker=True, group=group))
    # Streams were attached before any per-job telemetry delta started;
    # piggy-back the count on the last result so it reaches the parent.
    if results and adopted:
        counters = results[-1].telemetry.setdefault("counters", {})
        counters["engine/shm/attached"] = (
            counters.get("engine/shm/attached", 0) + len(adopted))
    # The profile hook records its gauges after every per-job delta was
    # taken; piggy-back them on the last result so they reach the parent.
    registry = get_registry()
    if results and registry.enabled and registry.gauges:
        profile_gauges = {name: value
                          for name, value in registry.gauges.items()
                          if name.startswith("profile/")}
        if profile_gauges:
            results[-1].telemetry.setdefault("gauges", {}).update(
                profile_gauges)
    return results
