"""Result containers and plain-text/markdown table rendering."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["CacheStats", "ExperimentResult", "format_table"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table; first column left-aligned, rest right."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        parts = [row[0].ljust(widths[0])]
        parts.extend(cell.rjust(widths[i + 1])
                     for i, cell in enumerate(row[1:]))
        return "  ".join(parts)
    lines = [fmt(list(columns)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


@dataclass
class CacheStats:
    """Artifact-store accounting: hit/miss counters, I/O volume, and
    per-stage compute wall time (seconds spent *building* artifacts that
    were not in the cache)."""

    hits: int = 0
    misses: int = 0
    #: Artifacts whose on-disk bytes failed integrity checks (treated as
    #: misses and recomputed).
    corrupt: int = 0
    #: The subset of ``corrupt`` whose payload sha256 mismatched its
    #: stored digest (bit rot / torn write, vs. format or pickle errors).
    digest_failures: int = 0
    #: Corrupt files moved into the store's ``.quarantine/`` directory
    #: (kept for forensics instead of being served or silently deleted).
    quarantined: int = 0
    #: Writes rejected because they would push a namespace past its
    #: byte quota (the artifact stays uncached; callers recompute).
    quota_rejected: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: stage name (``trace``/``profile``/``hints``/``sim``/``misses``) →
    #: cumulative seconds spent computing artifacts of that stage.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: stage name → number of artifacts computed (cache misses filled).
    stage_counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str):
        """Time one artifact computation under stage ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_stage(name, time.perf_counter() - start)

    def add_stage(self, name: str, seconds: float) -> None:
        """Record one computed artifact of stage ``name`` taking
        ``seconds`` (the :meth:`stage` context manager's primitive; the
        store also calls it directly so the accounting can happen under
        its lock rather than around the compute)."""
        self.stage_seconds[name] = (self.stage_seconds.get(name, 0.0)
                                    + seconds)
        self.stage_counts[name] = self.stage_counts.get(name, 0) + 1

    def merge(self, other: "CacheStats") -> None:
        """Fold another stats object (e.g. from a worker process) in."""
        self.hits += other.hits
        self.misses += other.misses
        self.corrupt += other.corrupt
        self.digest_failures += other.digest_failures
        self.quarantined += other.quarantined
        self.quota_rejected += getattr(other, "quota_rejected", 0)
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        for name, secs in other.stage_seconds.items():
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + secs
        for name, count in other.stage_counts.items():
            self.stage_counts[name] = self.stage_counts.get(name, 0) + count

    def to_dict(self) -> Dict:
        """Plain-JSON rendering (the manifest/namespace-summary shape)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "digest_failures": self.digest_failures,
            "quarantined": self.quarantined,
            "quota_rejected": self.quota_rejected,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "stage_seconds": dict(self.stage_seconds),
            "stage_counts": dict(self.stage_counts),
        }

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def render(self) -> str:
        """Human-readable summary (one header line + a per-stage table)."""
        header = (f"artifact cache: {self.hits} hits / {self.misses} misses"
                  f" ({100.0 * self.hit_rate:.0f}% hit rate, "
                  f"{self.corrupt} corrupt / "
                  f"{self.digest_failures} digest failures / "
                  f"{self.quarantined} quarantined), "
                  f"{self.bytes_read / 1e6:.1f} MB read, "
                  f"{self.bytes_written / 1e6:.1f} MB written")
        if not self.stage_seconds:
            return header
        rows = [[name, self.stage_counts.get(name, 0), secs]
                for name, secs in sorted(self.stage_seconds.items())]
        table = format_table(["stage", "computed", "seconds"], rows)
        return header + "\n" + table


@dataclass
class ExperimentResult:
    """One reproduced figure/table: metadata + tabular data."""

    experiment: str                  # e.g. "fig11"
    title: str
    columns: List[str]
    rows: List[List] = field(default_factory=list)
    #: Free-form commentary (what to look for, paper reference values).
    notes: str = ""

    def render(self) -> str:
        header = f"== {self.experiment}: {self.title} =="
        body = format_table(self.columns, self.rows)
        parts = [header, body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def to_markdown(self) -> str:
        lines = [f"### {self.experiment}: {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_format_cell(v) for v in row)
                         + " |")
        if self.notes:
            lines.extend(["", self.notes])
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (header + rows) for external tools."""
        import csv
        import io
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        from pathlib import Path
        Path(path).write_text(self.to_csv())

    def column(self, name: str) -> List:
        """Values of one column across all rows."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; columns: {self.columns}")
        return [row[idx] for row in self.rows]

    def row(self, label) -> List:
        """The row whose first cell equals ``label``."""
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(f"no row labelled {label!r}")
