"""Result containers and plain-text/markdown table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["ExperimentResult", "format_table"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table; first column left-aligned, rest right."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        parts = [row[0].ljust(widths[0])]
        parts.extend(cell.rjust(widths[i + 1])
                     for i, cell in enumerate(row[1:]))
        return "  ".join(parts)
    lines = [fmt(list(columns)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One reproduced figure/table: metadata + tabular data."""

    experiment: str                  # e.g. "fig11"
    title: str
    columns: List[str]
    rows: List[List] = field(default_factory=list)
    #: Free-form commentary (what to look for, paper reference values).
    notes: str = ""

    def render(self) -> str:
        header = f"== {self.experiment}: {self.title} =="
        body = format_table(self.columns, self.rows)
        parts = [header, body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def to_markdown(self) -> str:
        lines = [f"### {self.experiment}: {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_format_cell(v) for v in row)
                         + " |")
        if self.notes:
            lines.extend(["", self.notes])
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (header + rows) for external tools."""
        import csv
        import io
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        from pathlib import Path
        Path(path).write_text(self.to_csv())

    def column(self, name: str) -> List:
        """Values of one column across all rows."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; columns: {self.columns}")
        return [row[idx] for row in self.rows]

    def row(self, label) -> List:
        """The row whose first cell equals ``label``."""
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(f"no row labelled {label!r}")
