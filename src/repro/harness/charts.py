"""Plain-text chart rendering for experiment results.

The paper's figures are bar charts and line plots; in an offline terminal
environment the closest faithful rendering is a labelled horizontal bar
chart (one row per label) or a sampled line as a column profile.  These
renderers work directly on :class:`~repro.harness.reporting.ExperimentResult`
tables so any figure can be eyeballed without matplotlib.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.harness.reporting import ExperimentResult

__all__ = ["bar_chart", "grouped_bar_chart", "result_chart", "sparkline"]

_BLOCKS = "▏▎▍▌▋▊▉█"
_SPARKS = "▁▂▃▄▅▆▇█"


def _bar(value: float, scale: float, width: int) -> str:
    """A horizontal bar of ``value`` at ``scale`` units per ``width``
    cells, with 1/8-cell resolution."""
    if scale <= 0:
        return ""
    eighths = int(round(abs(value) / scale * width * 8))
    full, rem = divmod(eighths, 8)
    full = min(full, width)
    bar = "█" * full
    if rem and full < width:
        bar += _BLOCKS[rem - 1]
    return bar


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, unit: str = "") -> str:
    """One horizontal bar per label, scaled to the largest magnitude."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(empty chart)"
    peak = max((abs(v) for v in values), default=0.0)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = _bar(value, peak or 1.0, width)
        sign = "-" if value < 0 else ""
        lines.append(f"{str(label):<{label_width}}  "
                     f"{sign}{bar:<{width}}  {value:.2f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(labels: Sequence[str],
                      series: Sequence[Sequence[float]],
                      series_names: Sequence[str],
                      width: int = 36, unit: str = "") -> str:
    """Several bars per label (one per series), like the paper's grouped
    figures."""
    if len(series) != len(series_names):
        raise ValueError("series and series_names must align")
    for values in series:
        if len(values) != len(labels):
            raise ValueError("every series needs one value per label")
    peak = max((abs(v) for values in series for v in values), default=0.0)
    label_width = max([len(str(label)) for label in labels]
                      + [len(name) for name in series_names])
    lines = []
    for i, label in enumerate(labels):
        lines.append(str(label))
        for name, values in zip(series_names, series):
            bar = _bar(values[i], peak or 1.0, width)
            lines.append(f"  {name:<{label_width}}  {bar:<{width}} "
                         f"{values[i]:.2f}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line profile of a numeric series (for curve figures)."""
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return _SPARKS[0] * len(values)
    return "".join(
        _SPARKS[min(7, int((v - lo) / span * 8))] for v in values)


def result_chart(result: ExperimentResult,
                 columns: Optional[Sequence[str]] = None,
                 width: int = 36, unit: str = "%",
                 skip_rows: Sequence[str] = ()) -> str:
    """Render an :class:`ExperimentResult` as a grouped bar chart.

    ``columns`` selects the numeric columns to plot (default: all but the
    first).  Rows whose label appears in ``skip_rows`` are omitted.
    """
    if columns is None:
        columns = result.columns[1:]
    rows = [row for row in result.rows if row[0] not in skip_rows]
    labels = [row[0] for row in rows]
    series: List[List[float]] = []
    for name in columns:
        idx = result.columns.index(name)
        series.append([float(row[idx]) for row in rows])
    header = f"{result.experiment}: {result.title}"
    chart = grouped_bar_chart(labels, series, list(columns), width=width,
                              unit=unit)
    return f"{header}\n{chart}"
