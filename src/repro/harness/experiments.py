"""One function per paper figure/table (see DESIGN.md §4 for the index).

Every function takes a :class:`~repro.harness.runner.Harness` (constructed
with defaults when omitted) and returns an
:class:`~repro.harness.reporting.ExperimentResult`.  Fig. 10 is the design
diagram and Table 1 is the configuration (tested in ``tests/test_frontend_params``);
everything else is here.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.bypass import bypass_ratio_by_class
from repro.analysis.correlation import branch_property_correlations
from repro.analysis.hit_to_taken import temperature_regions
from repro.analysis.reuse import (forward_set_reuse_distances,
                                  variance_summary)
from repro.btb.btb import BTB, btb_access_stream, run_btb
from repro.btb.config import BTBConfig
from repro.btb.observer import BTBObserver
from repro.btb.replacement.registry import make_policy
from repro.btb.replacement.thermometer import ThermometerPolicy
from repro.core.crossval import cross_validate_thresholds
from repro.core.hints import ThresholdQuantizer
from repro.core.pipeline import ThermometerPipeline
from repro.core.temperature import TemperatureProfile
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Harness, PRIOR_POLICIES
from repro.prefetch.confluence import ConfluencePrefetcher
from repro.prefetch.shotgun import ShotgunPrefetcher, shotgun_btb_config
from repro.prefetch.twig import TwigPrefetcher
from repro.trace.record import BranchTrace
from repro.workloads.suites import make_cbp5_suite, make_ipc1_suite

__all__ = ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
           "fig9", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
           "fig17", "fig18", "fig19", "fig20", "fig21", "ALL_EXPERIMENTS"]

#: The three applications the paper zooms in on for distribution figures.
CURVE_APPS = ("drupal", "kafka", "verilator")
#: The three applications used in the sensitivity studies.
SWEEP_APPS = ("cassandra", "drupal", "tomcat")


def _mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _append_average(result: ExperimentResult, label: str = "Avg",
                    skip_rows: Sequence[str] = ()) -> None:
    rows = [r for r in result.rows if r[0] not in skip_rows]
    avg = [label]
    for col in range(1, len(result.columns)):
        avg.append(_mean(r[col] for r in rows))
    result.rows.append(avg)


# ----------------------------------------------------------------------
# §2 characterization
# ----------------------------------------------------------------------

def fig1(h: Optional[Harness] = None) -> ExperimentResult:
    """Prior replacement policies vs. the optimal policy over LRU."""
    h = h or Harness()
    result = ExperimentResult(
        "fig1", "IPC speedup (%) of prior policies and OPT over LRU",
        ["app", "srrip", "ghrp", "hawkeye", "opt"],
        notes=("Paper: priors average 1.5% (SRRIP best) while OPT averages "
               "10.4% — a large gap for a profile-guided design to close."))
    for app in h.config.apps:
        trace = h.trace(app)
        base = h.lru_sim(app)
        row: List = [app]
        for name in (*PRIOR_POLICIES, "opt"):
            row.append(h.speedup_pct(h.run_sim(trace, name), base))
        result.rows.append(row)
    _append_average(result)
    return result


def fig2(h: Optional[Harness] = None) -> ExperimentResult:
    """Limit study: perfect BTB / direction predictor / I-cache."""
    h = h or Harness()
    result = ExperimentResult(
        "fig2", "Limit study: speedup (%) of perfect frontend structures",
        ["app", "perfect_btb", "perfect_bp", "perfect_icache"],
        notes=("Paper: perfect BTB 63.2% ≫ perfect I-cache 21.5% > perfect "
               "BP 11.3% on average; verilator is the extreme outlier."))
    for app in h.config.apps:
        trace = h.trace(app)
        base = h.lru_sim(app)
        perfect_btb = h.run_sim(trace, None, perfect_btb=True)
        perfect_bp = h.run_sim(trace, "lru", perfect_bp=True)
        perfect_ic = h.run_sim(trace, "lru", perfect_icache=True)
        result.rows.append([app,
                            h.speedup_pct(perfect_btb, base),
                            h.speedup_pct(perfect_bp, base),
                            h.speedup_pct(perfect_ic, base)])
    _append_average(result)
    return result


def fig3(h: Optional[Harness] = None) -> ExperimentResult:
    """L2 instruction MPKI per application."""
    h = h or Harness()
    result = ExperimentResult(
        "fig3", "L2 instruction MPKI (baseline machine)",
        ["app", "l2i_mpki"],
        notes=("Paper: verilator's L2iMPKI (42) is ≥300× every other "
               "application's, making it the data-center proxy workload."))
    for app in h.config.apps:
        result.rows.append([app, h.lru_sim(app).l2_instruction_mpki])
    return result


def fig4(h: Optional[Harness] = None) -> ExperimentResult:
    """BTB prefetching (Confluence/Shotgun) vs. optimal replacement."""
    h = h or Harness()
    result = ExperimentResult(
        "fig4", "Speedup (%) of BTB prefetchers and OPT over LRU",
        ["app", "confluence_lru", "shotgun_lru", "opt",
         "confluence_opt", "shotgun_opt", "perfect_btb"],
        notes=("Paper: Confluence ~1.4% mean, Shotgun slightly negative "
               "(metadata tax), both far from the 63.2% perfect-BTB limit; "
               "optimal replacement also helps the prefetchers."))
    shotgun_cfg = shotgun_btb_config(h.config.btb_config)
    for app in h.config.apps:
        trace = h.trace(app)
        base = h.lru_sim(app)
        row: List = [app]
        row.append(h.speedup_pct(
            h.run_sim(trace, "lru", prefetcher=ConfluencePrefetcher()), base))
        row.append(h.speedup_pct(
            h.run_sim(trace, "lru", btb_config=shotgun_cfg,
                      prefetcher=ShotgunPrefetcher()), base))
        row.append(h.speedup_pct(h.run_sim(trace, "opt"), base))
        row.append(h.speedup_pct(
            h.run_sim(trace, "opt", prefetcher=ConfluencePrefetcher()), base))
        row.append(h.speedup_pct(
            h.run_sim(trace, "opt", btb_config=shotgun_cfg,
                      prefetcher=ShotgunPrefetcher()), base))
        row.append(h.speedup_pct(
            h.run_sim(trace, None, perfect_btb=True), base))
        result.rows.append(row)
    _append_average(result)
    return result


def fig5(h: Optional[Harness] = None) -> ExperimentResult:
    """Transient vs. holistic reuse-distance variance."""
    h = h or Harness()
    result = ExperimentResult(
        "fig5", "Average reuse-distance variance (log2 scale distances)",
        ["app", "transient", "holistic", "ratio"],
        notes=("Paper: transient variance is more than 2× holistic variance "
               "on average — recency is a noisy signal."))
    for app in h.config.apps:
        summary = variance_summary(h.trace(app), h.config.btb_config)
        result.rows.append([app, summary.transient, summary.holistic,
                            summary.ratio])
    _append_average(result)
    return result


def _curve_rows(h: Harness, apps: Sequence[str],
                dynamic: bool) -> List[List]:
    sample_points = list(range(10, 101, 10))
    rows = []
    for app in apps:
        temps = h.temperatures(app)
        xs, ys = temps.dynamic_cdf() if dynamic else temps.sorted_curve()
        row: List = [app]
        for pct in sample_points:
            idx = min(len(ys) - 1, max(0, int(len(ys) * pct / 100) - 1))
            row.append(float(ys[idx]) if len(ys) else 0.0)
        rows.append(row)
    return rows


def fig6(h: Optional[Harness] = None,
         apps: Sequence[str] = CURVE_APPS) -> ExperimentResult:
    """Hit-to-taken distribution under OPT (sampled at unique-branch
    deciles)."""
    h = h or Harness()
    result = ExperimentResult(
        "fig6", "Hit-to-taken %% at x%% of unique branches (descending)",
        ["app"] + [f"{p}%" for p in range(10, 101, 10)],
        notes=("Paper: ~half of unique branches are hot (>80%), ~20% cold "
               "(<50%), with sharp cliffs between the regions."))
    result.rows = _curve_rows(h, apps, dynamic=False)
    for app in apps:
        xs, ys = h.temperatures(app).sorted_curve()
        hot_pct, warm_pct = temperature_regions(xs, ys,
                                                h.config.thresholds[::-1])
        result.notes += (f"\n{app}: hot region ends at {hot_pct:.0f}% of "
                         f"unique branches, warm at {warm_pct:.0f}%.")
    return result


def fig7(h: Optional[Harness] = None,
         apps: Sequence[str] = CURVE_APPS) -> ExperimentResult:
    """Cumulative dynamic execution vs. unique branches (hottest first)."""
    h = h or Harness()
    result = ExperimentResult(
        "fig7", "Dynamic-execution CDF (%%) at x%% of unique branches",
        ["app"] + [f"{p}%" for p in range(10, 101, 10)],
        notes=("Paper: hot branches (~half of unique) cover ~90% of all "
               "dynamic BTB accesses — retaining them is almost the whole "
               "game."))
    result.rows = _curve_rows(h, apps, dynamic=True)
    return result


def fig8(h: Optional[Harness] = None) -> ExperimentResult:
    """Correlation between branch properties and temperature."""
    h = h or Harness()
    result = ExperimentResult(
        "fig8", "|Pearson r| of branch properties vs. temperature",
        ["app", "branch_type", "target_distance", "bias",
         "avg_reuse_distance"],
        notes=("Paper: only the holistic (average) reuse distance correlates "
               "strongly with temperature; cheap static properties do not — "
               "hence the need for OPT simulation on a profile."))
    for app in h.config.apps:
        corr = branch_property_correlations(
            h.trace(app), h.config.btb_config, profile=h.profile(app))
        result.rows.append([app, corr.branch_type, corr.target_distance,
                            corr.bias, corr.avg_reuse_distance])
    _append_average(result)
    return result


def fig9(h: Optional[Harness] = None) -> ExperimentResult:
    """Bypass ratio by temperature class under OPT."""
    h = h or Harness()
    result = ExperimentResult(
        "fig9", "Bypass %% of all OPT misses, by temperature class",
        ["app", "cold", "warm", "hot"],
        notes=("Paper: OPT declines to insert cold branches in >50% of "
               "their misses; hot branches almost always get inserted."))
    for app in h.config.apps:
        ratios = bypass_ratio_by_class(
            h.trace(app), h.config.btb_config,
            thresholds=h.config.thresholds, profile=h.profile(app))
        result.rows.append([app] + [100.0 * r for r in ratios])
    _append_average(result)
    return result


# ----------------------------------------------------------------------
# §4 evaluation
# ----------------------------------------------------------------------

def fig11(h: Optional[Harness] = None) -> ExperimentResult:
    """Main result: Thermometer vs. priors vs. OPT (IPC speedup over LRU)."""
    h = h or Harness()
    result = ExperimentResult(
        "fig11", "IPC speedup (%) over LRU (with FDIP)",
        ["app", "srrip", "ghrp", "hawkeye", "thermometer",
         "thermometer_7979", "opt"],
        notes=("Paper: Thermometer 8.7% average (0.4–64.9%), 83.6% of OPT's "
               "10.4%; priors at most 1.5%.  The 7979-entry variant pays "
               "for its 2 hint bits per entry with capacity."))
    for app in h.config.apps:
        trace = h.trace(app)
        base = h.lru_sim(app)
        hints = h.hints(app)
        row: List = [app]
        for name in PRIOR_POLICIES:
            row.append(h.speedup_pct(h.run_sim(trace, name), base))
        row.append(h.speedup_pct(
            h.run_sim(trace, "thermometer", hints=hints), base))
        hints_7979 = h.hints(app, btb_config=BTBConfig(entries=7979, ways=4))
        row.append(h.speedup_pct(
            h.run_sim(trace, "thermometer-7979", hints=hints_7979), base))
        row.append(h.speedup_pct(h.run_sim(trace, "opt"), base))
        result.rows.append(row)
    _append_average(result, "Avg_no_verilator", skip_rows=("verilator",))
    _append_average(result, "Avg", skip_rows=("Avg_no_verilator",))
    return result


def fig12(h: Optional[Harness] = None) -> ExperimentResult:
    """BTB miss reduction over LRU."""
    h = h or Harness()
    result = ExperimentResult(
        "fig12", "BTB miss reduction (%) over LRU",
        ["app", "srrip", "ghrp", "hawkeye", "thermometer", "opt"],
        notes=("Paper: Thermometer removes 21.3% of all BTB misses vs 34% "
               "for OPT (62.6% of optimal); priors reach at most 6.7%."))
    for app in h.config.apps:
        trace = h.trace(app)
        base = h.run_misses(trace, "lru")
        hints = h.hints(app)
        row: List = [app]
        for name in PRIOR_POLICIES:
            row.append(h.miss_reduction_pct(h.run_misses(trace, name), base))
        row.append(h.miss_reduction_pct(
            h.run_misses(trace, "thermometer", hints=hints), base))
        row.append(h.miss_reduction_pct(h.run_misses(trace, "opt"), base))
        result.rows.append(row)
    _append_average(result)
    return result


def fig13(h: Optional[Harness] = None,
          inputs: Sequence[int] = (1, 2, 3)) -> ExperimentResult:
    """Generalization across inputs: training profile vs. same-input
    profile, as % of the optimal policy's speedup."""
    h = h or Harness()
    result = ExperimentResult(
        "fig13", "% of OPT speedup, profiles from training vs. same input",
        ["app_input", "srrip", "therm_training_profile",
         "therm_same_input_profile"],
        notes=("Paper: the training-input profile (input #0) retains most "
               "of Thermometer's benefit on unseen inputs because ~81% of "
               "branches keep their temperature class across inputs."))
    agreements: List[float] = []
    for app in h.config.apps:
        train_hints = h.hints(app, input_id=0)
        train_temps = h.temperatures(app, input_id=0)
        for input_id in inputs:
            trace = h.trace(app, input_id)
            base = h.lru_sim(app, input_id)
            opt = h.run_sim(trace, "opt")
            opt_speedup = h.speedup_pct(opt, base)
            if opt_speedup <= 0.3:
                # Percent-of-OPT is meaningless when OPT itself gains
                # nothing (python-style BTB-resident apps).
                continue
            srrip = h.speedup_pct(h.run_sim(trace, "srrip"), base)
            training = h.speedup_pct(
                h.run_sim(trace, "thermometer", hints=train_hints), base)
            same = h.speedup_pct(
                h.run_sim(trace, "thermometer",
                          hints=h.hints(app, input_id)), base)
            result.rows.append(
                [f"{app}#{input_id}",
                 100.0 * srrip / opt_speedup,
                 100.0 * training / opt_speedup,
                 100.0 * same / opt_speedup])
            agreements.append(train_temps.agreement_with(
                h.temperatures(app, input_id), h.config.thresholds))
    _append_average(result)
    result.notes += (f"\nMean cross-input temperature-class agreement: "
                     f"{100.0 * _mean(agreements):.1f}% (paper: 81%).")
    return result


def fig14(h: Optional[Harness] = None) -> ExperimentResult:
    """Offline OPT-simulation (profiling) cost."""
    h = h or Harness()
    result = ExperimentResult(
        "fig14", "Offline optimal-policy simulation time (seconds)",
        ["app", "seconds", "branch_records"],
        notes=("Paper: 4.18–167 s (23.53 s average) on full production "
               "traces — comparable to routine post-link-optimizer runs. "
               "Times here are for the synthetic traces' lengths."))
    for app in h.config.apps:
        profile = h.profile(app)
        result.rows.append([app, profile.elapsed_seconds,
                            profile.stats.accesses])
    _append_average(result)
    return result


def fig15(h: Optional[Harness] = None) -> ExperimentResult:
    """Replacement coverage: how often hints narrow the victim choice."""
    h = h or Harness()
    result = ExperimentResult(
        "fig15", "Thermometer replacement coverage (%)",
        ["app", "coverage"],
        notes=("Paper: 61.4% average — the remaining decisions see all "
               "candidates in one temperature class and fall back to LRU."))
    for app in h.config.apps:
        trace = h.trace(app)
        btb = h.build_btb("thermometer", trace, hints=h.hints(app))
        run_btb(trace, btb)
        result.rows.append([app, 100.0 * btb.policy.coverage])
    _append_average(result)
    return result


class _AccuracyProbe(BTBObserver):
    """Judges each eviction by the victim's reuse distance *from the
    eviction point* (Fig. 16).

    A replacement is accurate when at least ``ways`` distinct branches of
    the same set are accessed between the eviction and the victim's next
    access (or the victim never returns): keeping the victim could not
    have produced a hit in a ``ways``-associative set.
    """

    #: Scan budget per verdict; a gap this long with fewer than ``ways``
    #: distinct pcs is vanishingly rare and treated as accurate.
    SCAN_CAP = 1024

    def __init__(self, btb: BTB):
        self._ways = btb.config.ways
        self._events: Dict[int, List[int]] = {}
        self._pending: Dict[int, Dict[int, int]] = {}
        self.accurate = 0
        self.total = 0
        btb.add_observer(self)

    def on_evict(self, btb, set_idx: int, way: int, victim_pc: int,
                 incoming_pc: int, index: int) -> None:
        events = self._events.setdefault(set_idx, [])
        self._pending.setdefault(set_idx, {})[victim_pc] = len(events)

    def observe_access(self, set_idx: int, pc: int) -> None:
        """Call after every demand access (post ``btb.access``)."""
        events = self._events.setdefault(set_idx, [])
        pending = self._pending.get(set_idx)
        if pending is not None:
            start = pending.pop(pc, None)
            if start is not None:
                self.total += 1
                distinct: set = set()
                for other in events[start:start + self.SCAN_CAP]:
                    distinct.add(other)
                    if len(distinct) >= self._ways:
                        break
                scanned_all = len(events) - start <= self.SCAN_CAP
                if len(distinct) >= self._ways or not scanned_all:
                    self.accurate += 1
        events.append(pc)

    def finish(self) -> None:
        """Evictions whose victims never returned were free — accurate."""
        for pending in self._pending.values():
            self.accurate += len(pending)
            self.total += len(pending)

    @property
    def accuracy_pct(self) -> float:
        return 100.0 * self.accurate / self.total if self.total else 100.0


def fig16(h: Optional[Harness] = None) -> ExperimentResult:
    """Replacement accuracy: transient-only, holistic-only, combined."""
    h = h or Harness()
    result = ExperimentResult(
        "fig16", "Replacement accuracy (%): victim not reusable within "
                 "associativity after eviction",
        ["app", "transient", "holistic", "thermometer"],
        notes=("Paper: transient-only 46.1%, holistic-only 63.7%, "
               "Thermometer (both) 68.2%.  A decision is accurate when at "
               "least `ways` distinct branches hit the set between the "
               "eviction and the victim's return.  Known deviation: on the "
               "synthetic streams, within-class reuse is more cyclic than "
               "in production traces, so the holistic-only probe (whose "
               "static tie-break degenerates into pinning) scores highest "
               "and the combined policy lands between the two instead of "
               "above both."))
    config = h.config.btb_config
    for app in h.config.apps:
        trace = h.trace(app)
        pcs, targets = btb_access_stream(trace)
        hints = h.hints(app)
        policies = {
            "transient": make_policy("lru"),
            "holistic": ThermometerPolicy(
                hints, default_category=h.config.default_category,
                tiebreak="static"),
            "thermometer": ThermometerPolicy(
                hints, default_category=h.config.default_category),
        }
        row: List = [app]
        for policy in policies.values():
            btb = BTB(config, policy)
            probe = _AccuracyProbe(btb)
            for i in range(len(pcs)):
                pc = int(pcs[i])
                btb.access(pc, int(targets[i]), i)
                probe.observe_access(config.set_index(pc), pc)
            probe.finish()
            row.append(probe.accuracy_pct)
        result.rows.append(row)
    _append_average(result)
    return result


# ----------------------------------------------------------------------
# Trace-suite validation
# ----------------------------------------------------------------------

#: Compact threshold grid for per-trace two-fold cross-validation.
_FIG17_GRID = ((10.0, 40.0), (30.0, 60.0), (50.0, 80.0), (70.0, 95.0))


def fig17(h: Optional[Harness] = None, count: int = 40,
          length: int = 120_000) -> ExperimentResult:
    """CBP-5 suite: Thermometer's miss reduction over GHRP."""
    h = h or Harness()
    pipeline = ThermometerPipeline(
        config=h.config.btb_config,
        quantizer=ThresholdQuantizer(h.config.thresholds),
        default_category=h.config.default_category)
    original: List[float] = []
    twofold: List[float] = []
    high_mpki: List[float] = []
    wins = losses = ties = 0
    for trace in make_cbp5_suite(count, length=length):
        ghrp = run_btb(trace, BTB(h.config.btb_config, make_policy("ghrp")))
        therm = pipeline.run(trace)
        reduction = (100.0 * (ghrp.misses - therm.misses) / ghrp.misses
                     if ghrp.misses else 0.0)
        original.append(reduction)
        cv = cross_validate_thresholds(trace, h.config.btb_config,
                                       grid=_FIG17_GRID)
        cv_pipeline = ThermometerPipeline(
            config=h.config.btb_config,
            quantizer=ThresholdQuantizer(cv.thresholds),
            default_category=h.config.default_category)
        therm_cv = cv_pipeline.run(trace)
        twofold.append(100.0 * (ghrp.misses - therm_cv.misses) / ghrp.misses
                       if ghrp.misses else 0.0)
        # Filter on *non-compulsory* MPKI: first-touch misses dominate
        # short synthetic traces and say nothing about replacement.
        non_compulsory = max(0, ghrp.misses - len(trace.unique_taken_pcs()))
        mpki = 1000.0 * non_compulsory / max(1, trace.num_instructions)
        if mpki >= 1.0:
            high_mpki.append(reduction)
        if abs(ghrp.misses - therm.misses) <= 0.001 * ghrp.misses:
            ties += 1
        elif therm.misses < ghrp.misses:
            wins += 1
        else:
            losses += 1
    result = ExperimentResult(
        "fig17", f"CBP-5-like suite ({len(original)} traces): BTB miss "
                 "reduction (%) over GHRP",
        ["metric", "value"],
        notes=("Paper (663 traces): mean 2.25% over GHRP, 11.48% among "
               "traces with BTB MPKI ≥ 1; 306 wins / 59 losses / 298 "
               "compulsory-only ties, and two-fold threshold tuning "
               "removes most losses."))
    result.rows = [
        ["mean_reduction_pct", _mean(original)],
        ["mean_reduction_pct_twofold", _mean(twofold)],
        ["mean_reduction_pct_mpki_ge_1", _mean(high_mpki)],
        ["wins_vs_ghrp", wins],
        ["losses_vs_ghrp", losses],
        ["ties", ties],
    ]
    return result


def fig18(h: Optional[Harness] = None, count: int = 15,
          length: int = 120_000) -> ExperimentResult:
    """IPC-1 suite: IPC speedups of all policies over LRU."""
    h = h or Harness()
    result = ExperimentResult(
        "fig18", f"IPC-1-like suite: IPC speedup (%) over LRU",
        ["trace", "srrip", "ghrp", "hawkeye", "thermometer", "opt"],
        notes=("Paper (50 traces): Thermometer 1.07% mean (85.7% of OPT's "
               "1.25%), best prior (SRRIP) 0.45%; most traces fit the BTB "
               "so only a tail benefits."))
    pipeline = ThermometerPipeline(
        config=h.config.btb_config,
        quantizer=ThresholdQuantizer(h.config.thresholds),
        default_category=h.config.default_category)
    for trace in make_ipc1_suite(count, length=length):
        base = h.run_sim(trace, "lru")
        row: List = [trace.name]
        for name in PRIOR_POLICIES:
            row.append(h.speedup_pct(h.run_sim(trace, name), base))
        hints = pipeline.build_hints(trace)
        row.append(h.speedup_pct(
            h.run_sim(trace, "thermometer", hints=hints), base))
        row.append(h.speedup_pct(h.run_sim(trace, "opt"), base))
        result.rows.append(row)
    _append_average(result)
    return result


# ----------------------------------------------------------------------
# Sensitivity studies
# ----------------------------------------------------------------------

def _pct_of_opt(h: Harness, trace: BranchTrace, hints, btb_config,
                params=None) -> Optional[Tuple[float, float]]:
    """(thermometer, srrip) speedups as % of OPT's, for one config.

    Returns None when OPT itself gains under 0.3% — percent-of-nothing is
    noise (e.g. a 32K-entry BTB that already holds the whole footprint).
    """
    base = h.run_sim(trace, "lru", btb_config=btb_config, params=params)
    opt = h.speedup_pct(
        h.run_sim(trace, "opt", btb_config=btb_config, params=params), base)
    if opt <= 0.3:
        return None
    therm = h.speedup_pct(
        h.run_sim(trace, "thermometer", hints=hints, btb_config=btb_config,
                  params=params), base)
    srrip = h.speedup_pct(
        h.run_sim(trace, "srrip", btb_config=btb_config, params=params),
        base)
    return 100.0 * therm / opt, 100.0 * srrip / opt


def fig19(h: Optional[Harness] = None,
          apps: Sequence[str] = SWEEP_APPS,
          entry_sweep: Sequence[int] = (1024, 2048, 4096, 8192, 16384,
                                        32768),
          way_sweep: Sequence[int] = (4, 8, 16, 32, 64, 128)
          ) -> ExperimentResult:
    """Sensitivity to BTB size (entries) and associativity (ways)."""
    h = h or Harness()
    result = ExperimentResult(
        "fig19", "% of OPT speedup while sweeping BTB entries / ways",
        ["config", "app", "thermometer", "srrip"],
        notes=("Paper: Thermometer beats SRRIP at every size and "
               "associativity, capturing more of OPT as the BTB grows.  "
               "At severely undersized BTBs the profile disables bypass "
               "(bypass_recommended: the not-coldest population exceeds "
               "capacity, so bypassing forfeits short-range reuse).  "
               "Configurations where OPT itself gains <0.3% are omitted."))
    for app in apps:
        trace = h.trace(app)
        for entries in entry_sweep:
            cfg = BTBConfig(entries=entries, ways=h.config.btb_config.ways)
            hints = h.hints(app, btb_config=cfg)
            pair = _pct_of_opt(h, trace, hints, cfg)
            if pair is not None:
                result.rows.append([f"entries={entries}", app, *pair])
        for ways in way_sweep:
            cfg = BTBConfig(entries=h.config.btb_config.entries, ways=ways)
            hints = h.hints(app, btb_config=cfg)
            pair = _pct_of_opt(h, trace, hints, cfg)
            if pair is not None:
                result.rows.append([f"ways={ways}", app, *pair])
    return result


def _thresholds_for_categories(k: int) -> Tuple[float, ...]:
    """Threshold vector for ``k`` temperature categories.

    Keeps the paper's empirically best (50, 80) for 3 categories; other
    counts use evenly spaced percentage cuts.
    """
    if k == 3:
        return (50.0, 80.0)
    return tuple(round(100.0 * i / k, 1) for i in range(1, k))


def fig20(h: Optional[Harness] = None,
          apps: Sequence[str] = SWEEP_APPS,
          category_sweep: Sequence[int] = (2, 3, 4, 8, 16),
          ftq_sweep: Sequence[int] = (64, 128, 192, 256)
          ) -> ExperimentResult:
    """Sensitivity to hint categories and FTQ (run-ahead) size."""
    h = h or Harness()
    result = ExperimentResult(
        "fig20", "% of OPT speedup while sweeping hint categories / FTQ",
        ["config", "app", "thermometer", "srrip"],
        notes=("Paper: 3–4 categories (a 2-bit hint) are the sweet spot — "
               "fewer lose coverage, more fragment similar branches; the "
               "benefit is stable across FTQ run-ahead depths."))
    for app in apps:
        trace = h.trace(app)
        temps = h.temperatures(app)
        for k in category_sweep:
            quantizer = ThresholdQuantizer(_thresholds_for_categories(k))
            hints = quantizer.quantize(
                temps, default_category=min(1, k - 1))
            pair = _pct_of_opt(h, trace, hints, h.config.btb_config)
            if pair is not None:
                result.rows.append([f"categories={k}", app, *pair])
        hints = h.hints(app)
        for ftq in ftq_sweep:
            params = h.config.params.with_ftq_entries(
                ftq // h.config.params.ftq_block_instructions)
            pair = _pct_of_opt(h, trace, hints, h.config.btb_config,
                               params=params)
            if pair is not None:
                result.rows.append([f"ftq={ftq}", app, *pair])
    return result


def fig21(h: Optional[Harness] = None) -> ExperimentResult:
    """Thermometer under state-of-the-art BTB prefetching (Twig)."""
    h = h or Harness()
    result = ExperimentResult(
        "fig21", "IPC speedup (%) over LRU+Twig baseline",
        ["app", "srrip", "thermometer", "opt"],
        notes=("Paper: Thermometer+Twig gains 30.9% over LRU+Twig (95.9% "
               "of OPT's 32.2%); prefetch fills make replacement quality "
               "matter even more."))
    for app in h.config.apps:
        trace = h.trace(app)
        twig = TwigPrefetcher.train(trace, h.config.btb_config)
        base = h.run_sim(trace, "lru", prefetcher=twig)
        hints = h.hints(app)
        row: List = [app]
        row.append(h.speedup_pct(
            h.run_sim(trace, "srrip", prefetcher=twig), base))
        row.append(h.speedup_pct(
            h.run_sim(trace, "thermometer", hints=hints, prefetcher=twig),
            base))
        row.append(h.speedup_pct(
            h.run_sim(trace, "opt", prefetcher=twig), base))
        result.rows.append(row)
    _append_average(result, "Avg_no_verilator", skip_rows=("verilator",))
    _append_average(result, "Avg", skip_rows=("Avg_no_verilator",))
    return result


#: Every experiment, in paper order, for the reproduce driver.
ALL_EXPERIMENTS = {
    "fig1": fig1, "fig2": fig2, "fig3": fig3, "fig4": fig4, "fig5": fig5,
    "fig6": fig6, "fig7": fig7, "fig8": fig8, "fig9": fig9,
    "fig11": fig11, "fig12": fig12, "fig13": fig13, "fig14": fig14,
    "fig15": fig15, "fig16": fig16, "fig17": fig17, "fig18": fig18,
    "fig19": fig19, "fig20": fig20, "fig21": fig21,
}
