"""Two-level BTB hierarchy (related-work §5: multi-level organizations).

Commercial frontends increasingly split the BTB into a small, fast L1 and a
large, slower L2 (e.g. the paper's references to BTB-X and two-level
designs).  This model lets the replacement experiments ask a natural
extension question: where do temperature hints help most — the contended
small level, the capacity level, or both?

Semantics: a demand access probes L1; on an L1 miss the L2 is probed, and
an L2 hit promotes the entry into L1 (charging ``l2_latency_penalty``
rather than a full miss).  Entries evicted from L1 are written back to L2
(victim-buffer style), so the pair behaves exclusively-ish like real
two-level BTBs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.btb.btb import BTB
from repro.btb.config import BTBConfig
from repro.btb.observer import BTBObserver
from repro.btb.replacement.base import ReplacementPolicy

__all__ = ["TwoLevelBTB", "TwoLevelStats"]


class _L1VictimWriter(BTBObserver):
    """Installs L1 evictions into L2 (victim-buffer write-back)."""

    def __init__(self, owner: "TwoLevelBTB"):
        self.owner = owner

    def on_evict(self, btb, set_idx, way, victim_pc, incoming_pc,
                 index) -> None:
        owner = self.owner
        target = owner._victim_target.get(victim_pc, 0)
        owner.l2.insert(victim_pc, target, index)


@dataclass
class TwoLevelStats:
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    misses: int = 0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.accesses if self.accesses else 0.0

    @property
    def overall_hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return (self.l1_hits + self.l2_hits) / self.accesses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TwoLevelBTB:
    """A small L1 BTB backed by a large L2 BTB."""

    def __init__(self, l1: BTB, l2: BTB):
        if l1.config.capacity >= l2.config.capacity:
            raise ValueError(
                "expected a small L1 in front of a larger L2 "
                f"(got {l1.config.capacity} >= {l2.config.capacity})")
        self.l1 = l1
        self.l2 = l2
        self.stats = TwoLevelStats()
        # Victim path: evictions from L1 are installed into L2.
        self._victim_target: dict = {}
        self.l1.add_observer(_L1VictimWriter(self))

    @classmethod
    def build(cls, l1_entries: int = 1024, l2_entries: int = 8192,
              ways: int = 4,
              l1_policy: Optional[ReplacementPolicy] = None,
              l2_policy: Optional[ReplacementPolicy] = None
              ) -> "TwoLevelBTB":
        from repro.btb.replacement.lru import LRUPolicy
        l1 = BTB(BTBConfig(entries=l1_entries, ways=ways),
                 l1_policy or LRUPolicy())
        l2 = BTB(BTBConfig(entries=l2_entries, ways=ways),
                 l2_policy or LRUPolicy())
        return cls(l1, l2)

    # ------------------------------------------------------------------
    def access(self, pc: int, target: int = 0, index: int = 0) -> str:
        """One demand access; returns ``'l1'``, ``'l2'``, or ``'miss'``."""
        self.stats.accesses += 1
        self._victim_target[pc] = target
        if self.l1.access(pc, target, index):
            self.stats.l1_hits += 1
            return "l1"
        # The L1 access above already inserted pc into L1 on its miss path;
        # now classify whether the L2 had it (promotion) or not (true miss).
        if self.l2.access(pc, target, index):
            self.stats.l2_hits += 1
            return "l2"
        self.stats.misses += 1
        return "miss"

    def contains(self, pc: int) -> bool:
        return self.l1.contains(pc) or self.l2.contains(pc)

    def __repr__(self) -> str:
        return (f"TwoLevelBTB(l1={self.l1.config.entries}, "
                f"l2={self.l2.config.entries}, "
                f"hit_rate={self.stats.overall_hit_rate:.3f})")
