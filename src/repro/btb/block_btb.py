"""Block-based BTB organization (Yeh & Patt style, related work §5).

Instead of one entry per branch, a block-oriented BTB keeps one entry per
*fetch block*, holding the branches discovered inside it (bounded by
``branches_per_entry``).  Branches in the same block share one tag, so the
organization trades per-branch slot capacity against tag amortization —
attractive exactly when branch density per block is high.

Replacement operates at block granularity through the ordinary
:class:`~repro.btb.replacement.base.ReplacementPolicy` interface (the
"pc" a policy sees is the block's base address, so Thermometer-style hints
can be applied per block by hinting block addresses).  Within an entry,
branch slots recycle FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.btb.btb import BTBStats, replay_stream
from repro.btb.config import BTBConfig
from repro.btb.observer import BTBObserver
from repro.btb.replacement.base import BYPASS, ReplacementPolicy
from repro.trace.record import BranchTrace
from repro.trace.stream import access_stream_for

__all__ = ["BlockBTB", "BlockBTBStats", "run_block_btb"]

_INVALID = -1


@dataclass
class BlockBTBStats(BTBStats):
    """Block-BTB counters: BTBStats plus block-level events."""

    #: Misses where the block entry was present but the branch slot wasn't
    #: (a *branch* miss inside a resident block).
    branch_misses: int = 0
    #: Branch slots recycled inside resident blocks.
    slot_evictions: int = 0


class BlockBTB:
    """A set-associative BTB of fetch-block entries."""

    def __init__(self, config: BTBConfig,
                 policy: Optional[ReplacementPolicy] = None,
                 block_bytes: int = 32, branches_per_entry: int = 2):
        from repro.btb.replacement.lru import LRUPolicy
        if block_bytes < 4 or block_bytes & (block_bytes - 1):
            raise ValueError("block_bytes must be a power of two >= 4")
        if branches_per_entry < 1:
            raise ValueError("branches_per_entry must be >= 1")
        self.config = config
        self.block_bytes = block_bytes
        self.branches_per_entry = branches_per_entry
        self.policy = policy if policy is not None else LRUPolicy()
        self.policy.bind(config.num_sets, config.ways)
        self.stats = BlockBTBStats()
        nsets, ways = config.num_sets, config.ways
        self._blocks: List[List[int]] = [[_INVALID] * ways
                                         for _ in range(nsets)]
        # Per (set, way): insertion-ordered {branch pc: target}.
        self._branches: List[List[Dict[int, int]]] = \
            [[{} for _ in range(ways)] for _ in range(nsets)]
        self._observers: List[BTBObserver] = []

    # ------------------------------------------------------------------
    def add_observer(self, observer: BTBObserver) -> BTBObserver:
        """Attach a structured event observer; returns it for chaining.

        Events are reported at block granularity: the ``pc`` field of
        hit/fill/evict events carries the fetch-block base address.
        """
        self._observers.append(observer)
        return observer

    def remove_observer(self, observer: BTBObserver) -> None:
        self._observers.remove(observer)

    # ------------------------------------------------------------------
    def block_of(self, pc: int) -> int:
        """The fetch-block base address containing ``pc``."""
        return pc & ~(self.block_bytes - 1)

    def _set_index(self, block: int) -> int:
        return (block // self.block_bytes) % self.config.num_sets

    # ------------------------------------------------------------------
    def lookup(self, pc: int) -> Optional[int]:
        block = self.block_of(pc)
        s = self._set_index(block)
        for way in range(self.config.ways):
            if self._blocks[s][way] == block:
                return self._branches[s][way].get(pc)
        return None

    def contains(self, pc: int) -> bool:
        return self.lookup(pc) is not None

    def access(self, pc: int, target: int = 0, index: int = 0) -> bool:
        """Demand access by a taken branch at ``pc``; True on hit."""
        block = self.block_of(pc)
        s = self._set_index(block)
        blocks = self._blocks[s]
        self.stats.accesses += 1
        for way in range(self.config.ways):
            if blocks[way] == block:
                branches = self._branches[s][way]
                if pc in branches:
                    self.stats.hits += 1
                    if branches[pc] != target:
                        self.stats.target_mismatches += 1
                    branches[pc] = target
                    self.policy.on_hit(s, way, block, index)
                    if self._observers:
                        for observer in self._observers:
                            observer.on_hit(self, s, way, block, target,
                                            index)
                    return True
                # Block resident, branch slot missing.
                self.stats.misses += 1
                self.stats.branch_misses += 1
                if len(branches) >= self.branches_per_entry:
                    oldest = next(iter(branches))
                    del branches[oldest]
                    self.stats.slot_evictions += 1
                branches[pc] = target
                self.policy.on_hit(s, way, block, index)
                return False
        # Block miss.
        self.stats.misses += 1
        for way in range(self.config.ways):
            if blocks[way] == _INVALID:
                blocks[way] = block
                self._branches[s][way] = {pc: target}
                self.stats.compulsory_fills += 1
                self.policy.on_fill(s, way, block, index)
                if self._observers:
                    for observer in self._observers:
                        observer.on_fill(self, s, way, block, target, index)
                return False
        victim = self.policy.choose_victim(s, blocks, block, index)
        if victim == BYPASS:
            self.stats.bypasses += 1
            self.policy.on_bypass(s, block, index)
            if self._observers:
                for observer in self._observers:
                    observer.on_bypass(self, s, block, index)
            return False
        if not 0 <= victim < self.config.ways:
            raise ValueError(f"invalid victim way {victim}")
        self.stats.evictions += 1
        if self._observers:
            for observer in self._observers:
                observer.on_evict(self, s, victim, blocks[victim], block,
                                  index)
        self.policy.on_evict(s, victim, blocks[victim],
                             bool(self._branches[s][victim]))
        blocks[victim] = block
        self._branches[s][victim] = {pc: target}
        self.policy.on_fill(s, victim, block, index)
        if self._observers:
            for observer in self._observers:
                observer.on_fill(self, s, victim, block, target, index)
        return False

    # ------------------------------------------------------------------
    @property
    def resident_blocks(self) -> int:
        return sum(1 for set_blocks in self._blocks
                   for b in set_blocks if b != _INVALID)

    @property
    def resident_branches(self) -> int:
        return sum(len(slot) for set_slots in self._branches
                   for slot in set_slots)

    @property
    def sharing_factor(self) -> float:
        """Mean branches stored per resident block entry (>1 means the
        tag amortization is paying off)."""
        blocks = self.resident_blocks
        return self.resident_branches / blocks if blocks else 0.0

    def __repr__(self) -> str:
        return (f"BlockBTB(blocks={self.config.entries}, "
                f"ways={self.config.ways}, "
                f"branches/entry={self.branches_per_entry}, "
                f"sharing={self.sharing_factor:.2f})")


def run_block_btb(trace: BranchTrace, btb: BlockBTB) -> BlockBTBStats:
    """Replay a trace's BTB access stream through a block BTB.

    Drives the shared replay kernel through its generic path (a BlockBTB
    maps pcs to sets at block granularity, so it resolves its own sets).
    """
    return replay_stream(access_stream_for(trace, btb.config), btb)
