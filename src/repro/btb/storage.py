"""BTB storage accounting (§3.4's overhead arithmetic, generalized).

The paper's iso-storage experiment trades hint bits for entries:
``7979 × (entry + 2 bits) ≈ 8192 × entry`` for a 75KB BTB.  This module
makes that arithmetic explicit and reusable: an entry-bit layout, total
budgets, and the solver that answers "how many entries fit the same budget
once each entry grows by the hint?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.btb.config import BTBConfig

__all__ = ["BTBEntryLayout", "BTBStorageModel", "iso_storage_entries"]


@dataclass(frozen=True)
class BTBEntryLayout:
    """Bit-level layout of one BTB entry.

    Defaults approximate the paper's 75KB, 8K-entry baseline
    (75KB × 8 / 8192 ≈ 75 bits per entry): a partial tag, a
    region-compressed target, branch metadata, and replacement state.
    """

    tag_bits: int = 16
    target_bits: int = 46
    branch_type_bits: int = 2
    #: Per-entry replacement metadata (LRU rank for a 4-way set).
    replacement_bits: int = 2
    #: Extra bits added by a hint-carrying design (0 for the baseline).
    hint_bits: int = 0

    def __post_init__(self) -> None:
        for field_name in ("tag_bits", "target_bits", "branch_type_bits",
                           "replacement_bits", "hint_bits"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.tag_bits == 0 and self.target_bits == 0:
            raise ValueError("an entry needs at least a tag or a target")

    @property
    def bits(self) -> int:
        return (self.tag_bits + self.target_bits + self.branch_type_bits
                + self.replacement_bits + self.hint_bits)

    def with_hint_bits(self, hint_bits: int) -> "BTBEntryLayout":
        return BTBEntryLayout(
            tag_bits=self.tag_bits, target_bits=self.target_bits,
            branch_type_bits=self.branch_type_bits,
            replacement_bits=self.replacement_bits, hint_bits=hint_bits)


#: The paper's baseline entry (sums to 66 bits of payload; rounded budgets
#: below use the layout's exact bit count).
DEFAULT_ENTRY_LAYOUT = BTBEntryLayout()


@dataclass(frozen=True)
class BTBStorageModel:
    """Total storage of a BTB configuration under an entry layout."""

    config: BTBConfig
    layout: BTBEntryLayout = DEFAULT_ENTRY_LAYOUT

    @property
    def total_bits(self) -> int:
        return self.config.entries * self.layout.bits

    @property
    def total_kib(self) -> float:
        return self.total_bits / 8 / 1024

    def overhead_vs(self, baseline: "BTBStorageModel") -> float:
        """Fractional storage overhead relative to ``baseline`` (the
        paper's 2.67% figure for +2 bits on an unchanged entry count)."""
        if baseline.total_bits == 0:
            return 0.0
        return self.total_bits / baseline.total_bits - 1.0


def iso_storage_entries(baseline_entries: int,
                        layout: BTBEntryLayout = DEFAULT_ENTRY_LAYOUT,
                        hint_bits: int = 2,
                        ways: int = 4) -> int:
    """Entries affordable at the baseline's budget once each entry carries
    ``hint_bits`` more bits, rounded down to a whole number of sets.

    With the default 75-bits-per-entry layout and 2 hint bits this
    reproduces the paper's 8192 → 7979 trade (within set-rounding).
    """
    if baseline_entries < 1:
        raise ValueError("baseline_entries must be positive")
    budget = baseline_entries * layout.bits
    grown = layout.with_hint_bits(layout.hint_bits + hint_bits)
    entries = budget // grown.bits
    # Keep whole sets so the geometry stays regular.
    return max(ways, (entries // ways) * ways)
