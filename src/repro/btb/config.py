"""BTB geometry configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["BTBConfig", "DEFAULT_BTB_CONFIG", "THERMOMETER_7979_CONFIG"]


@dataclass(frozen=True)
class BTBConfig:
    """Geometry of a set-associative BTB.

    ``entries`` need not be divisible by ``ways``: the paper's iso-storage
    experiment uses a 7979-entry, 4-way BTB (Fig. 11), which we realize as
    ``ceil(7979 / 4) = 1995`` sets.  A non-power-of-two set count changes the
    index distribution, which is exactly the effect the paper notes for that
    configuration.
    """

    entries: int = 8192
    ways: int = 4

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError("entries must be positive")
        if self.ways < 1:
            raise ValueError("ways must be positive")
        if self.ways > self.entries:
            raise ValueError("ways cannot exceed entries")
        self._memoize_geometry()

    def _memoize_geometry(self) -> None:
        # Frozen dataclass: cache the derived constants once so the
        # per-access ``set_index`` stops re-deriving them.  ``_set_mask``
        # is ``num_sets - 1`` when the set count is a power of two (the
        # modulo becomes a mask), else None.
        num_sets = math.ceil(self.entries / self.ways)
        mask = num_sets - 1 if num_sets & (num_sets - 1) == 0 else None
        object.__setattr__(self, "_num_sets", num_sets)
        object.__setattr__(self, "_set_mask", mask)

    @property
    def num_sets(self) -> int:
        try:
            return self._num_sets
        except AttributeError:
            # A config unpickled from a pre-memoization artifact store
            # skipped __post_init__'s caching; backfill once.
            self._memoize_geometry()
            return self._num_sets

    @property
    def capacity(self) -> int:
        """Actual entry capacity (``num_sets * ways``)."""
        return self.num_sets * self.ways

    def set_index(self, pc: int) -> int:
        """Map a branch pc to its set.

        Branch pcs are 4-byte aligned, so the two low bits are dropped
        before the modulo (the paper's "address modulo number of sets"
        function, applied to the word address).  The modulo runs against
        the memoized set count — as a mask when it is a power of two.
        """
        try:
            mask = self._set_mask
        except AttributeError:
            self._memoize_geometry()
            mask = self._set_mask
        if mask is not None:
            return (pc >> 2) & mask
        return (pc >> 2) % self._num_sets


#: Table 1 baseline: 8192-entry, 4-way BTB.
DEFAULT_BTB_CONFIG = BTBConfig(entries=8192, ways=4)

#: Iso-storage variant from Fig. 11: the 2-bit temperature hint per entry is
#: paid for by dropping entries (7979 × (entry + 2 bits) ≈ 8192 × entry).
THERMOMETER_7979_CONFIG = BTBConfig(entries=7979, ways=4)
