"""Policy-specialized fast-path replay kernels.

The reference replay (:func:`repro.btb.btb.replay_stream` driving
:meth:`BTB._access_with_set`) pays, on every access, for a dict probe, a
virtual policy dispatch, dataclass counter updates, numpy row indexing,
and an observer check.  Kernels strip all of that: each one is a single
specialized Python loop over precomputed plain-int columns that touches
only local ints, small lists, and one dict per set.  Two kernel shapes
exist, chosen per policy by what state the policy couples:

* **Set-partitioned** (:class:`LRUKernel`, :class:`MRUKernel`,
  :class:`FIFOKernel`, :class:`SRRIPKernel`, :class:`OPTKernel`,
  :class:`ThermometerKernel`, :class:`PLRUKernel`) — BTB sets are
  architecturally independent for these policies, so the replay is
  partitioned by set (:meth:`~repro.trace.stream.AccessStream.partition`)
  and executed one contiguous per-set slice at a time.
* **Global-order** (:class:`GlobalOrderKernel` subclasses: DIP, SHiP,
  GHRP, Hawkeye, dueling and online Thermometer) — these policies couple
  sets through global learning state (a PSEL counter, a signature table,
  a path-history register, predictor counters) mutated in *stream
  order*, so a per-set partition cannot be bit-identical.  Their kernels
  instead run one specialized flat pass in original stream order,
  mutating the policy's own state structures in place.

Policies whose decisions consume a pseudo-random number generator per
event (``random``, ``brrip``) are deliberately *not* kernelized; they
are listed in :data:`REFERENCE_ONLY` with the reason, and the dispatch
matrix test (``tests/test_fast_kernels.py``) fails if a registry policy
is in neither camp.

Every kernel is **bit-identical** to the reference loop: it produces the
same :class:`~repro.btb.btb.BTBStats`, the same final BTB contents
(tags, targets, reuse bits, fill indices, pc→way directories), and the
same final policy state (recency stamps, RRPV grids, temperatures,
signature/outcome grids, predictor counters, PSEL/history registers,
coverage counters), so a replay that continues through the slow path
afterwards cannot diverge.  ``tests/test_fast_kernels.py`` and
``tests/test_kernel_equivalence.py`` enforce this differentially for
every registered policy.

Dispatch (:func:`try_fast_replay`, called from ``replay_stream``) takes
the fast path only when all of the following hold; anything else falls
back to the reference loop:

* the model is a plain :class:`~repro.btb.btb.BTB` on the stream's
  geometry (checked by the caller);
* no :class:`~repro.btb.observer.BTBObserver` (including the telemetry
  observer) is attached — kernels emit no per-access events;
* the BTB is pristine (zero stats, empty storage) — kernels replay from
  reset, they do not resume mid-stream state;
* the policy's **exact type** has a registered kernel (a subclass —
  even one that merely overrides ``choose_victim`` — silently takes the
  reference loop, it never errors) and no policy hook has been patched
  onto the *instance*;
* the kernel's :meth:`~ReplayKernel.matches` precondition holds
  (set-partitioned kernels that reconstruct state analytically require
  the just-bound policy state, e.g. recency clock at zero; for OPT, the
  policy was built from this very stream's next-use column.
  Global-order kernels simulate the policy's own state in place and
  accept any starting state);
* the ``REPRO_FAST_REPLAY`` kill switch is not set to ``0``.

:func:`lru_stack_stats` additionally computes LRU hit/miss counts
*analytically* — an O(n log n) per-set stack-distance (reuse-depth)
pass over the partitioned stream that never simulates BTB state at all.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import Dict, List, Optional, Type

import numpy as np

from repro.btb.replacement.dip import (DIPPolicy, _BIP_LEADER as _DIP_BIP,
                                       _LRU_LEADER as _DIP_LRU)
from repro.btb.replacement.dueling_thermometer import (
    DuelingThermometerPolicy, _LRU_LEADER as _DUEL_LRU,
    _THERMO_LEADER as _DUEL_THERMO)
from repro.btb.replacement.fifo import FIFOPolicy
from repro.btb.replacement.ghrp import GHRPPolicy
from repro.btb.replacement.hawkeye import HawkeyePolicy, _RRPV_MAX
from repro.btb.replacement.lru import LRUPolicy, MRUPolicy
from repro.btb.replacement.online_thermometer import OnlineThermometerPolicy
from repro.btb.replacement.opt import BeladyOptimalPolicy
from repro.btb.replacement.plru import TreePLRUPolicy
from repro.btb.replacement.ship import SHiPPolicy
from repro.btb.replacement.srrip import SRRIPPolicy
from repro.btb.replacement.thermometer import ThermometerPolicy
from repro.trace.stream import AccessStream, NEVER

__all__ = ["KERNELS", "REFERENCE_ONLY", "GlobalOrderKernel", "ReplayKernel",
           "fast_path_enabled", "kernel_policy_names", "lru_stack_stats",
           "select_kernel", "set_fast_path_enabled", "try_fast_opt_profile",
           "try_fast_replay"]

_INVALID = -1

#: Per-access outcome codes recorded by the OPT kernel for the profiler.
OUTCOME_HIT = 0
OUTCOME_INSERT = 1
OUTCOME_BYPASS = 2


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_FAST_REPLAY", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


_enabled = _env_enabled()


def fast_path_enabled() -> bool:
    """Whether dispatch may take the fast path at all."""
    return _enabled


def set_fast_path_enabled(enabled: bool) -> bool:
    """Flip the fast path on/off (benchmarks, differential tests);
    returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


# ----------------------------------------------------------------------
# Kernel base
# ----------------------------------------------------------------------

class ReplayKernel:
    """One policy-specialized set-partitioned replay.

    Subclasses implement :meth:`matches` (is this exact policy instance
    in a state the kernel can reproduce?) and :meth:`replay` (simulate
    every set and write the final BTB + policy state back).
    """

    @classmethod
    def matches(cls, policy, stream: AccessStream) -> bool:
        return True

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        raise NotImplementedError

    # -- shared write-back helpers -------------------------------------
    @staticmethod
    def _write_set(btb, s: int, tag: List[int], tgt: List[int],
                   reused: List[bool], fillidx: List[int],
                   dct: Dict[int, int]) -> None:
        btb._tags[s] = tag
        btb._targets[s] = tgt
        btb._reused[s] = reused
        btb._fill_index[s] = fillidx
        btb._dir[s] = dct

    @staticmethod
    def _write_stats(btb, accesses: int, hits: int, evictions: int,
                     bypasses: int, compulsory: int,
                     mismatches: int) -> None:
        stats = btb.stats
        stats.accesses += accesses
        stats.hits += hits
        stats.misses += accesses - hits
        stats.evictions += evictions
        stats.bypasses += bypasses
        stats.compulsory_fills += compulsory
        stats.target_mismatches += mismatches


# ----------------------------------------------------------------------
# Recency kernels: LRU / MRU
# ----------------------------------------------------------------------

class LRUKernel(ReplayKernel):
    """LRU: victim is the least-recently-touched way.

    Within one set the stable partition preserves stream order, so the
    partition index of a way's last touch orders recency exactly like
    the reference policy's global clock stamps (which are unique, making
    tie-break rules moot)."""

    evict_most_recent = False

    @classmethod
    def matches(cls, policy, stream: AccessStream) -> bool:
        return policy._clock == 0

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        part = stream.partition()
        pcs, tgts, pos = part.pcs, part.targets, part.positions
        starts = part.starts.tolist()
        set_ids = part.set_ids.tolist()
        W = btb.config.ways
        ways = range(W)
        mru = self.evict_most_recent
        stamps = btb.policy._stamps
        hits = evictions = compulsory = mismatches = 0
        for g, s in enumerate(set_ids):
            a, b = starts[g], starts[g + 1]
            dct: Dict[int, int] = {}
            tag = [_INVALID] * W
            tgt = [0] * W
            reused = [False] * W
            fillidx = [0] * W
            touch = [-1] * W
            nfilled = 0
            for k in range(a, b):
                pc = pcs[k]
                way = dct.get(pc)
                if way is not None:
                    hits += 1
                    if hits_out is not None:
                        hits_out[pos[k]] = 1
                    t = tgts[k]
                    if tgt[way] != t:
                        mismatches += 1
                        tgt[way] = t
                    reused[way] = True
                    touch[way] = k
                    continue
                if nfilled < W:
                    way = nfilled
                    nfilled += 1
                    compulsory += 1
                else:
                    way = (max(ways, key=touch.__getitem__) if mru
                           else min(ways, key=touch.__getitem__))
                    evictions += 1
                    del dct[tag[way]]
                dct[pc] = way
                tag[way] = pc
                tgt[way] = tgts[k]
                reused[way] = False
                fillidx[way] = pos[k]
                touch[way] = k
            self._write_set(btb, s, tag, tgt, reused, fillidx, dct)
            srow = stamps[s]
            for w in ways:
                if touch[w] >= 0:
                    # Every access touches exactly once, so the clock at
                    # stream position p is p + 1.
                    srow[w] = pos[touch[w]] + 1
        n = len(pcs)
        btb.policy._clock = n
        self._write_stats(btb, n, hits, evictions, 0, compulsory,
                          mismatches)


class MRUKernel(LRUKernel):
    evict_most_recent = True


# ----------------------------------------------------------------------
# FIFO
# ----------------------------------------------------------------------

class FIFOKernel(ReplayKernel):
    """FIFO: victim is the oldest *fill*; hits do not refresh."""

    @classmethod
    def matches(cls, policy, stream: AccessStream) -> bool:
        return policy._clock == 0

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        part = stream.partition()
        pcs, tgts, pos = part.pcs, part.targets, part.positions
        starts = part.starts.tolist()
        set_ids = part.set_ids.tolist()
        W = btb.config.ways
        ways = range(W)
        hits = evictions = compulsory = mismatches = 0
        #: (set, way, global fill position) of every way's last fill —
        #: the policy's clock only ticks on fills, so stamps are ranks
        #: in the global fill order.
        last_fills: List[tuple] = []
        fill_positions: List[int] = []
        for g, s in enumerate(set_ids):
            a, b = starts[g], starts[g + 1]
            dct: Dict[int, int] = {}
            tag = [_INVALID] * W
            tgt = [0] * W
            reused = [False] * W
            fillidx = [0] * W
            fillk = [-1] * W
            nfilled = 0
            for k in range(a, b):
                pc = pcs[k]
                way = dct.get(pc)
                if way is not None:
                    hits += 1
                    if hits_out is not None:
                        hits_out[pos[k]] = 1
                    t = tgts[k]
                    if tgt[way] != t:
                        mismatches += 1
                        tgt[way] = t
                    reused[way] = True
                    continue
                if nfilled < W:
                    way = nfilled
                    nfilled += 1
                    compulsory += 1
                else:
                    way = min(ways, key=fillk.__getitem__)
                    evictions += 1
                    del dct[tag[way]]
                p = pos[k]
                dct[pc] = way
                tag[way] = pc
                tgt[way] = tgts[k]
                reused[way] = False
                fillidx[way] = p
                fillk[way] = k
                fill_positions.append(p)
            self._write_set(btb, s, tag, tgt, reused, fillidx, dct)
            for w in ways:
                if fillk[w] >= 0:
                    last_fills.append((s, w, fillidx[w]))
        fill_positions.sort()
        stamps = btb.policy._stamps
        for s, w, p in last_fills:
            stamps[s][w] = bisect_right(fill_positions, p)
        btb.policy._clock = len(fill_positions)
        n = len(pcs)
        self._write_stats(btb, n, hits, evictions, 0, compulsory,
                          mismatches)


# ----------------------------------------------------------------------
# SRRIP
# ----------------------------------------------------------------------

class SRRIPKernel(ReplayKernel):
    """Static RRIP: per-way RRPV counters, whole-set aging on pressure."""

    @classmethod
    def matches(cls, policy, stream: AccessStream) -> bool:
        m = policy.rrpv_max
        return all(v == m for row in policy._rrpv for v in row)

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        part = stream.partition()
        pcs, tgts, pos = part.pcs, part.targets, part.positions
        starts = part.starts.tolist()
        set_ids = part.set_ids.tolist()
        W = btb.config.ways
        ways = range(W)
        policy = btb.policy
        rrpv_max = policy.rrpv_max
        rrpv_ins = policy.rrpv_insert
        rrpv_grid = policy._rrpv
        hits = evictions = compulsory = mismatches = 0
        for g, s in enumerate(set_ids):
            a, b = starts[g], starts[g + 1]
            dct: Dict[int, int] = {}
            tag = [_INVALID] * W
            tgt = [0] * W
            reused = [False] * W
            fillidx = [0] * W
            rr = [rrpv_max] * W
            nfilled = 0
            for k in range(a, b):
                pc = pcs[k]
                way = dct.get(pc)
                if way is not None:
                    hits += 1
                    if hits_out is not None:
                        hits_out[pos[k]] = 1
                    t = tgts[k]
                    if tgt[way] != t:
                        mismatches += 1
                        tgt[way] = t
                    reused[way] = True
                    rr[way] = 0
                    continue
                if nfilled < W:
                    way = nfilled
                    nfilled += 1
                    compulsory += 1
                else:
                    way = None
                    while way is None:
                        for w in ways:
                            if rr[w] >= rrpv_max:
                                way = w
                                break
                        else:
                            for w in ways:
                                rr[w] += 1
                    evictions += 1
                    del dct[tag[way]]
                dct[pc] = way
                tag[way] = pc
                tgt[way] = tgts[k]
                reused[way] = False
                fillidx[way] = pos[k]
                rr[way] = rrpv_ins
            self._write_set(btb, s, tag, tgt, reused, fillidx, dct)
            rrpv_grid[s] = rr
        n = len(pcs)
        self._write_stats(btb, n, hits, evictions, 0, compulsory,
                          mismatches)


# ----------------------------------------------------------------------
# Belady OPT
# ----------------------------------------------------------------------

class OPTKernel(ReplayKernel):
    """Belady's optimal replacement with bypass, driven by the stream's
    precomputed next-use column.

    ``outcomes``, when given, receives one byte per access at its
    *original* stream position (:data:`OUTCOME_HIT` /
    :data:`OUTCOME_INSERT` / :data:`OUTCOME_BYPASS`) — the profiler's
    per-branch attribution without its per-access Python bookkeeping.
    """

    @classmethod
    def matches(cls, policy, stream: AccessStream) -> bool:
        # The policy must have been built from this stream's own
        # next-use column (from_access_stream / the registry path) and
        # not advanced yet.
        return (policy._last_index == 0
                and stream._next_use is not None
                and policy._next_use is stream._next_use)

    def replay(self, btb, stream: AccessStream,
               outcomes: Optional[bytearray] = None,
               hits_out: Optional[bytearray] = None) -> None:
        part = stream.partition()
        pcs, tgts, pos = part.pcs, part.targets, part.positions
        next_sorted = stream.next_use[part.order].tolist()
        starts = part.starts.tolist()
        set_ids = part.set_ids.tolist()
        W = btb.config.ways
        policy = btb.policy
        bypass_enabled = policy.bypass_enabled
        resident_grid = policy._resident_next
        record = outcomes is not None
        hits = evictions = bypasses = compulsory = mismatches = 0
        for g, s in enumerate(set_ids):
            a, b = starts[g], starts[g + 1]
            dct: Dict[int, int] = {}
            tag = [_INVALID] * W
            tgt = [0] * W
            reused = [False] * W
            fillidx = [0] * W
            resnext = [NEVER] * W
            nfilled = 0
            for k in range(a, b):
                pc = pcs[k]
                way = dct.get(pc)
                if way is not None:
                    hits += 1
                    if hits_out is not None:
                        hits_out[pos[k]] = 1
                    t = tgts[k]
                    if tgt[way] != t:
                        mismatches += 1
                        tgt[way] = t
                    reused[way] = True
                    resnext[way] = next_sorted[k]
                    if record:
                        outcomes[pos[k]] = OUTCOME_HIT
                    continue
                if nfilled < W:
                    way = nfilled
                    nfilled += 1
                    compulsory += 1
                else:
                    way = 0
                    vn = resnext[0]
                    for w in range(1, W):
                        if resnext[w] > vn:
                            vn = resnext[w]
                            way = w
                    incoming = next_sorted[k]
                    if bypass_enabled and incoming >= vn:
                        bypasses += 1
                        if record:
                            outcomes[pos[k]] = OUTCOME_BYPASS
                        continue
                    evictions += 1
                    del dct[tag[way]]
                dct[pc] = way
                tag[way] = pc
                tgt[way] = tgts[k]
                reused[way] = False
                fillidx[way] = pos[k]
                resnext[way] = next_sorted[k]
                if record:
                    outcomes[pos[k]] = OUTCOME_INSERT
            self._write_set(btb, s, tag, tgt, reused, fillidx, dct)
            resident_grid[s] = resnext
        n = len(pcs)
        policy._last_index = n - 1 if n else 0
        self._write_stats(btb, n, hits, evictions, bypasses, compulsory,
                          mismatches)


# ----------------------------------------------------------------------
# Thermometer (Algorithm 1)
# ----------------------------------------------------------------------

class ThermometerKernel(ReplayKernel):
    """Coldest-class scan, LRU-among-coldest tiebreak, unique-coldest
    bypass — the paper's Algorithm 1, specialized per set."""

    @classmethod
    def matches(cls, policy, stream: AccessStream) -> bool:
        return policy._clock == 0

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        part = stream.partition()
        pcs, tgts, pos = part.pcs, part.targets, part.positions
        starts = part.starts.tolist()
        set_ids = part.set_ids.tolist()
        W = btb.config.ways
        ways = range(W)
        policy = btb.policy
        hints = policy._hints
        default = policy.default_category
        # HintMap wraps a plain dict; binding its inner ``get`` skips one
        # call frame per miss.  Only valid with an explicit non-None
        # default (HintMap substitutes its own default for None).
        raw = getattr(hints, "categories", None)
        if isinstance(raw, dict) and default is not None:
            hget = raw.get
        else:
            hget = hints.get
        bypass_enabled = policy.bypass_enabled
        static_tb = policy.tiebreak == "static"
        stamps = policy._stamps
        temps_grid = policy._temps
        covered = uncovered = 0
        hits = evictions = compulsory = mismatches = 0
        #: Global positions of bypasses — the only accesses that do not
        #: tick the policy clock (needed to reconstruct exact stamps).
        bypass_positions: List[int] = []
        #: (set, way, global position of last touch) per filled way.
        last_touches: List[tuple] = []
        for g, s in enumerate(set_ids):
            a, b = starts[g], starts[g + 1]
            dct: Dict[int, int] = {}
            tag = [_INVALID] * W
            tgt = [0] * W
            reused = [False] * W
            fillidx = [0] * W
            wtemps = [0] * W
            touch = [-1] * W
            nfilled = 0
            for k in range(a, b):
                pc = pcs[k]
                way = dct.get(pc)
                if way is not None:
                    hits += 1
                    if hits_out is not None:
                        hits_out[pos[k]] = 1
                    t = tgts[k]
                    if tgt[way] != t:
                        mismatches += 1
                        tgt[way] = t
                    reused[way] = True
                    touch[way] = k
                    continue
                t_in = hget(pc, default)
                if nfilled < W:
                    way = nfilled
                    nfilled += 1
                    compulsory += 1
                else:
                    coldest = min(wtemps)
                    hottest = max(wtemps)
                    if t_in < coldest:
                        coldest = t_in
                    if t_in > hottest:
                        hottest = t_in
                    if coldest == hottest:
                        uncovered += 1
                    else:
                        covered += 1
                    candidates = [w for w in ways if wtemps[w] == coldest]
                    if not candidates:
                        # The incoming branch is the unique coldest.
                        if bypass_enabled:
                            bypass_positions.append(pos[k])
                            continue
                        candidates = list(ways)
                    if static_tb:
                        way = candidates[0]
                    else:
                        way = min(candidates, key=touch.__getitem__)
                    evictions += 1
                    del dct[tag[way]]
                dct[pc] = way
                tag[way] = pc
                tgt[way] = tgts[k]
                reused[way] = False
                fillidx[way] = pos[k]
                wtemps[way] = t_in
                touch[way] = k
            self._write_set(btb, s, tag, tgt, reused, fillidx, dct)
            temps_grid[s] = wtemps
            for w in ways:
                if touch[w] >= 0:
                    last_touches.append((s, w, pos[touch[w]]))
        n = len(pcs)
        bypasses = len(bypass_positions)
        if bypasses:
            bypass_positions.sort()
            for s, w, p in last_touches:
                # Clock at position p = touches at or before p.
                stamps[s][w] = p + 1 - bisect_right(bypass_positions, p)
        else:
            for s, w, p in last_touches:
                stamps[s][w] = p + 1
        policy._clock = n - bypasses
        policy.covered_decisions += covered
        policy.uncovered_decisions += uncovered
        self._write_stats(btb, n, hits, evictions, bypasses, compulsory,
                          mismatches)


# ----------------------------------------------------------------------
# Tree PLRU
# ----------------------------------------------------------------------

class PLRUKernel(ReplayKernel):
    """Tree pseudo-LRU: per-way touch paths precomputed once, victim walk
    follows the bits.

    State-faithful: the kernel mutates the policy's own per-set bit
    vectors in place, so any starting bit state is reproduced exactly and
    no freshness precondition is needed."""

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        part = stream.partition()
        pcs, tgts, pos = part.pcs, part.targets, part.positions
        starts = part.starts.tolist()
        set_ids = part.set_ids.tolist()
        W = btb.config.ways
        all_bits = btb.policy._bits
        # The bits a touch of each way writes, as (node, value) pairs —
        # the policy's per-access tree walk, hoisted out of the loop.
        paths = []
        for way in range(W):
            path = []
            node = 0
            low = 0
            span = W
            while span > 1:
                half = span // 2
                go_right = way >= low + half
                path.append((node, 0 if go_right else 1))
                node = 2 * node + (2 if go_right else 1)
                if go_right:
                    low += half
                span = half
            paths.append(tuple(path))
        hits = evictions = compulsory = mismatches = 0
        for g, s in enumerate(set_ids):
            a, b = starts[g], starts[g + 1]
            bits = all_bits[s]
            dct: Dict[int, int] = {}
            tag = [_INVALID] * W
            tgt = [0] * W
            reused = [False] * W
            fillidx = [0] * W
            nfilled = 0
            for k in range(a, b):
                pc = pcs[k]
                way = dct.get(pc)
                if way is not None:
                    hits += 1
                    if hits_out is not None:
                        hits_out[pos[k]] = 1
                    t = tgts[k]
                    if tgt[way] != t:
                        mismatches += 1
                        tgt[way] = t
                    reused[way] = True
                    for node, v in paths[way]:
                        bits[node] = v
                    continue
                if nfilled < W:
                    way = nfilled
                    nfilled += 1
                    compulsory += 1
                else:
                    node = 0
                    low = 0
                    span = W
                    while span > 1:
                        half = span // 2
                        if bits[node] == 1:
                            node = 2 * node + 2
                            low += half
                        else:
                            node = 2 * node + 1
                        span = half
                    way = low
                    evictions += 1
                    del dct[tag[way]]
                dct[pc] = way
                tag[way] = pc
                tgt[way] = tgts[k]
                reused[way] = False
                fillidx[way] = pos[k]
                for node, v in paths[way]:
                    bits[node] = v
            self._write_set(btb, s, tag, tgt, reused, fillidx, dct)
        n = len(pcs)
        self._write_stats(btb, n, hits, evictions, 0, compulsory,
                          mismatches)


# ----------------------------------------------------------------------
# Global-order kernels
# ----------------------------------------------------------------------

class GlobalOrderKernel(ReplayKernel):
    """Base for kernels over policies with cross-set learning state.

    DIP's PSEL, SHiP's signature table, GHRP's history register and
    counter tables, Hawkeye's predictor, and the online/dueling
    Thermometer counters are all mutated in *global stream order* — an
    access to set 3 can change the decision of the next access to set 7.
    A set-partitioned replay therefore cannot be bit-identical; these
    kernels run one specialized flat pass in original order instead,
    keeping BTB storage in plain lists-of-lists mirrors (written back in
    bulk at the end) and mutating the policy's own state structures in
    place.  Because the policy state is simulated faithfully rather than
    reconstructed analytically, any starting state is acceptable and
    :meth:`matches` stays permissive.
    """

    @staticmethod
    def _storage(btb):
        """Plain-list mirrors of the (pristine) BTB storage arrays."""
        nsets, W = btb.config.num_sets, btb.config.ways
        tags = [[_INVALID] * W for _ in range(nsets)]
        tgts = [[0] * W for _ in range(nsets)]
        reused = [[False] * W for _ in range(nsets)]
        fillidx = [[0] * W for _ in range(nsets)]
        dirs: List[Dict[int, int]] = [{} for _ in range(nsets)]
        return tags, tgts, reused, fillidx, dirs

    @staticmethod
    def _write_back(btb, tags, tgts, reused, fillidx, dirs) -> None:
        btb._tags[:] = tags
        btb._targets[:] = tgts
        btb._reused[:] = reused
        btb._fill_index[:] = fillidx
        btb._dir[:] = dirs


class DIPKernel(GlobalOrderKernel):
    """DIP set dueling: leader-set roles are static, PSEL and the BIP
    fill counter evolve in global fill order."""

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        pcs = stream.pcs_list
        tgts_in = stream.targets_list
        sets = stream.sets_list
        W = btb.config.ways
        ways = range(W)
        policy = btb.policy
        stamps = policy._stamps
        role = policy._role
        clock = policy._clock
        psel = policy._psel
        bip = policy._bip_counter
        psel_max = policy.psel_max
        mid = psel_max // 2
        p = policy.bip_mru_probability
        period = max(1, round(1 / p)) if p > 0 else 0
        tags, tgts, reused, fillidx, dirs = self._storage(btb)
        hits = evictions = compulsory = mismatches = 0
        for i, s in enumerate(sets):
            pc = pcs[i]
            dct = dirs[s]
            way = dct.get(pc)
            if way is not None:
                hits += 1
                if hits_out is not None:
                    hits_out[i] = 1
                row = tgts[s]
                t = tgts_in[i]
                if row[way] != t:
                    mismatches += 1
                    row[way] = t
                reused[s][way] = True
                clock += 1
                stamps[s][way] = clock
                continue
            tag = tags[s]
            srow = stamps[s]
            if len(dct) < W:
                way = len(dct)
                compulsory += 1
            else:
                way = min(ways, key=srow.__getitem__)
                evictions += 1
                del dct[tag[way]]
            dct[pc] = way
            tag[way] = pc
            tgts[s][way] = tgts_in[i]
            reused[s][way] = False
            fillidx[s][way] = i
            clock += 1
            r = role[s]
            if r != _DIP_LRU and (r == _DIP_BIP or psel > mid):
                bip += 1
                if period and bip % period == 0:
                    srow[way] = clock
                else:
                    # min over the row still sees the victim's stale
                    # stamp, exactly like the reference hook.
                    srow[way] = min(srow) - 1
            else:
                srow[way] = clock
            if r == _DIP_LRU:
                if psel < psel_max:
                    psel += 1
            elif r == _DIP_BIP and psel > 0:
                psel -= 1
        policy._clock = clock
        policy._psel = psel
        policy._bip_counter = bip
        self._write_back(btb, tags, tgts, reused, fillidx, dirs)
        self._write_stats(btb, len(pcs), hits, evictions, 0, compulsory,
                          mismatches)


class SHIPKernel(GlobalOrderKernel):
    """SHiP: RRIP aging per set, signature counters shared globally."""

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        pcs = stream.pcs_list
        tgts_in = stream.targets_list
        sets = stream.sets_list
        W = btb.config.ways
        ways = range(W)
        policy = btb.policy
        shct = policy._shct
        rrpv = policy._rrpv
        sig = policy._signature
        outcome = policy._outcome
        tb = policy.table_bits
        mask = (1 << tb) - 1
        cmax = policy.counter_max
        rmax = policy.rrpv_max
        tags, tgts, reused, fillidx, dirs = self._storage(btb)
        hits = evictions = compulsory = mismatches = 0
        for i, s in enumerate(sets):
            pc = pcs[i]
            dct = dirs[s]
            way = dct.get(pc)
            if way is not None:
                hits += 1
                if hits_out is not None:
                    hits_out[i] = 1
                row = tgts[s]
                t = tgts_in[i]
                if row[way] != t:
                    mismatches += 1
                    row[way] = t
                reused[s][way] = True
                rrpv[s][way] = 0
                orow = outcome[s]
                if not orow[way]:
                    orow[way] = True
                    idx = sig[s][way]
                    if shct[idx] < cmax:
                        shct[idx] += 1
                continue
            tag = tags[s]
            if len(dct) < W:
                way = len(dct)
                compulsory += 1
            else:
                rr = rrpv[s]
                while True:
                    for w in ways:
                        if rr[w] >= rmax:
                            way = w
                            break
                    else:
                        for w in ways:
                            rr[w] += 1
                        continue
                    break
                evictions += 1
                if not outcome[s][way]:
                    idx = sig[s][way]
                    if shct[idx] > 0:
                        shct[idx] -= 1
                del dct[tag[way]]
            dct[pc] = way
            tag[way] = pc
            tgts[s][way] = tgts_in[i]
            reused[s][way] = False
            fillidx[s][way] = i
            word = pc >> 2
            idx = (word ^ (word >> tb)) & mask
            sig[s][way] = idx
            outcome[s][way] = False
            rrpv[s][way] = rmax - 1 if shct[idx] > 0 else rmax
        self._write_back(btb, tags, tgts, reused, fillidx, dirs)
        self._write_stats(btb, len(pcs), hits, evictions, 0, compulsory,
                          mismatches)


class GHRPKernel(GlobalOrderKernel):
    """GHRP: dead-block prediction from (pc, global history) signatures;
    the history register and skewed counter tables are global."""

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        pcs = stream.pcs_list
        tgts_in = stream.targets_list
        sets = stream.sets_list
        W = btb.config.ways
        ways = range(W)
        policy = btb.policy
        tables = policy._tables
        sig = policy._signature
        dead = policy._dead
        stamps = policy._stamps
        history = policy._history
        clock = policy._clock
        tb = policy.table_bits
        mask = (1 << tb) - 1
        cmax = policy.counter_max
        dthresh = policy.dead_threshold
        bypass_on = policy.bypass_enabled
        skews = tuple((tb - t, t * 0x9E37)
                      for t in range(policy.num_tables))

        def folds(sg):
            return [(sg ^ (sg >> sh) ^ xr) & mask for sh, xr in skews]

        tags, tgts, reused, fillidx, dirs = self._storage(btb)
        hits = evictions = bypasses = compulsory = mismatches = 0
        for i, s in enumerate(sets):
            pc = pcs[i]
            dct = dirs[s]
            way = dct.get(pc)
            if way is not None:
                hits += 1
                if hits_out is not None:
                    hits_out[i] = 1
                row = tgts[s]
                t = tgts_in[i]
                if row[way] != t:
                    mismatches += 1
                    row[way] = t
                reused[s][way] = True
                # on_hit: detrain the previous signature, then re-tag
                # with the post-update-history signature.
                for t_i, idx in enumerate(folds(sig[s][way])):
                    v = tables[t_i][idx]
                    if v > 0:
                        tables[t_i][idx] = v - 1
                history = ((history << 4) ^ (pc >> 2)) & 0xFFFF
                sg = ((pc >> 2) ^ (history << 1)) & 0x3FFFFFF
                sig[s][way] = sg
                total = 0
                for t_i, idx in enumerate(folds(sg)):
                    total += tables[t_i][idx]
                dead[s][way] = total >= dthresh
                clock += 1
                stamps[s][way] = clock
                continue
            tag = tags[s]
            if len(dct) < W:
                way = len(dct)
                compulsory += 1
            else:
                if bypass_on:
                    # The bypass decision sees the *pre-update* history,
                    # exactly like choose_victim before on_bypass.
                    in_sg = ((pc >> 2) ^ (history << 1)) & 0x3FFFFFF
                    total = 0
                    for t_i, idx in enumerate(folds(in_sg)):
                        total += tables[t_i][idx]
                    if total >= dthresh:
                        bypasses += 1
                        history = ((history << 4) ^ (pc >> 2)) & 0xFFFF
                        continue
                drow = dead[s]
                srow = stamps[s]
                cands = [w for w in ways if drow[w]]
                way = min(cands or ways, key=srow.__getitem__)
                evictions += 1
                if not reused[s][way]:
                    for t_i, idx in enumerate(folds(sig[s][way])):
                        v = tables[t_i][idx]
                        if v < cmax:
                            tables[t_i][idx] = v + 1
                del dct[tag[way]]
            dct[pc] = way
            tag[way] = pc
            tgts[s][way] = tgts_in[i]
            reused[s][way] = False
            fillidx[s][way] = i
            history = ((history << 4) ^ (pc >> 2)) & 0xFFFF
            sg = ((pc >> 2) ^ (history << 1)) & 0x3FFFFFF
            sig[s][way] = sg
            total = 0
            for t_i, idx in enumerate(folds(sg)):
                total += tables[t_i][idx]
            dead[s][way] = total >= dthresh
            clock += 1
            stamps[s][way] = clock
        policy._history = history
        policy._clock = clock
        self._write_back(btb, tags, tgts, reused, fillidx, dirs)
        self._write_stats(btb, len(pcs), hits, evictions, bypasses,
                          compulsory, mismatches)


class HawkeyeKernel(GlobalOrderKernel):
    """Hawkeye: per-sampled-set OPTgen, globally shared predictor
    counters trained in stream order."""

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        pcs = stream.pcs_list
        tgts_in = stream.targets_list
        sets = stream.sets_list
        W = btb.config.ways
        ways = range(W)
        policy = btb.policy
        counters = policy._counters
        optgen_get = policy._optgen.get
        rrpv = policy._rrpv
        friendly = policy._friendly
        pbits = policy.predictor_bits
        pmask = (1 << pbits) - 1
        age_cap = _RRPV_MAX - 1
        tags, tgts, reused, fillidx, dirs = self._storage(btb)
        hits = evictions = compulsory = mismatches = 0

        def sample(s, pc):
            gen = optgen_get(s)
            if gen is None:
                return
            verdict = gen.access(pc)
            if verdict is None:
                return
            word = pc >> 2
            idx = (word ^ (word >> pbits)) & pmask
            v = counters[idx]
            if verdict:
                if v < 7:
                    counters[idx] = v + 1
            elif v > 0:
                counters[idx] = v - 1

        for i, s in enumerate(sets):
            pc = pcs[i]
            dct = dirs[s]
            way = dct.get(pc)
            if way is not None:
                hits += 1
                if hits_out is not None:
                    hits_out[i] = 1
                row = tgts[s]
                t = tgts_in[i]
                if row[way] != t:
                    mismatches += 1
                    row[way] = t
                reused[s][way] = True
                sample(s, pc)
                word = pc >> 2
                fr = counters[(word ^ (word >> pbits)) & pmask] >= 4
                friendly[s][way] = fr
                rrpv[s][way] = 0 if fr else _RRPV_MAX
                continue
            tag = tags[s]
            rr = rrpv[s]
            if len(dct) < W:
                way = len(dct)
                compulsory += 1
            else:
                way = 0
                best = -1
                for w in ways:
                    rv = rr[w]
                    if rv == _RRPV_MAX:
                        way = w
                        break
                    if rv > best:
                        best = rv
                        way = w
                evictions += 1
                if friendly[s][way] and not reused[s][way]:
                    vword = tag[way] >> 2
                    idx = (vword ^ (vword >> pbits)) & pmask
                    v = counters[idx]
                    if v > 0:
                        counters[idx] = v - 1
                del dct[tag[way]]
            dct[pc] = way
            tag[way] = pc
            tgts[s][way] = tgts_in[i]
            reused[s][way] = False
            fillidx[s][way] = i
            sample(s, pc)
            word = pc >> 2
            fr = counters[(word ^ (word >> pbits)) & pmask] >= 4
            friendly[s][way] = fr
            if fr:
                for w in ways:
                    if w != way and rr[w] < age_cap:
                        rr[w] += 1
                rr[way] = 0
            else:
                rr[way] = _RRPV_MAX
        self._write_back(btb, tags, tgts, reused, fillidx, dirs)
        self._write_stats(btb, len(pcs), hits, evictions, 0, compulsory,
                          mismatches)


class DuelingThermometerKernel(GlobalOrderKernel):
    """Set-dueling Thermometer: leader roles are static, but follower
    behavior flips with the global PSEL counter."""

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        pcs = stream.pcs_list
        tgts_in = stream.targets_list
        sets = stream.sets_list
        W = btb.config.ways
        ways = range(W)
        policy = btb.policy
        stamps = policy._stamps
        temps = policy._temps
        role = policy._role
        clock = policy._clock
        psel = policy._psel
        psel_max = policy.psel_max
        mid = psel_max // 2
        hints = policy._hints
        default = policy.default_category
        # Same HintMap fast path as ThermometerKernel.
        raw = getattr(hints, "categories", None)
        if isinstance(raw, dict) and default is not None:
            hget = raw.get
        else:
            hget = hints.get
        bypass_on = policy.bypass_enabled
        static_tb = policy.tiebreak == "static"
        tags, tgts, reused, fillidx, dirs = self._storage(btb)
        covered = uncovered = 0
        hits = evictions = bypasses = compulsory = mismatches = 0
        for i, s in enumerate(sets):
            pc = pcs[i]
            dct = dirs[s]
            way = dct.get(pc)
            if way is not None:
                hits += 1
                if hits_out is not None:
                    hits_out[i] = 1
                row = tgts[s]
                t = tgts_in[i]
                if row[way] != t:
                    mismatches += 1
                    row[way] = t
                reused[s][way] = True
                clock += 1
                stamps[s][way] = clock
                continue
            tag = tags[s]
            srow = stamps[s]
            trow = temps[s]
            r = role[s]
            if len(dct) < W:
                way = len(dct)
                compulsory += 1
            else:
                if r == _DUEL_THERMO or (r != _DUEL_LRU and psel <= mid):
                    t_in = hget(pc, default)
                    coldest = min(trow)
                    hottest = max(trow)
                    if t_in < coldest:
                        coldest = t_in
                    if t_in > hottest:
                        hottest = t_in
                    if coldest == hottest:
                        uncovered += 1
                    else:
                        covered += 1
                    cands = [w for w in ways if trow[w] == coldest]
                    if not cands:
                        if bypass_on:
                            bypasses += 1
                            # on_bypass counts as a leader miss.
                            if r == _DUEL_THERMO:
                                if psel < psel_max:
                                    psel += 1
                            elif r == _DUEL_LRU and psel > 0:
                                psel -= 1
                            continue
                        cands = ways
                    way = (cands[0] if static_tb
                           else min(cands, key=srow.__getitem__))
                else:
                    way = min(ways, key=srow.__getitem__)
                evictions += 1
                del dct[tag[way]]
            dct[pc] = way
            tag[way] = pc
            tgts[s][way] = tgts_in[i]
            reused[s][way] = False
            fillidx[s][way] = i
            clock += 1
            srow[way] = clock
            trow[way] = hget(pc, default)
            if r == _DUEL_THERMO:
                if psel < psel_max:
                    psel += 1
            elif r == _DUEL_LRU and psel > 0:
                psel -= 1
        policy._clock = clock
        policy._psel = psel
        policy.covered_decisions += covered
        policy.uncovered_decisions += uncovered
        self._write_back(btb, tags, tgts, reused, fillidx, dirs)
        self._write_stats(btb, len(pcs), hits, evictions, bypasses,
                          compulsory, mismatches)


class OnlineThermometerKernel(GlobalOrderKernel):
    """Online Thermometer: globally shared (taken, hit) counter tables
    updated on every event."""

    def replay(self, btb, stream: AccessStream,
               hits_out: Optional[bytearray] = None) -> None:
        pcs = stream.pcs_list
        tgts_in = stream.targets_list
        sets = stream.sets_list
        W = btb.config.ways
        ways = range(W)
        policy = btb.policy
        taken = policy._taken
        hitc = policy._hits
        stamps = policy._stamps
        clock = policy._clock
        tb = policy.table_bits
        mask = (1 << tb) - 1
        cmax = policy.counter_max
        warm = policy.warm_floor
        thresholds = policy.thresholds
        nth = len(thresholds)
        middle = nth // 2 + (nth % 2)
        bypass_on = policy.bypass_enabled
        tags, tgts, reused, fillidx, dirs = self._storage(btb)
        hits = evictions = bypasses = compulsory = mismatches = 0

        def temp(x):
            word = x >> 2
            slot = (word ^ (word >> tb)) & mask
            tk = taken[slot]
            if tk < warm:
                return middle
            ratio = 100.0 * hitc[slot] / tk
            for category, bound in enumerate(thresholds):
                if ratio <= bound:
                    return category
            return nth

        for i, s in enumerate(sets):
            pc = pcs[i]
            dct = dirs[s]
            way = dct.get(pc)
            word = pc >> 2
            slot = (word ^ (word >> tb)) & mask
            if way is not None:
                hits += 1
                if hits_out is not None:
                    hits_out[i] = 1
                row = tgts[s]
                t = tgts_in[i]
                if row[way] != t:
                    mismatches += 1
                    row[way] = t
                reused[s][way] = True
                if taken[slot] >= cmax:
                    taken[slot] >>= 1
                    hitc[slot] >>= 1
                taken[slot] += 1
                hitc[slot] += 1
                clock += 1
                stamps[s][way] = clock
                continue
            tag = tags[s]
            srow = stamps[s]
            if len(dct) < W:
                way = len(dct)
                compulsory += 1
            else:
                # choose_victim reads the counters *before* this miss is
                # recorded, exactly like the reference ordering.
                temps_l = [temp(tag[w]) for w in ways]
                coldest = temp(pc)
                m = min(temps_l)
                if m < coldest:
                    coldest = m
                cands = [w for w in ways if temps_l[w] == coldest]
                if not cands:
                    if bypass_on:
                        bypasses += 1
                        if taken[slot] >= cmax:
                            taken[slot] >>= 1
                            hitc[slot] >>= 1
                        taken[slot] += 1
                        continue
                    cands = ways
                way = min(cands, key=srow.__getitem__)
                evictions += 1
                del dct[tag[way]]
            dct[pc] = way
            tag[way] = pc
            tgts[s][way] = tgts_in[i]
            reused[s][way] = False
            fillidx[s][way] = i
            if taken[slot] >= cmax:
                taken[slot] >>= 1
                hitc[slot] >>= 1
            taken[slot] += 1
            clock += 1
            srow[way] = clock
        policy._clock = clock
        self._write_back(btb, tags, tgts, reused, fillidx, dirs)
        self._write_stats(btb, len(pcs), hits, evictions, bypasses,
                          compulsory, mismatches)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

#: Exact policy type → kernel.  Exact-type keyed on purpose: a subclass
#: (BRRIP under SRRIP) has different semantics and must take the
#: reference loop; semantically distinct subclasses with their own
#: kernel (DuelingThermometer under Thermometer) get their own entry.
KERNELS: Dict[type, Type[ReplayKernel]] = {
    LRUPolicy: LRUKernel,
    MRUPolicy: MRUKernel,
    FIFOPolicy: FIFOKernel,
    SRRIPPolicy: SRRIPKernel,
    BeladyOptimalPolicy: OPTKernel,
    ThermometerPolicy: ThermometerKernel,
    TreePLRUPolicy: PLRUKernel,
    DIPPolicy: DIPKernel,
    SHiPPolicy: SHIPKernel,
    GHRPPolicy: GHRPKernel,
    HawkeyePolicy: HawkeyeKernel,
    DuelingThermometerPolicy: DuelingThermometerKernel,
    OnlineThermometerPolicy: OnlineThermometerKernel,
}

#: Registry policies deliberately left on the reference loop, with the
#: reason.  The dispatch-matrix test asserts that every registry name is
#: either here or in :data:`KERNELS` — adding a policy without deciding
#: its fast-path story fails CI.
REFERENCE_ONLY: Dict[str, str] = {
    "random": "victim choice draws the policy RNG once per full-set "
              "miss; a kernel would have to replicate the generator's "
              "exact draw sequence, erasing the speedup",
    "brrip": "insertion RRPV draws the policy RNG once per fill; same "
             "RNG-sequencing problem as 'random'",
}

#: The policy hooks a kernel replaces.  If any of these was patched onto
#: the *instance* (monkeypatched spies, ad-hoc experiment tweaks), the
#: kernel would silently ignore the patch — dispatch must fall back.
_POLICY_HOOKS = ("choose_victim", "on_hit", "on_fill", "on_evict",
                 "on_bypass", "reset")


def _instance_patched(policy) -> bool:
    d = policy.__dict__
    return any(hook in d for hook in _POLICY_HOOKS)


def kernel_policy_names() -> List[str]:
    """Registry names of the policies with a fast-path kernel."""
    return sorted(p.name for p in KERNELS)


def _pristine(btb) -> bool:
    stats = btb.stats
    if (stats.accesses or stats.misses or stats.bypasses
            or stats.compulsory_fills):
        return False
    # Prefetch fills leave stats untouched but populate storage.
    return not any(btb._dir)


def select_kernel(btb, stream: AccessStream) -> Optional[ReplayKernel]:
    """The kernel that can replay ``stream`` into ``btb``, or None if
    this replay must take the reference loop.

    The caller (``replay_stream``) has already established that ``btb``
    is a plain :class:`~repro.btb.btb.BTB` on the stream's geometry with
    no observers attached.
    """
    if not _enabled:
        return None
    kernel_cls = KERNELS.get(type(btb.policy))
    if kernel_cls is None:
        return None
    if _instance_patched(btb.policy):
        return None
    if not _pristine(btb):
        return None
    if not kernel_cls.matches(btb.policy, stream):
        return None
    return kernel_cls()


def try_fast_replay(stream: AccessStream, btb,
                    hits_out: Optional[bytearray] = None):
    """Replay ``stream`` through a specialized kernel if one applies.

    Returns ``btb.stats`` on success, or None when the replay must fall
    back to the reference loop.  ``hits_out``, when given, must be a
    zeroed ``bytearray`` of ``len(stream)``; every access that hits
    writes a 1 at its stream position (misses and bypasses stay 0) —
    the per-access outcome column the frontend timing kernel consumes.
    """
    kernel = select_kernel(btb, stream)
    if kernel is None:
        return None
    kernel.replay(btb, stream, hits_out=hits_out)
    return btb.stats


def try_fast_opt_profile(stream: AccessStream, btb):
    """OPT replay with per-access outcome attribution for the profiler.

    Returns a ``bytearray`` of outcome codes (one per access, indexed by
    stream position), or None when the fast path does not apply.
    """
    from repro.btb.btb import BTB
    if type(btb) is not BTB or btb.config != stream.config \
            or btb._observers:
        return None
    kernel = select_kernel(btb, stream)
    if not isinstance(kernel, OPTKernel):
        return None
    outcomes = bytearray(len(stream))
    kernel.replay(btb, stream, outcomes=outcomes)
    return outcomes


# ----------------------------------------------------------------------
# Analytic LRU: stack distances instead of simulation
# ----------------------------------------------------------------------

def _fenwick_update(tree: List[int], i: int, delta: int) -> None:
    while i < len(tree):
        tree[i] += delta
        i += i & (-i)


def _fenwick_prefix(tree: List[int], i: int) -> int:
    total = 0
    while i > 0:
        total += tree[i]
        i -= i & (-i)
    return total


def lru_stack_stats(stream: AccessStream):
    """LRU hit/miss counts computed analytically, without simulating
    BTB state.

    Under LRU an access hits iff the number of *distinct* other pcs
    accessed in the same set since its previous occurrence is smaller
    than the associativity (its stack / reuse depth fits the set).  The
    per-set depths are computed with a Fenwick tree over last-occurrence
    marks — O(n log n) total — and the remaining counters follow
    arithmetically: LRU never bypasses, so every miss fills, the first
    ``ways`` misses of a set are compulsory, and the rest evict.

    Returns a :class:`~repro.btb.btb.BTBStats` bit-identical to
    replaying the stream through an LRU BTB (enforced by
    ``tests/test_fast_kernels.py``).
    """
    from repro.btb.btb import BTBStats
    part = stream.partition()
    pcs, tgts = part.pcs, part.targets
    starts = part.starts.tolist()
    W = stream.config.ways
    n = len(pcs)
    hits = mismatches = evictions = compulsory = 0
    for g in range(len(part.set_ids)):
        a, b = starts[g], starts[g + 1]
        m = b - a
        tree = [0] * (m + 1)
        last: Dict[int, int] = {}
        set_misses = 0
        for i in range(m):
            pc = pcs[a + i]
            j = last.get(pc)
            if j is None:
                set_misses += 1
            else:
                # Distinct other pcs strictly between occurrences =
                # last-occurrence marks in (j, i).
                depth = (_fenwick_prefix(tree, i)
                         - _fenwick_prefix(tree, j + 1))
                if depth < W:
                    hits += 1
                    if tgts[a + i] != tgts[a + j]:
                        mismatches += 1
                else:
                    set_misses += 1
                _fenwick_update(tree, j + 1, -1)
            _fenwick_update(tree, i + 1, 1)
            last[pc] = i
        compulsory += min(set_misses, W)
        evictions += max(0, set_misses - W)
    return BTBStats(accesses=n, hits=hits, misses=n - hits,
                    evictions=evictions, bypasses=0,
                    compulsory_fills=compulsory,
                    target_mismatches=mismatches)
