"""BTB entry record."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BTBEntry"]


@dataclass
class BTBEntry:
    """One BTB way's contents.

    Real BTB entries hold a partial tag, the predicted target, and branch
    metadata; this model keeps the full pc as tag (aliasing is not the
    phenomenon under study) plus the fields the replacement experiments
    need.
    """

    pc: int
    target: int
    #: Index (into the BTB access stream) of the access that filled this
    #: entry; used for lifetime statistics.
    fill_index: int = 0
    #: Whether the entry has hit since it was filled (dead-on-eviction
    #: bookkeeping for GHRP-style policies and lifetime stats).
    reused: bool = False

    def __repr__(self) -> str:
        return (f"BTBEntry(pc={self.pc:#x}, target={self.target:#x}, "
                f"reused={self.reused})")
