"""SRRIP and BRRIP re-reference interval prediction (Jaleel et al.).

SRRIP is the best-performing prior policy in the paper's evaluation (1.5%
mean speedup, Fig. 1): each way carries an M-bit Re-Reference Prediction
Value (RRPV).  New entries are inserted with a *long* predicted interval
(RRPV = 2^M − 2), promoted to *near-immediate* (0) on a hit, and the victim
is any way at *distant* (2^M − 1), aging the whole set until one exists.
This gives scan resistance — exactly the property that helps against the
cold bursts in data center branch streams — without any notion of holistic
reuse.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.btb.replacement.base import ReplacementPolicy, new_grid

__all__ = ["SRRIPPolicy", "BRRIPPolicy"]


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with hit-priority promotion."""

    name = "srrip"

    def __init__(self, rrpv_bits: int = 2):
        super().__init__()
        if rrpv_bits < 1:
            raise ValueError("rrpv_bits must be >= 1")
        self.rrpv_bits = rrpv_bits
        self.rrpv_max = (1 << rrpv_bits) - 1
        #: Insertion RRPV: "long" re-reference interval.
        self.rrpv_insert = self.rrpv_max - 1

    def _allocate(self) -> None:
        self._rrpv = new_grid(self.num_sets, self.num_ways, self.rrpv_max)

    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._rrpv[set_idx][way] = 0

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._rrpv[set_idx][way] = self._insertion_rrpv(set_idx)

    def _insertion_rrpv(self, set_idx: int) -> int:
        return self.rrpv_insert

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        rrpv = self._rrpv[set_idx]
        while True:
            for way in range(self.num_ways):
                if rrpv[way] >= self.rrpv_max:
                    return way
            for way in range(self.num_ways):
                rrpv[way] += 1


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: insert at distant most of the time, long occasionally.

    More thrash-resistant than SRRIP on working sets far beyond capacity;
    included as an ablation baseline.
    """

    name = "brrip"

    def __init__(self, rrpv_bits: int = 2, long_probability: float = 1 / 32,
                 seed: int = 0):
        super().__init__(rrpv_bits=rrpv_bits)
        if not 0.0 <= long_probability <= 1.0:
            raise ValueError("long_probability must be in [0, 1]")
        self.long_probability = long_probability
        self._seed = seed
        self._rng = random.Random(seed)

    def _allocate(self) -> None:
        super()._allocate()
        self._rng = random.Random(self._seed)

    def _insertion_rrpv(self, set_idx: int) -> int:
        if self._rng.random() < self.long_probability:
            return self.rrpv_insert
        return self.rrpv_max
