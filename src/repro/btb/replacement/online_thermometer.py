"""Online Thermometer: temperature estimated in hardware, no profile.

An extension study beyond the paper: how much of Thermometer's benefit
actually *requires* the offline OPT simulation?  This variant keeps a
pc-hashed table of per-branch (taken, hit) event counters updated at access
time and classifies temperature from the *observed* hit-to-taken ratio
under its own (non-optimal) replacement.

Two structural handicaps relative to the profile-guided design, both
intentional and both visible in the ablation benchmarks:

* the ratio is measured under the deployed policy, not under OPT, so a
  branch that keeps getting evicted looks cold even when OPT would have
  retained it (a self-fulfilling prophecy the offline analysis avoids);
* the table is finite and hash-indexed, so large branch footprints alias.

Bypass is disabled by default: with self-measured ratios, bypassing a
"cold" branch starves it of the very insertions that would let it prove
itself hot — a feedback spiral the offline OPT profile cannot enter
(measured in ``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

from typing import Sequence

from repro.btb.replacement.base import BYPASS, ReplacementPolicy, new_grid

__all__ = ["OnlineThermometerPolicy"]


class OnlineThermometerPolicy(ReplacementPolicy):
    """Algorithm 1 driven by live hit/taken counters instead of hints."""

    name = "thermometer-online"
    supports_bypass = True

    def __init__(self, table_bits: int = 14,
                 thresholds: Sequence[float] = (50.0, 80.0),
                 counter_max: int = 255, bypass_enabled: bool = False,
                 warm_floor: int = 4):
        super().__init__()
        if table_bits < 4:
            raise ValueError("table_bits must be >= 4")
        if list(thresholds) != sorted(thresholds):
            raise ValueError("thresholds must be ascending")
        self.table_bits = table_bits
        self.thresholds = tuple(thresholds)
        self.counter_max = counter_max
        self.bypass_enabled = bypass_enabled
        #: Below this many observations a branch is treated as middle
        #: class (no evidence yet).
        self.warm_floor = warm_floor

    def _allocate(self) -> None:
        size = 1 << self.table_bits
        self._taken = [0] * size
        self._hits = [0] * size
        self._stamps = new_grid(self.num_sets, self.num_ways, 0)
        self._clock = 0

    # ------------------------------------------------------------------
    def _slot(self, pc: int) -> int:
        mask = (1 << self.table_bits) - 1
        word = pc >> 2
        return (word ^ (word >> self.table_bits)) & mask

    def _record(self, pc: int, hit: bool) -> None:
        slot = self._slot(pc)
        if self._taken[slot] >= self.counter_max:
            # Halve both counters: cheap exponential aging.
            self._taken[slot] >>= 1
            self._hits[slot] >>= 1
        self._taken[slot] += 1
        if hit:
            self._hits[slot] += 1

    def temperature_of(self, pc: int) -> int:
        slot = self._slot(pc)
        taken = self._taken[slot]
        if taken < self.warm_floor:
            return self._middle_category()
        ratio = 100.0 * self._hits[slot] / taken
        for category, bound in enumerate(self.thresholds):
            if ratio <= bound:
                return category
        return len(self.thresholds)

    def _middle_category(self) -> int:
        return len(self.thresholds) // 2 + (len(self.thresholds) % 2)

    # ------------------------------------------------------------------
    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._record(pc, hit=True)
        self._clock += 1
        self._stamps[set_idx][way] = self._clock

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._record(pc, hit=False)
        self._clock += 1
        self._stamps[set_idx][way] = self._clock

    def on_bypass(self, set_idx: int, pc: int, index: int) -> None:
        self._record(pc, hit=False)

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        temps = [self.temperature_of(int(pc)) for pc in resident_pcs]
        incoming_temp = self.temperature_of(incoming_pc)
        coldest = min(incoming_temp, min(temps))
        candidates = [w for w in range(self.num_ways)
                      if temps[w] == coldest]
        if not candidates:
            if self.bypass_enabled:
                return BYPASS
            candidates = list(range(self.num_ways))
        stamps = self._stamps[set_idx]
        return min(candidates, key=stamps.__getitem__)
