"""Replacement policies for the BTB."""

from repro.btb.replacement.base import BYPASS, ReplacementPolicy
from repro.btb.replacement.dip import DIPPolicy
from repro.btb.replacement.fifo import FIFOPolicy, RandomPolicy
from repro.btb.replacement.ghrp import GHRPPolicy
from repro.btb.replacement.hawkeye import HawkeyePolicy
from repro.btb.replacement.lru import LRUPolicy, MRUPolicy
from repro.btb.replacement.online_thermometer import OnlineThermometerPolicy
from repro.btb.replacement.opt import (NEVER, BeladyOptimalPolicy,
                                       compute_next_use)
from repro.btb.replacement.plru import TreePLRUPolicy
from repro.btb.replacement.ship import SHiPPolicy
from repro.btb.replacement.srrip import BRRIPPolicy, SRRIPPolicy
from repro.btb.replacement.thermometer import ThermometerPolicy
from repro.btb.replacement.registry import make_policy, policy_names

__all__ = [
    "BYPASS",
    "NEVER",
    "BRRIPPolicy",
    "DIPPolicy",
    "OnlineThermometerPolicy",
    "SHiPPolicy",
    "TreePLRUPolicy",
    "BeladyOptimalPolicy",
    "FIFOPolicy",
    "GHRPPolicy",
    "HawkeyePolicy",
    "LRUPolicy",
    "MRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "ThermometerPolicy",
    "compute_next_use",
    "make_policy",
    "policy_names",
]
