"""Name-based policy construction for the experiment harness.

Policies differ in what they need at construction time: OPT needs the full
access stream, Thermometer needs a hint map.  :func:`make_policy` hides that
behind a uniform call so sweeps can be written as lists of names.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.btb.replacement.base import ReplacementPolicy
from repro.btb.replacement.dueling_thermometer import DuelingThermometerPolicy
from repro.btb.replacement.fifo import FIFOPolicy, RandomPolicy
from repro.btb.replacement.ghrp import GHRPPolicy
from repro.btb.replacement.hawkeye import HawkeyePolicy
from repro.btb.replacement.lru import LRUPolicy, MRUPolicy
from repro.btb.replacement.dip import DIPPolicy
from repro.btb.replacement.online_thermometer import OnlineThermometerPolicy
from repro.btb.replacement.opt import BeladyOptimalPolicy
from repro.btb.replacement.plru import TreePLRUPolicy
from repro.btb.replacement.ship import SHiPPolicy
from repro.btb.replacement.srrip import BRRIPPolicy, SRRIPPolicy
from repro.btb.replacement.thermometer import ThermometerPolicy
from repro.trace.stream import AccessStream

__all__ = ["make_policy", "policy_names", "register_policy",
           "HINTED_POLICY_FACTORIES"]

_SIMPLE_POLICIES: Dict[str, Callable[[], ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "mru": MRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
    "ghrp": GHRPPolicy,
    "hawkeye": HawkeyePolicy,
    "plru": TreePLRUPolicy,
    "ship": SHiPPolicy,
    "dip": DIPPolicy,
    "thermometer-online": OnlineThermometerPolicy,
}

#: Policies constructed from a profile-derived hint map (``hints=``).
HINTED_POLICY_FACTORIES: Dict[str, Callable[..., ReplacementPolicy]] = {
    "thermometer": ThermometerPolicy,
    "thermometer-dueling": DuelingThermometerPolicy,
}


def policy_names() -> List[str]:
    """All constructible policy names."""
    return sorted([*_SIMPLE_POLICIES, *HINTED_POLICY_FACTORIES, "opt"])


def register_policy(name: str,
                    factory: Callable[[], ReplacementPolicy]) -> None:
    """Register a custom zero-argument policy factory under ``name``.

    Lets downstream users plug their own policies into the harness sweeps.
    """
    if (name == "opt" or name in HINTED_POLICY_FACTORIES
            or name in _SIMPLE_POLICIES):
        raise ValueError(f"policy name {name!r} is already registered")
    _SIMPLE_POLICIES[name] = factory


def make_policy(name: str, *, stream: Optional[Sequence[int]] = None,
                hints: Optional[Mapping[int, int]] = None,
                **kwargs) -> ReplacementPolicy:
    """Construct a policy by name.

    ``stream`` is required for ``"opt"`` — either a shared
    :class:`~repro.trace.stream.AccessStream` (its precomputed next-use
    column is reused) or the raw sequence of BTB access pcs; ``hints``
    (pc → temperature category) is required for ``"thermometer"`` and
    ``"thermometer-dueling"``.  Extra keyword arguments are forwarded to
    the policy constructor.
    """
    if name == "opt":
        if stream is None:
            raise ValueError("the 'opt' policy requires stream= (an "
                             "AccessStream or the BTB access pcs it will "
                             "replay)")
        if isinstance(stream, AccessStream):
            return BeladyOptimalPolicy.from_access_stream(stream, **kwargs)
        return BeladyOptimalPolicy.from_stream(stream, **kwargs)
    if name in HINTED_POLICY_FACTORIES:
        if hints is None:
            raise ValueError(f"the {name!r} policy requires hints= "
                             "(pc -> temperature category)")
        return HINTED_POLICY_FACTORIES[name](hints, **kwargs)
    factory = _SIMPLE_POLICIES.get(name)
    if factory is None:
        raise ValueError(f"unknown policy {name!r}; known policies: "
                         f"{', '.join(policy_names())}")
    return factory(**kwargs) if kwargs else factory()
