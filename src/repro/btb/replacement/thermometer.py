"""Thermometer's hardware replacement policy (Algorithm 1 of the paper).

Each branch instruction carries a k-bit *temperature* hint produced by the
offline profile analysis (:mod:`repro.core`).  On a replacement decision the
policy considers the incoming branch and all resident ways:

1. find the coldest temperature ``t`` among them;
2. collect the candidate set ``S`` of branches at temperature ``t``;
3. if the incoming branch is the *only* member of ``S``, bypass the BTB;
4. otherwise evict the least-recently-used resident member of ``S``.

Step 1–3 encode the profiled *holistic* reuse behavior; the LRU tiebreak in
step 4 retains *transient* behavior — the combination is the paper's key
design point (§3.4).

The policy also tracks the paper's *coverage* statistic (Fig. 15): a
replacement is "covered" when the temperature hints actually narrowed the
candidate set (not all candidates shared one temperature); otherwise the
decision degenerates to pure LRU.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.btb.replacement.base import BYPASS, ReplacementPolicy, new_grid

__all__ = ["ThermometerPolicy"]


class ThermometerPolicy(ReplacementPolicy):
    """Coldest-temperature-first eviction with LRU tiebreak and bypass."""

    name = "thermometer"
    supports_bypass = True

    def __init__(self, hints: Mapping[int, int], default_category: int = 0,
                 bypass_enabled: bool = True, tiebreak: str = "lru"):
        """``hints`` maps branch pc → temperature category (0 = coldest).

        Branches absent from the profile default to ``default_category``
        (the harness uses the middle category: an unprofiled branch has
        shown no evidence either way, and treating it as coldest would
        wrongly bypass it forever).

        ``tiebreak`` selects the within-coldest-class victim: ``"lru"`` is
        the paper's Algorithm 1 (holistic + transient); ``"static"`` picks
        the lowest way, isolating the holistic signal for the Fig. 16
        ablation.
        """
        super().__init__()
        if tiebreak not in ("lru", "static"):
            raise ValueError("tiebreak must be 'lru' or 'static'")
        self._hints = hints
        self.default_category = default_category
        self.bypass_enabled = bypass_enabled
        self.tiebreak = tiebreak
        # Fig. 15 statistics.
        self.covered_decisions = 0
        self.uncovered_decisions = 0

    # ------------------------------------------------------------------
    def _allocate(self) -> None:
        self._stamps = new_grid(self.num_sets, self.num_ways, 0)
        self._temps = new_grid(self.num_sets, self.num_ways, 0)
        self._clock = 0

    def temperature_of(self, pc: int) -> int:
        return self._hints.get(pc, self.default_category)

    # ------------------------------------------------------------------
    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._clock += 1
        self._stamps[set_idx][way] = self._clock

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._clock += 1
        self._stamps[set_idx][way] = self._clock
        self._temps[set_idx][way] = self.temperature_of(pc)

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        temps = self._temps[set_idx]
        if self.prefetch_fill_in_progress:
            # A prefetch fill asserts imminent use, overriding the static
            # temperature (the paper's newly-inserted-entry buffer, §3.4):
            # never bypass it; evict the LRU of the coldest *resident*
            # class instead.
            coldest = min(temps)
            candidates = [w for w in range(self.num_ways)
                          if temps[w] == coldest]
            stamps = self._stamps[set_idx]
            return min(candidates, key=stamps.__getitem__)
        incoming_temp = self.temperature_of(incoming_pc)
        coldest = min(incoming_temp, min(temps))
        hottest = max(incoming_temp, max(temps))
        if coldest == hottest:
            self.uncovered_decisions += 1
        else:
            self.covered_decisions += 1
        candidates = [w for w in range(self.num_ways)
                      if temps[w] == coldest]
        if not candidates:
            # The incoming branch is the unique coldest: bypass (Algorithm 1
            # line 6).  With bypass disabled, fall back to evicting LRU
            # among all ways.
            if self.bypass_enabled:
                return BYPASS
            candidates = list(range(self.num_ways))
        if self.tiebreak == "static":
            return candidates[0]
        stamps = self._stamps[set_idx]
        return min(candidates, key=stamps.__getitem__)

    # ------------------------------------------------------------------
    @property
    def coverage(self) -> float:
        """Fraction of replacement decisions where hints narrowed the
        candidate set (Fig. 15)."""
        total = self.covered_decisions + self.uncovered_decisions
        if total == 0:
            return 0.0
        return self.covered_decisions / total
