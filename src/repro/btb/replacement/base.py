"""Replacement-policy interface.

A policy owns per-set state sized at :meth:`ReplacementPolicy.bind` time and
receives callbacks from the BTB on hits, fills, and evictions.  On a miss in
a full set the BTB asks :meth:`choose_victim`; a policy that supports
bypassing (§2.5 of the paper) may return :data:`BYPASS` to indicate that the
incoming branch should not be inserted at all.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

__all__ = ["BYPASS", "ReplacementPolicy"]

#: Sentinel returned by :meth:`ReplacementPolicy.choose_victim` to bypass the
#: BTB instead of evicting a resident entry.
BYPASS = -1


class ReplacementPolicy(ABC):
    """Base class for BTB replacement policies."""

    #: Registry/reporting name; subclasses override.
    name = "base"
    #: Whether :meth:`choose_victim` may return :data:`BYPASS`.
    supports_bypass = False

    def __init__(self) -> None:
        self.num_sets = 0
        self.num_ways = 0
        #: True while the owning BTB is installing a *prefetch* (not a
        #: demand miss).  Policies may treat prefetches differently — e.g.
        #: Thermometer does not bypass them, because the prefetcher is
        #: asserting imminent use regardless of the static temperature.
        self.prefetch_fill_in_progress = False

    # ------------------------------------------------------------------
    def bind(self, num_sets: int, num_ways: int) -> None:
        """Size per-set state.  Called once by the owning BTB."""
        if num_sets < 1 or num_ways < 1:
            raise ValueError("num_sets and num_ways must be positive")
        self.num_sets = num_sets
        self.num_ways = num_ways
        self._allocate()

    def _allocate(self) -> None:
        """Subclass hook: allocate per-set state (dims are set)."""

    # ------------------------------------------------------------------
    # Event hooks.  ``index`` is the position of the access in the BTB
    # access stream (needed by future-knowledge policies such as OPT).
    # ------------------------------------------------------------------
    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        """The branch at ``pc`` hit in ``(set_idx, way)``."""

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        """``pc`` was inserted into ``(set_idx, way)``."""

    def on_evict(self, set_idx: int, way: int, pc: int,
                 reused: bool) -> None:
        """``pc`` was evicted; ``reused`` says whether it hit since fill."""

    def on_bypass(self, set_idx: int, pc: int, index: int) -> None:
        """``pc`` missed and the policy chose not to insert it."""

    # ------------------------------------------------------------------
    @abstractmethod
    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        """Pick the way to evict for ``incoming_pc``, or :data:`BYPASS`.

        ``resident_pcs`` lists the pcs currently stored in the set, one per
        way (the set is full when this is called).  The BTB passes its
        numpy tag row directly — index or iterate it, but cast elements
        with ``int()`` before using them as dict keys in hot code.
        """

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear learned/per-set state (keeps the bound geometry)."""
        if self.num_sets:
            self._allocate()

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(sets={self.num_sets}, "
                f"ways={self.num_ways})")


def new_grid(num_sets: int, num_ways: int, fill) -> List[List]:
    """A fresh ``num_sets × num_ways`` grid initialized to ``fill``."""
    return [[fill] * num_ways for _ in range(num_sets)]
