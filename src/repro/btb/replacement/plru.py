"""Tree-based Pseudo-LRU — what shipping hardware actually implements.

True LRU needs ``log2(ways!)`` bits per set; hardware BTBs use a binary
decision tree with one bit per internal node (``ways - 1`` bits).  On an
access, the bits along the path to the touched way are flipped to point
*away* from it; the victim is found by following the bits.  PLRU
approximates LRU closely at low cost and is included both as a realistic
baseline and as the recency fallback in hardware-oriented ablations.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.btb.replacement.base import ReplacementPolicy

__all__ = ["TreePLRUPolicy"]


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU over a power-of-two number of ways."""

    name = "plru"

    def bind(self, num_sets: int, num_ways: int) -> None:
        if not _is_power_of_two(num_ways):
            raise ValueError(
                f"tree PLRU requires a power-of-two way count, got "
                f"{num_ways}")
        super().bind(num_sets, num_ways)

    def _allocate(self) -> None:
        # ways - 1 internal nodes per set, stored heap-style: node 0 is the
        # root; children of node i are 2i+1 and 2i+2.  A bit value of 0
        # points left, 1 points right; the victim path follows the bits.
        self._bits: List[List[int]] = [[0] * (self.num_ways - 1)
                                       for _ in range(self.num_sets)]

    # ------------------------------------------------------------------
    def _touch(self, set_idx: int, way: int) -> None:
        """Flip the path bits to point away from ``way``."""
        bits = self._bits[set_idx]
        node = 0
        # Walk from the root to the leaf; at each level decide by the
        # corresponding bit of the way index (MSB first).
        span = self.num_ways
        low = 0
        while span > 1:
            half = span // 2
            go_right = way >= low + half
            bits[node] = 0 if go_right else 1     # point away
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                low += half
            span = half

    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._touch(set_idx, way)

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._touch(set_idx, way)

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        bits = self._bits[set_idx]
        node = 0
        low = 0
        span = self.num_ways
        while span > 1:
            half = span // 2
            go_right = bits[node] == 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                low += half
            span = half
        return low

    # ------------------------------------------------------------------
    @property
    def state_bits_per_set(self) -> int:
        """Hardware cost: one bit per internal tree node."""
        return self.num_ways - 1
