"""DIP: Dynamic Insertion Policy via set dueling (Qureshi et al.).

DIP adaptively chooses between traditional LRU insertion (new entry becomes
MRU) and *bimodal* insertion (new entry stays LRU, promoted only on reuse —
thrash-resistant).  A few *leader sets* are hard-wired to each policy; a
saturating PSEL counter tracks which leader group misses less and the
remaining *follower sets* copy the winner.

Included because it is the classic adaptive answer to exactly the
scan/thrash patterns the paper's cold bursts create — and it still falls
short of profile-guided replacement, which is the point of Fig. 11.
"""

from __future__ import annotations

from typing import Sequence

from repro.btb.replacement.base import ReplacementPolicy, new_grid

__all__ = ["DIPPolicy"]

_LRU_LEADER = 1
_BIP_LEADER = 2


class DIPPolicy(ReplacementPolicy):
    """Set-dueling between LRU insertion and bimodal insertion."""

    name = "dip"

    def __init__(self, leader_spacing: int = 32, psel_bits: int = 10,
                 bip_mru_probability: float = 1 / 32):
        super().__init__()
        if leader_spacing < 2:
            raise ValueError("leader_spacing must be >= 2")
        self.leader_spacing = leader_spacing
        self.psel_max = (1 << psel_bits) - 1
        self.bip_mru_probability = bip_mru_probability

    def _allocate(self) -> None:
        self._stamps = new_grid(self.num_sets, self.num_ways, 0)
        self._clock = 0
        self._psel = self.psel_max // 2
        self._bip_counter = 0
        # Leader-set assignment: interleave the two leader groups.
        self._role = [0] * self.num_sets
        for s in range(0, self.num_sets, self.leader_spacing):
            self._role[s] = _LRU_LEADER
        for s in range(self.leader_spacing // 2, self.num_sets,
                       self.leader_spacing):
            if self._role[s] == 0:
                self._role[s] = _BIP_LEADER

    # ------------------------------------------------------------------
    def _uses_bip(self, set_idx: int) -> bool:
        role = self._role[set_idx]
        if role == _LRU_LEADER:
            return False
        if role == _BIP_LEADER:
            return True
        # Followers: PSEL above midpoint means the LRU leaders missed more.
        return self._psel > self.psel_max // 2

    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._clock += 1
        self._stamps[set_idx][way] = self._clock

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._clock += 1
        if self._uses_bip(set_idx):
            # Bimodal: usually insert at LRU position (stamp below every
            # resident), occasionally at MRU.
            self._bip_counter += 1
            if self.bip_mru_probability > 0:
                period = max(1, round(1 / self.bip_mru_probability))
            else:
                period = 0
            if period and self._bip_counter % period == 0:
                self._stamps[set_idx][way] = self._clock
            else:
                self._stamps[set_idx][way] = min(
                    self._stamps[set_idx]) - 1
        else:
            self._stamps[set_idx][way] = self._clock
        # Leader-set misses train PSEL (a fill implies a miss).
        role = self._role[set_idx]
        if role == _LRU_LEADER and self._psel < self.psel_max:
            self._psel += 1
        elif role == _BIP_LEADER and self._psel > 0:
            self._psel -= 1

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        stamps = self._stamps[set_idx]
        return min(range(self.num_ways), key=stamps.__getitem__)
