"""Hawkeye (Jain & Lin, ISCA 2016) adapted to the BTB.

Hawkeye reconstructs what Belady's OPT *would have done* on the recent access
history of a few sampled sets (the OPTgen structure), and trains a PC-indexed
predictor to classify instructions as cache-friendly or cache-averse.
Friendly entries are inserted with near-immediate re-reference priority;
averse entries with distant priority, so they are evicted first.

Adaptation notes for the BTB (following §2.3 of the paper under
reproduction): the "load PC" used to index the predictor is the branch pc
itself, and OPTgen windows are sized in set-accesses (8 × associativity, as
in the original).  The mechanism's weakness on data center branch footprints
— predictor aliasing across tens of thousands of static branches, and total
information loss for branches not resident — is inherent and reproduces.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.btb.replacement.base import ReplacementPolicy, new_grid

__all__ = ["HawkeyePolicy"]

_RRPV_MAX = 7


class _OptGen:
    """Belady reconstruction for one sampled set.

    Tracks a sliding window of the set's last ``window`` accesses and an
    occupancy count per time slot; a reuse interval is an OPT hit iff every
    slot in the interval still has spare capacity.
    """

    def __init__(self, ways: int, window_factor: int = 8):
        self.ways = ways
        self.window = window_factor * ways
        self.time = 0
        self.last_time: Dict[int, int] = {}
        self._occ = [0] * self.window

    def access(self, pc: int) -> bool | None:
        """Record an access; returns OPT's verdict (True = hit, False =
        miss, None = no prior access in window — compulsory)."""
        t = self.time
        self.time += 1
        slot = t % self.window
        self._occ[slot] = 0
        t0 = self.last_time.get(pc)
        self.last_time[pc] = t
        if t0 is None or t - t0 >= self.window:
            return None
        interval = range(t0, t)
        if all(self._occ[x % self.window] < self.ways for x in interval):
            for x in interval:
                self._occ[x % self.window] += 1
            return True
        return False


class HawkeyePolicy(ReplacementPolicy):
    """OPTgen-trained friendly/averse prediction with RRIP-style aging."""

    name = "hawkeye"

    def __init__(self, predictor_bits: int = 11, sample_every: int = 8,
                 window_factor: int = 8):
        super().__init__()
        if predictor_bits < 4:
            raise ValueError("predictor_bits must be >= 4")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.predictor_bits = predictor_bits
        self.sample_every = sample_every
        self.window_factor = window_factor

    # ------------------------------------------------------------------
    def _allocate(self) -> None:
        size = 1 << self.predictor_bits
        # 3-bit counters initialized weakly friendly.
        self._counters = [4] * size
        self._optgen = {s: _OptGen(self.num_ways, self.window_factor)
                        for s in range(0, self.num_sets, self.sample_every)}
        self._rrpv = new_grid(self.num_sets, self.num_ways, _RRPV_MAX)
        self._friendly = new_grid(self.num_sets, self.num_ways, False)

    # ------------------------------------------------------------------
    def _predictor_index(self, pc: int) -> int:
        mask = (1 << self.predictor_bits) - 1
        word = pc >> 2
        return (word ^ (word >> self.predictor_bits)) & mask

    def _predict_friendly(self, pc: int) -> bool:
        return self._counters[self._predictor_index(pc)] >= 4

    def _train(self, pc: int, friendly: bool) -> None:
        idx = self._predictor_index(pc)
        value = self._counters[idx]
        if friendly:
            if value < 7:
                self._counters[idx] = value + 1
        elif value > 0:
            self._counters[idx] = value - 1

    def _sample(self, set_idx: int, pc: int) -> None:
        gen = self._optgen.get(set_idx)
        if gen is None:
            return
        verdict = gen.access(pc)
        if verdict is not None:
            self._train(pc, friendly=verdict)

    # ------------------------------------------------------------------
    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._sample(set_idx, pc)
        friendly = self._predict_friendly(pc)
        self._friendly[set_idx][way] = friendly
        self._rrpv[set_idx][way] = 0 if friendly else _RRPV_MAX

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._sample(set_idx, pc)
        friendly = self._predict_friendly(pc)
        self._friendly[set_idx][way] = friendly
        rrpv = self._rrpv[set_idx]
        if friendly:
            # Age everyone else so older friendly entries become evictable.
            for w in range(self.num_ways):
                if w != way and rrpv[w] < _RRPV_MAX - 1:
                    rrpv[w] += 1
            rrpv[way] = 0
        else:
            rrpv[way] = _RRPV_MAX

    def on_evict(self, set_idx: int, way: int, pc: int,
                 reused: bool) -> None:
        # Evicting a friendly-predicted entry that never hit means the
        # prediction was wrong; detrain.
        if self._friendly[set_idx][way] and not reused:
            self._train(pc, friendly=False)

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        rrpv = self._rrpv[set_idx]
        best_way = 0
        best_rrpv = -1
        for way in range(self.num_ways):
            if rrpv[way] == _RRPV_MAX:
                return way
            if rrpv[way] > best_rrpv:
                best_rrpv = rrpv[way]
                best_way = way
        return best_way
