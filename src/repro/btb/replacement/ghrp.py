"""GHRP: Global-History-based Replacement and bypass Prediction.

Reimplementation of the BTB policy from Ajorpaz et al., "Exploring Predictive
Replacement Policies for Instruction Cache and Branch Target Buffer"
(ISCA 2018) — the only prior replacement policy designed specifically for the
BTB.  GHRP hashes the branch pc with a global history of recent branch pcs
into *signatures*, and uses multiple tables of saturating counters (a
skewed/majority organization borrowed from sampling dead-block prediction) to
predict whether an entry is *dead*, i.e. will not hit again before eviction.
Predicted-dead entries are evicted first (and predicted-dead fills can bypass
the BTB entirely).

The paper under reproduction finds GHRP ineffective for data center
applications: their branch working sets overwhelm the counter tables and the
policy loses all knowledge of a branch once its entry is evicted (§2.3).
Those failure modes are intrinsic to the mechanism and reproduce here.
"""

from __future__ import annotations

from typing import Sequence

from repro.btb.replacement.base import BYPASS, ReplacementPolicy, new_grid

__all__ = ["GHRPPolicy"]

_HISTORY_MASK = 0xFFFF


class GHRPPolicy(ReplacementPolicy):
    """Dead-entry prediction from (pc, global path history) signatures."""

    name = "ghrp"
    supports_bypass = True

    def __init__(self, table_bits: int = 12, num_tables: int = 3,
                 counter_max: int = 7, dead_threshold: int = 12,
                 bypass_enabled: bool = True):
        super().__init__()
        if table_bits < 2:
            raise ValueError("table_bits must be >= 2")
        if num_tables < 1:
            raise ValueError("num_tables must be >= 1")
        self.table_bits = table_bits
        self.num_tables = num_tables
        self.counter_max = counter_max
        #: Sum-of-counters threshold above which an entry is predicted dead.
        self.dead_threshold = dead_threshold
        self.bypass_enabled = bypass_enabled

    # ------------------------------------------------------------------
    def _allocate(self) -> None:
        size = 1 << self.table_bits
        self._tables = [[0] * size for _ in range(self.num_tables)]
        self._history = 0
        # Per-way metadata.
        self._signature = new_grid(self.num_sets, self.num_ways, 0)
        self._dead = new_grid(self.num_sets, self.num_ways, False)
        self._stamps = new_grid(self.num_sets, self.num_ways, 0)
        self._clock = 0

    # ------------------------------------------------------------------
    # Signatures and prediction
    # ------------------------------------------------------------------
    def _signature_of(self, pc: int) -> int:
        return ((pc >> 2) ^ (self._history << 1)) & 0x3FFFFFF

    def _indices(self, signature: int):
        mask = (1 << self.table_bits) - 1
        for t in range(self.num_tables):
            # Skew each table with a different fold of the signature.
            folded = signature ^ (signature >> (self.table_bits - t)) ^ (t * 0x9E37)
            yield folded & mask

    def _predict_dead(self, signature: int) -> bool:
        total = sum(self._tables[t][idx]
                    for t, idx in enumerate(self._indices(signature)))
        return total >= self.dead_threshold

    def _train(self, signature: int, dead: bool) -> None:
        for t, idx in enumerate(self._indices(signature)):
            value = self._tables[t][idx]
            if dead:
                if value < self.counter_max:
                    self._tables[t][idx] = value + 1
            elif value > 0:
                self._tables[t][idx] = value - 1

    def _update_history(self, pc: int) -> None:
        self._history = ((self._history << 4) ^ (pc >> 2)) & _HISTORY_MASK

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        # The entry proved live: detrain the signature of its previous
        # access, then re-tag it with the current signature and prediction.
        self._train(self._signature[set_idx][way], dead=False)
        self._update_history(pc)
        sig = self._signature_of(pc)
        self._signature[set_idx][way] = sig
        self._dead[set_idx][way] = self._predict_dead(sig)
        self._clock += 1
        self._stamps[set_idx][way] = self._clock

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._update_history(pc)
        sig = self._signature_of(pc)
        self._signature[set_idx][way] = sig
        self._dead[set_idx][way] = self._predict_dead(sig)
        self._clock += 1
        self._stamps[set_idx][way] = self._clock

    def on_evict(self, set_idx: int, way: int, pc: int,
                 reused: bool) -> None:
        # An entry evicted without a hit since its last access was dead:
        # train its last signature toward dead.
        if not reused:
            self._train(self._signature[set_idx][way], dead=True)

    def on_bypass(self, set_idx: int, pc: int, index: int) -> None:
        self._update_history(pc)

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        if self.bypass_enabled:
            incoming_sig = self._signature_of(incoming_pc)
            if self._predict_dead(incoming_sig):
                return BYPASS
        dead = self._dead[set_idx]
        stamps = self._stamps[set_idx]
        dead_ways = [w for w in range(self.num_ways) if dead[w]]
        candidates = dead_ways if dead_ways else range(self.num_ways)
        return min(candidates, key=stamps.__getitem__)
