"""Recency-based policies: LRU (the paper's baseline) and MRU."""

from __future__ import annotations

from typing import Sequence

from repro.btb.replacement.base import ReplacementPolicy, new_grid

__all__ = ["LRUPolicy", "MRUPolicy"]


class LRUPolicy(ReplacementPolicy):
    """Least Recently Used — the baseline every speedup is measured against.

    Implemented with a per-way timestamp from a global access counter; the
    victim is the way with the smallest stamp.
    """

    name = "lru"

    def _allocate(self) -> None:
        self._stamps = new_grid(self.num_sets, self.num_ways, 0)
        self._clock = 0

    def _touch(self, set_idx: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_idx][way] = self._clock

    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._touch(set_idx, way)

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._touch(set_idx, way)

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        stamps = self._stamps[set_idx]
        return min(range(self.num_ways), key=stamps.__getitem__)

    def recency_order(self, set_idx: int) -> list:
        """Ways ordered least- to most-recently used (for tests/analysis)."""
        stamps = self._stamps[set_idx]
        return sorted(range(self.num_ways), key=stamps.__getitem__)


class MRUPolicy(LRUPolicy):
    """Most Recently Used — a pathological contrast baseline.

    Useful in tests and ablations: on cyclic working sets larger than the
    cache, MRU beats LRU (it pins all-but-one way), which is precisely the
    thrashing behavior the paper's characterization discusses.
    """

    name = "mru"

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        stamps = self._stamps[set_idx]
        return max(range(self.num_ways), key=stamps.__getitem__)
