"""Belady's optimal replacement (OPT/MIN) with bypass.

OPT evicts the entry whose next use lies furthest in the future; if the
*incoming* branch's next use is furthest of all, it bypasses the BTB (the
MIN variant).  This requires future knowledge, so the policy is constructed
from the full BTB access stream: :func:`compute_next_use` precomputes, for
every access, the stream index of the next access to the same pc.

OPT serves three roles in the reproduction, as in the paper:

* the unreachable upper bound in every speedup figure;
* the oracle that defines *branch temperature* (hit-to-taken percentage under
  OPT, §3.2) — see :mod:`repro.core.profiler`;
* the reference for Hawkeye-style training.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.btb.replacement.base import BYPASS, ReplacementPolicy, new_grid

__all__ = ["BeladyOptimalPolicy", "compute_next_use", "compute_occurrences",
           "NEVER"]

#: Sentinel next-use index meaning "never accessed again".
NEVER = np.iinfo(np.int64).max


def compute_next_use(pcs: Sequence[int]) -> np.ndarray:
    """For each position ``i`` in ``pcs``, the next position ``j > i`` with
    ``pcs[j] == pcs[i]``, or :data:`NEVER`.

    Single reverse pass, O(n) time and O(unique pcs) extra space.
    """
    n = len(pcs)
    next_use = np.full(n, NEVER, dtype=np.int64)
    last_seen: dict = {}
    for i in range(n - 1, -1, -1):
        pc = pcs[i]
        nxt = last_seen.get(pc)
        if nxt is not None:
            next_use[i] = nxt
        last_seen[pc] = i
    return next_use


def compute_occurrences(pcs: Sequence[int]) -> Dict[int, List[int]]:
    """pc → sorted list of positions in the stream.

    Needed to resolve the next use of a branch *other than* the one at the
    current stream index — which happens when a prefetcher inserts entries
    (the Confluence-OPT/Shotgun-OPT configurations of Fig. 4).
    """
    occurrences: Dict[int, List[int]] = {}
    for i, pc in enumerate(pcs):
        occurrences.setdefault(int(pc), []).append(i)
    return occurrences


class BeladyOptimalPolicy(ReplacementPolicy):
    """Future-knowledge optimal replacement over a fixed access stream.

    The ``index`` argument threaded through the policy hooks must be the
    position of the current access in the same stream the policy was built
    from; :func:`repro.btb.btb.run_btb` does this automatically.
    """

    name = "opt"
    supports_bypass = True

    def __init__(self, next_use: np.ndarray, bypass_enabled: bool = True,
                 stream_pcs: Optional[Sequence[int]] = None,
                 occurrences: Optional[Dict[int, List[int]]] = None):
        super().__init__()
        self._next_use = np.asarray(next_use, dtype=np.int64)
        self.bypass_enabled = bypass_enabled
        self._stream = stream_pcs
        self._occurrences = occurrences

    @classmethod
    def from_stream(cls, pcs: Sequence[int],
                    bypass_enabled: bool = True) -> "BeladyOptimalPolicy":
        """Build the policy from the BTB access stream (pcs of taken,
        non-return branches in order)."""
        pcs_list = [int(pc) for pc in pcs]
        return cls(compute_next_use(pcs_list), bypass_enabled=bypass_enabled,
                   stream_pcs=pcs_list,
                   occurrences=compute_occurrences(pcs_list))

    # ------------------------------------------------------------------
    def _allocate(self) -> None:
        # Next-use distance of the entry resident in each way.
        self._resident_next = new_grid(self.num_sets, self.num_ways, NEVER)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._next_use):
            raise IndexError(
                f"access index {index} outside the stream this OPT policy "
                f"was built from (length {len(self._next_use)}); OPT must "
                f"replay exactly the stream given to from_stream()")

    def _next_use_of(self, pc: int, index: int) -> int:
        """Next use of ``pc`` strictly after stream position ``index``.

        Fast path: when ``pc`` is the branch at ``index`` (every demand
        access), the precomputed array answers directly.  Otherwise (a
        prefetch fill) fall back to bisecting the pc's occurrence list.
        """
        if self._stream is not None and self._stream[index] == pc:
            return int(self._next_use[index])
        if self._occurrences is None:
            return NEVER
        occ = self._occurrences.get(pc)
        if not occ:
            return NEVER
        j = bisect_right(occ, index)
        return occ[j] if j < len(occ) else NEVER

    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._check_index(index)
        self._resident_next[set_idx][way] = self._next_use_of(pc, index)

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._check_index(index)
        self._resident_next[set_idx][way] = self._next_use_of(pc, index)

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        self._check_index(index)
        nexts = self._resident_next[set_idx]
        victim_way = 0
        victim_next = nexts[0]
        for way in range(1, self.num_ways):
            if nexts[way] > victim_next:
                victim_next = nexts[way]
                victim_way = way
        incoming_next = self._next_use_of(incoming_pc, index)
        if self.bypass_enabled and incoming_next >= victim_next:
            # The incoming branch is re-used no sooner than every resident:
            # inserting it cannot reduce misses, so bypass.
            return BYPASS
        return victim_way
