"""Belady's optimal replacement (OPT/MIN) with bypass.

OPT evicts the entry whose next use lies furthest in the future; if the
*incoming* branch's next use is furthest of all, it bypasses the BTB (the
MIN variant).  This requires future knowledge, so the policy is constructed
from the full BTB access stream — preferably the shared columnar
:class:`~repro.trace.stream.AccessStream` (:meth:`from_access_stream`),
whose precomputed ``next_use`` column is reused instead of recomputed.

OPT serves three roles in the reproduction, as in the paper:

* the unreachable upper bound in every speedup figure;
* the oracle that defines *branch temperature* (hit-to-taken percentage under
  OPT, §3.2) — see :mod:`repro.core.profiler`;
* the reference for Hawkeye-style training.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.btb.replacement.base import BYPASS, ReplacementPolicy, new_grid
from repro.trace.stream import (NEVER, AccessStream,
                                compute_next_use_indices)

__all__ = ["BeladyOptimalPolicy", "compute_next_use", "compute_occurrences",
           "NEVER"]


def compute_next_use(pcs: Sequence[int]) -> np.ndarray:
    """For each position ``i`` in ``pcs``, the next position ``j > i`` with
    ``pcs[j] == pcs[i]``, or :data:`NEVER`.

    Vectorized via a stable argsort (see
    :func:`repro.trace.stream.compute_next_use_indices`).
    """
    return compute_next_use_indices(np.asarray(pcs, dtype=np.int64))


def compute_occurrences(pcs: Sequence[int]) -> Dict[int, List[int]]:
    """pc → sorted list of positions in the stream.

    Needed to resolve the next use of a branch *other than* the one at the
    current stream index — which happens when a prefetcher inserts entries
    (the Confluence-OPT/Shotgun-OPT configurations of Fig. 4).
    """
    occurrences: Dict[int, List[int]] = {}
    for i, pc in enumerate(pcs):
        occurrences.setdefault(int(pc), []).append(i)
    return occurrences


class BeladyOptimalPolicy(ReplacementPolicy):
    """Future-knowledge optimal replacement over a fixed access stream.

    The ``index`` argument threaded through the policy hooks must walk the
    same stream the policy was built from, in order; the replay kernel
    (:func:`repro.btb.btb.replay_stream`) passes the stream's canonical
    indices, and the policy validates that each index stays inside the
    stream and never runs backwards — one monotonicity check instead of
    the old per-call range bookkeeping.
    """

    name = "opt"
    supports_bypass = True

    def __init__(self, next_use: np.ndarray, bypass_enabled: bool = True,
                 stream_pcs: Optional[Sequence[int]] = None,
                 occurrences: Optional[Dict[int, List[int]]] = None,
                 shared_stream: Optional[AccessStream] = None):
        super().__init__()
        self._next_use = np.asarray(next_use, dtype=np.int64)
        self._length = len(self._next_use)
        self.bypass_enabled = bypass_enabled
        self._stream = (list(stream_pcs) if stream_pcs is not None
                        else None)
        self._occurrences = occurrences
        self._shared_stream = shared_stream
        self._last_index = 0

    @classmethod
    def from_stream(cls, pcs: Sequence[int],
                    bypass_enabled: bool = True) -> "BeladyOptimalPolicy":
        """Build the policy from the BTB access stream (pcs of taken,
        non-return branches in order).  Occurrence lists (only needed when
        a prefetcher fills pcs out of stream order) are built lazily."""
        pcs_arr = np.asarray(pcs, dtype=np.int64)
        return cls(compute_next_use_indices(pcs_arr),
                   bypass_enabled=bypass_enabled,
                   stream_pcs=pcs_arr.tolist())

    @classmethod
    def from_access_stream(cls, stream: AccessStream,
                           bypass_enabled: bool = True
                           ) -> "BeladyOptimalPolicy":
        """Build the policy on a shared columnar stream, reusing its
        precomputed ``next_use`` column and occurrence lists outright."""
        return cls(stream.next_use, bypass_enabled=bypass_enabled,
                   stream_pcs=stream.pcs_list, shared_stream=stream)

    # ------------------------------------------------------------------
    def _allocate(self) -> None:
        # Next-use distance of the entry resident in each way.
        self._resident_next = new_grid(self.num_sets, self.num_ways, NEVER)
        self._last_index = 0

    def _advance(self, index: int) -> int:
        """Validate ``index`` against the stream's canonical positions:
        inside the stream, and non-decreasing across the replay."""
        if not self._last_index <= index < self._length:
            if 0 <= index < self._length:
                raise IndexError(
                    f"access index {index} ran backwards (last index "
                    f"{self._last_index}); OPT must replay its stream's "
                    f"canonical indices in order")
            raise IndexError(
                f"access index {index} outside the stream this OPT policy "
                f"was built from (length {self._length}); OPT must "
                f"replay exactly the stream given to from_stream()")
        self._last_index = index
        return index

    def _next_use_of(self, pc: int, index: int) -> int:
        """Next use of ``pc`` strictly after stream position ``index``.

        Fast path: when ``pc`` is the branch at ``index`` (every demand
        access), the precomputed array answers directly.  Otherwise (a
        prefetch fill) fall back to bisecting the pc's occurrence list.
        """
        if self._stream is not None and self._stream[index] == pc:
            return int(self._next_use[index])
        if self._shared_stream is not None:
            return self._shared_stream.next_use_of(pc, index)
        if self._occurrences is None:
            if self._stream is None:
                return NEVER
            self._occurrences = compute_occurrences(self._stream)
        occ = self._occurrences.get(pc)
        if not occ:
            return NEVER
        j = bisect_right(occ, index)
        return occ[j] if j < len(occ) else NEVER

    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._resident_next[set_idx][way] = \
            self._next_use_of(pc, self._advance(index))

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._resident_next[set_idx][way] = \
            self._next_use_of(pc, self._advance(index))

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        self._advance(index)
        nexts = self._resident_next[set_idx]
        victim_way = 0
        victim_next = nexts[0]
        for way in range(1, self.num_ways):
            if nexts[way] > victim_next:
                victim_next = nexts[way]
                victim_way = way
        incoming_next = self._next_use_of(incoming_pc, index)
        if self.bypass_enabled and incoming_next >= victim_next:
            # The incoming branch is re-used no sooner than every resident:
            # inserting it cannot reduce misses, so bypass.
            return BYPASS
        return victim_way
