"""Insertion-order and random policies (additional baselines)."""

from __future__ import annotations

import random
from typing import Sequence

from repro.btb.replacement.base import ReplacementPolicy, new_grid

__all__ = ["FIFOPolicy", "RandomPolicy"]


class FIFOPolicy(ReplacementPolicy):
    """First-In First-Out: evict the oldest *fill*, ignoring hits."""

    name = "fifo"

    def _allocate(self) -> None:
        self._stamps = new_grid(self.num_sets, self.num_ways, 0)
        self._clock = 0

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._clock += 1
        self._stamps[set_idx][way] = self._clock

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        stamps = self._stamps[set_idx]
        return min(range(self.num_ways), key=stamps.__getitem__)


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection with a fixed seed."""

    name = "random"

    def __init__(self, seed: int = 0):
        super().__init__()
        self._seed = seed
        self._rng = random.Random(seed)

    def _allocate(self) -> None:
        self._rng = random.Random(self._seed)

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        return self._rng.randrange(self.num_ways)
