"""SHiP: Signature-based Hit Predictor (Wu et al., MICRO 2011), BTB-adapted.

SHiP keeps a table of saturating counters indexed by a *signature* (here
the branch pc, as the paper's §5 taxonomy suggests for instruction-side
structures) that tracks whether entries inserted under that signature tend
to be re-referenced.  Insertion priority comes from the prediction:
re-referenced signatures insert at RRIP "long", never-re-referenced ones at
"distant".  Like GHRP and Hawkeye, it is a per-PC learning policy and
serves as one more hardware-only point of comparison for Thermometer.
"""

from __future__ import annotations

from typing import Sequence

from repro.btb.replacement.base import ReplacementPolicy, new_grid

__all__ = ["SHiPPolicy"]


class SHiPPolicy(ReplacementPolicy):
    """RRIP replacement with signature-trained insertion prediction."""

    name = "ship"

    def __init__(self, table_bits: int = 13, rrpv_bits: int = 2,
                 counter_max: int = 3):
        super().__init__()
        if table_bits < 4:
            raise ValueError("table_bits must be >= 4")
        self.table_bits = table_bits
        self.rrpv_max = (1 << rrpv_bits) - 1
        self.counter_max = counter_max

    def _allocate(self) -> None:
        self._shct = [1] * (1 << self.table_bits)   # weakly no-reuse
        self._rrpv = new_grid(self.num_sets, self.num_ways, self.rrpv_max)
        self._signature = new_grid(self.num_sets, self.num_ways, 0)
        self._outcome = new_grid(self.num_sets, self.num_ways, False)

    def _index(self, pc: int) -> int:
        mask = (1 << self.table_bits) - 1
        word = pc >> 2
        return (word ^ (word >> self.table_bits)) & mask

    # ------------------------------------------------------------------
    def on_hit(self, set_idx: int, way: int, pc: int, index: int) -> None:
        self._rrpv[set_idx][way] = 0
        if not self._outcome[set_idx][way]:
            self._outcome[set_idx][way] = True
            idx = self._signature[set_idx][way]
            if self._shct[idx] < self.counter_max:
                self._shct[idx] += 1

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        idx = self._index(pc)
        self._signature[set_idx][way] = idx
        self._outcome[set_idx][way] = False
        predicted_reuse = self._shct[idx] > 0
        self._rrpv[set_idx][way] = (self.rrpv_max - 1 if predicted_reuse
                                    else self.rrpv_max)

    def on_evict(self, set_idx: int, way: int, pc: int,
                 reused: bool) -> None:
        if not self._outcome[set_idx][way]:
            idx = self._signature[set_idx][way]
            if self._shct[idx] > 0:
                self._shct[idx] -= 1

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        rrpv = self._rrpv[set_idx]
        while True:
            for way in range(self.num_ways):
                if rrpv[way] >= self.rrpv_max:
                    return way
            for way in range(self.num_ways):
                rrpv[way] += 1
