"""Set-dueling Thermometer: hint-guided replacement with an adaptive
LRU fallback.

Motivated by a regression this reproduction's Fig. 19 sweep exposes: on a
BTB several times smaller than the hot working set, Algorithm 1's bypass
can *lose* to plain LRU (bypassed "cold" branches still had short-range
reuse that recency would have caught).  The classic cure is DIP-style set
dueling: dedicate a few leader sets to pure Thermometer and a few to pure
LRU, count their misses in a PSEL counter, and let the follower sets copy
whichever leader group is currently missing less.

When hints help (the common case), followers run Algorithm 1 unchanged;
when hints hurt, the structure degrades gracefully to LRU instead of
underperforming it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.btb.replacement.base import ReplacementPolicy
from repro.btb.replacement.thermometer import ThermometerPolicy

__all__ = ["DuelingThermometerPolicy"]

_THERMO_LEADER = 1
_LRU_LEADER = 2


class DuelingThermometerPolicy(ThermometerPolicy):
    """Thermometer with DIP-style dueling against an LRU fallback."""

    name = "thermometer-dueling"

    def __init__(self, hints: Mapping[int, int], default_category: int = 0,
                 bypass_enabled: bool = True, leader_spacing: int = 32,
                 psel_bits: int = 10):
        super().__init__(hints, default_category=default_category,
                         bypass_enabled=bypass_enabled)
        if leader_spacing < 2:
            raise ValueError("leader_spacing must be >= 2")
        self.leader_spacing = leader_spacing
        self.psel_max = (1 << psel_bits) - 1

    def _allocate(self) -> None:
        super()._allocate()
        self._psel = self.psel_max // 2
        self._role = [0] * self.num_sets
        for s in range(0, self.num_sets, self.leader_spacing):
            self._role[s] = _THERMO_LEADER
        for s in range(self.leader_spacing // 2, self.num_sets,
                       self.leader_spacing):
            if self._role[s] == 0:
                self._role[s] = _LRU_LEADER

    # ------------------------------------------------------------------
    def _uses_hints(self, set_idx: int) -> bool:
        role = self._role[set_idx]
        if role == _THERMO_LEADER:
            return True
        if role == _LRU_LEADER:
            return False
        # Followers copy the leader group that misses less: PSEL above the
        # midpoint means the LRU leaders are missing more.
        return self._psel <= self.psel_max // 2

    def _train_psel(self, set_idx: int) -> None:
        """A fill implies a miss; leader misses move PSEL."""
        role = self._role[set_idx]
        if role == _THERMO_LEADER and self._psel < self.psel_max:
            self._psel += 1
        elif role == _LRU_LEADER and self._psel > 0:
            self._psel -= 1

    def on_fill(self, set_idx: int, way: int, pc: int, index: int) -> None:
        super().on_fill(set_idx, way, pc, index)
        if not self.prefetch_fill_in_progress:
            self._train_psel(set_idx)

    def on_bypass(self, set_idx: int, pc: int, index: int) -> None:
        # A bypass is also a miss for dueling purposes.
        self._train_psel(set_idx)

    def choose_victim(self, set_idx: int, resident_pcs: Sequence[int],
                      incoming_pc: int, index: int) -> int:
        if self._uses_hints(set_idx):
            return super().choose_victim(set_idx, resident_pcs,
                                         incoming_pc, index)
        stamps = self._stamps[set_idx]
        return min(range(self.num_ways), key=stamps.__getitem__)

    @property
    def hint_share(self) -> float:
        """Fraction of the PSEL range currently favoring hints."""
        if self.psel_max == 0:
            return 0.0
        return 1.0 - self._psel / self.psel_max
