"""Set-associative BTB model and the branch-event replay kernel."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.btb.config import BTBConfig, DEFAULT_BTB_CONFIG
from repro.btb.entry import BTBEntry
from repro.btb.observer import BTBObserver
from repro.btb.replacement.base import BYPASS, ReplacementPolicy
from repro.trace.record import BranchKind, BranchTrace
from repro.trace.stream import AccessStream, access_stream_for

__all__ = ["BTB", "BTBStats", "IndirectBTB", "btb_access_stream",
           "replay_stream", "replay_stream_multi", "run_btb"]

_INVALID = -1


@dataclass
class BTBStats:
    """Access counters for one BTB replay."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    #: Misses that filled a previously-invalid way (cold-start fills).
    compulsory_fills: int = 0
    #: Hits whose stored target differed from the access's resolved target
    #: (indirect-branch target drift; the BTB silently re-learns on hit).
    target_mismatches: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, num_instructions: int) -> float:
        """Misses per kilo-instruction given the trace's instruction count."""
        if num_instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / num_instructions

    def __add__(self, other: "BTBStats") -> "BTBStats":
        return BTBStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            bypasses=self.bypasses + other.bypasses,
            compulsory_fills=self.compulsory_fills + other.compulsory_fills,
            target_mismatches=(self.target_mismatches
                               + other.target_mismatches))


class BTB:
    """A set-associative branch target buffer with a pluggable policy.

    Storage is flat numpy: one ``(num_sets, ways)`` array per field, so
    whole-BTB inspection (``resident_pcs``, occupancy, snapshotting) is
    vectorized.  The per-access tag match runs through a per-set pc → way
    directory kept in lockstep with the tag array — constant-time instead
    of a way scan — while the policy interface is unchanged, so every
    registry policy runs as before.

    Structured observation: :meth:`add_observer` attaches a
    :class:`~repro.btb.observer.BTBObserver` that receives hit / fill /
    evict / bypass events (this replaced the old ``eviction_listener``
    callable seam).
    """

    def __init__(self, config: BTBConfig = DEFAULT_BTB_CONFIG,
                 policy: Optional[ReplacementPolicy] = None):
        from repro.btb.replacement.lru import LRUPolicy
        self.config = config
        self.policy = policy if policy is not None else LRUPolicy()
        self.policy.bind(config.num_sets, config.ways)
        self.stats = BTBStats()
        nsets, ways = config.num_sets, config.ways
        self._tags = np.full((nsets, ways), _INVALID, dtype=np.int64)
        self._targets = np.zeros((nsets, ways), dtype=np.int64)
        self._reused = np.zeros((nsets, ways), dtype=np.bool_)
        self._fill_index = np.zeros((nsets, ways), dtype=np.int64)
        #: Per-set pc → way directory mirroring ``_tags``.
        self._dir: List[Dict[int, int]] = [{} for _ in range(nsets)]
        self._observers: List[BTBObserver] = []

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_observer(self, observer: BTBObserver) -> BTBObserver:
        """Attach a structured event observer; returns it for chaining."""
        self._observers.append(observer)
        return observer

    def remove_observer(self, observer: BTBObserver) -> None:
        self._observers.remove(observer)

    # ------------------------------------------------------------------
    def lookup(self, pc: int) -> Optional[int]:
        """Non-mutating probe: the stored target for ``pc``, or None."""
        s = self.config.set_index(pc)
        way = self._dir[s].get(pc)
        if way is None:
            return None
        return int(self._targets[s, way])

    def contains(self, pc: int) -> bool:
        return self.lookup(pc) is not None

    def access(self, pc: int, target: int = 0, index: int = 0) -> bool:
        """One demand access by a taken branch; returns True on hit.

        On a miss the branch is inserted (possibly evicting a victim chosen
        by the policy, or bypassing if the policy so decides).
        """
        return self._access_with_set(self.config.set_index(pc), pc, target,
                                     index)

    def _access_with_set(self, s: int, pc: int, target: int,
                         index: int) -> bool:
        """The access hot path with the set index already resolved —
        replay kernels pass the stream's precomputed ``set_indices``."""
        stats = self.stats
        stats.accesses += 1
        way = self._dir[s].get(pc)
        if way is not None:
            stats.hits += 1
            targets_row = self._targets[s]
            if targets_row[way] != target:
                stats.target_mismatches += 1
                targets_row[way] = target
            self._reused[s, way] = True
            self.policy.on_hit(s, way, pc, index)
            if self._observers:
                for observer in self._observers:
                    observer.on_hit(self, s, way, pc, target, index)
            return True
        stats.misses += 1
        self._insert(s, pc, target, index)
        return False

    def insert(self, pc: int, target: int = 0, index: int = 0) -> bool:
        """Insert without a demand access (prefetch fill).

        Returns True if the entry was actually installed (not already
        present and not bypassed).  Prefetch fills do not count as demand
        accesses in :attr:`stats`.
        """
        s = self.config.set_index(pc)
        way = self._dir[s].get(pc)
        if way is not None:
            self._targets[s, way] = target
            return False
        self.policy.prefetch_fill_in_progress = True
        try:
            return self._insert(s, pc, target, index)
        finally:
            self.policy.prefetch_fill_in_progress = False

    def _insert(self, s: int, pc: int, target: int, index: int) -> bool:
        tags = self._tags[s]
        directory = self._dir[s]
        if len(directory) < self.config.ways:
            way = int((tags == _INVALID).argmax())
            tags[way] = pc
            self._targets[s, way] = target
            self._reused[s, way] = False
            self._fill_index[s, way] = index
            directory[pc] = way
            self.stats.compulsory_fills += 1
            self.policy.on_fill(s, way, pc, index)
            if self._observers:
                for observer in self._observers:
                    observer.on_fill(self, s, way, pc, target, index)
            return True
        # The numpy tag row is handed to the policy as-is: materializing a
        # list per miss (``tags.tolist()``) dominated the miss path, and no
        # in-tree policy needs more than iteration/indexing over it.
        victim = self.policy.choose_victim(s, tags, pc, index)
        if victim == BYPASS:
            self.stats.bypasses += 1
            self.policy.on_bypass(s, pc, index)
            if self._observers:
                for observer in self._observers:
                    observer.on_bypass(self, s, pc, index)
            return False
        if not 0 <= victim < self.config.ways:
            raise ValueError(
                f"policy {self.policy.name!r} returned invalid victim way "
                f"{victim} (ways={self.config.ways})")
        self.stats.evictions += 1
        victim_pc = int(tags[victim])
        if self._observers:
            for observer in self._observers:
                observer.on_evict(self, s, victim, victim_pc, pc, index)
        self.policy.on_evict(s, victim, victim_pc,
                             bool(self._reused[s, victim]))
        del directory[victim_pc]
        directory[pc] = victim
        tags[victim] = pc
        self._targets[s, victim] = target
        self._reused[s, victim] = False
        self._fill_index[s, victim] = index
        self.policy.on_fill(s, victim, pc, index)
        if self._observers:
            for observer in self._observers:
                observer.on_fill(self, s, victim, pc, target, index)
        return True

    # ------------------------------------------------------------------
    def entry(self, set_idx: int, way: int) -> Optional[BTBEntry]:
        """Materialize the entry stored at ``(set_idx, way)``, if valid."""
        if self._tags[set_idx, way] == _INVALID:
            return None
        return BTBEntry(pc=int(self._tags[set_idx, way]),
                        target=int(self._targets[set_idx, way]),
                        fill_index=int(self._fill_index[set_idx, way]),
                        reused=bool(self._reused[set_idx, way]))

    def resident_pcs(self) -> List[int]:
        """All valid tags currently stored (unordered) — vectorized."""
        return self._tags[self._tags != _INVALID].tolist()

    @property
    def occupancy(self) -> int:
        return int((self._tags != _INVALID).sum())

    def __repr__(self) -> str:
        return (f"BTB(entries={self.config.entries}, ways={self.config.ways}, "
                f"policy={self.policy.name}, occupancy={self.occupancy})")


class IndirectBTB:
    """The separate indirect-target buffer of Table 1 (4096-entry).

    Direct-mapped on (pc, path-history) like a simple ITTAGE-free IBTB; only
    used by the frontend timing model to decide whether an indirect branch's
    *target* was predicted correctly (the main BTB still tracks presence of
    the branch itself).
    """

    def __init__(self, entries: int = 4096, history_bits: int = 8):
        if entries < 1:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.history_bits = history_bits
        self._table: Dict[int, int] = {}
        self._history = 0
        self.hits = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.entries

    def predict_and_update(self, pc: int, actual_target: int) -> bool:
        """Predict ``pc``'s target, then train with the actual target."""
        idx = self._index(pc)
        predicted = self._table.get(idx)
        correct = predicted == actual_target
        if correct:
            self.hits += 1
        else:
            self.misses += 1
            self._table[idx] = actual_target
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) ^ (actual_target >> 2)) & mask
        return correct


# ----------------------------------------------------------------------
# Trace replay — the branch-event kernel
# ----------------------------------------------------------------------

def btb_access_stream(trace: BranchTrace) -> Tuple[np.ndarray, np.ndarray]:
    """The (pcs, targets) of the BTB demand-access stream of a trace.

    Taken branches only; returns are excluded because they are served by the
    return address stack, not the BTB (DESIGN.md §5).  For the full
    columnar view (set indices, next-use distances, list mirrors) build an
    :class:`~repro.trace.stream.AccessStream` instead.
    """
    mask = trace.taken & (trace.kinds != int(BranchKind.RETURN))
    return trace.pcs[mask], trace.targets[mask]


def replay_stream(stream: AccessStream, btb,
                  record_per_branch: bool = False):
    """Replay one columnar access stream through any BTB model.

    This is the single replay kernel shared by :func:`run_btb`, the OPT
    profiler, and the harness miss paths.  When ``btb`` is a plain
    :class:`BTB` on the stream's geometry, the stream's precomputed set
    indices feed the hot path directly; any other model (partial-tag,
    block-based, hierarchies) is driven through its own ``access``.

    Returns ``btb.stats``; with ``record_per_branch`` also returns a dict
    pc → [accesses, hits] used by the profiling pipeline.

    When the replay is unobserved (no :class:`BTBObserver` attached, no
    per-branch recording) and the policy has a set-partitioned fast-path
    kernel (:mod:`repro.btb.kernels`), the replay is executed per set by
    that kernel — bit-identical stats and final state, a fraction of the
    per-access interpreter work.  Anything else takes the reference loop
    below.
    """
    fast = (type(btb) is BTB and btb.config == stream.config)
    if fast and not record_per_branch and not btb._observers:
        from repro.btb import kernels
        if kernels.try_fast_replay(stream, btb) is not None:
            return btb.stats
    pcs = stream.pcs_list
    targets = stream.targets_list
    if not record_per_branch:
        if fast:
            access = btb._access_with_set
            for i, s in enumerate(stream.sets_list):
                access(s, pcs[i], targets[i], i)
        else:
            access = btb.access
            for i, pc in enumerate(pcs):
                access(pc, targets[i], i)
        return btb.stats
    per_branch: Dict[int, List[int]] = {}
    if fast:
        access = btb._access_with_set
        sets = stream.sets_list
    else:
        access = btb.access
        sets = None
    for i, pc in enumerate(pcs):
        hit = (access(sets[i], pc, targets[i], i) if sets is not None
               else access(pc, targets[i], i))
        counts = per_branch.get(pc)
        if counts is None:
            counts = [0, 0]
            per_branch[pc] = counts
        counts[0] += 1
        if hit:
            counts[1] += 1
    return btb.stats, per_branch


def replay_stream_multi(stream: AccessStream, btbs) -> List[BTBStats]:
    """Replay one access stream through several BTB models in a single
    sweep; returns their stats in order.

    Result-identical to calling :func:`replay_stream` once per model —
    that is the contract ``tests/test_multi_replay.py`` enforces — but
    the stream is traversed once instead of once per model.  Models whose
    policy has a fast-path kernel replay through it (all kernels share
    the stream's memoized partition and list mirrors, so the per-sweep
    setup is paid once); the rest are driven together through one shared
    interpreter loop over the stream columns.
    """
    from repro.btb import kernels
    slow = []
    for btb in btbs:
        fast = (type(btb) is BTB and btb.config == stream.config
                and not btb._observers)
        if not (fast and kernels.try_fast_replay(stream, btb) is not None):
            slow.append(btb)
    if slow:
        pcs = stream.pcs_list
        targets = stream.targets_list
        sets = stream.sets_list
        drivers = [(btb._access_with_set, True)
                   if type(btb) is BTB and btb.config == stream.config
                   else (btb.access, False)
                   for btb in slow]
        for i, pc in enumerate(pcs):
            t = targets[i]
            s = sets[i]
            for access, with_set in drivers:
                if with_set:
                    access(s, pc, t, i)
                else:
                    access(pc, t, i)
    return [btb.stats for btb in btbs]


def run_btb(trace_or_stream: Union[BranchTrace, AccessStream], btb,
            record_per_branch: bool = False):
    """Replay a trace's BTB access stream through ``btb``.

    Accepts either a :class:`~repro.trace.record.BranchTrace` (the shared
    :class:`~repro.trace.stream.AccessStream` for ``btb.config`` is looked
    up or built) or an already-built stream.  Returns the BTB's stats;
    with ``record_per_branch`` also returns a dict pc → [accesses, hits].
    """
    if isinstance(trace_or_stream, AccessStream):
        stream = trace_or_stream
    else:
        stream = access_stream_for(trace_or_stream, btb.config)
    return replay_stream(stream, btb, record_per_branch=record_per_branch)
