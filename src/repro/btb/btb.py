"""Set-associative BTB model and trace replay helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.btb.config import BTBConfig, DEFAULT_BTB_CONFIG
from repro.btb.entry import BTBEntry
from repro.btb.replacement.base import BYPASS, ReplacementPolicy
from repro.trace.record import BranchKind, BranchTrace

__all__ = ["BTB", "BTBStats", "IndirectBTB", "btb_access_stream", "run_btb"]

_INVALID = -1


@dataclass
class BTBStats:
    """Access counters for one BTB replay."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    #: Misses that filled a previously-invalid way (cold-start fills).
    compulsory_fills: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, num_instructions: int) -> float:
        """Misses per kilo-instruction given the trace's instruction count."""
        if num_instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / num_instructions

    def __add__(self, other: "BTBStats") -> "BTBStats":
        return BTBStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            bypasses=self.bypasses + other.bypasses,
            compulsory_fills=self.compulsory_fills + other.compulsory_fills)


class BTB:
    """A set-associative branch target buffer with a pluggable policy.

    The hot path stores tags/targets in flat per-set lists; the richer
    :class:`BTBEntry` view is materialized on demand for inspection.
    """

    def __init__(self, config: BTBConfig = DEFAULT_BTB_CONFIG,
                 policy: Optional[ReplacementPolicy] = None):
        from repro.btb.replacement.lru import LRUPolicy
        self.config = config
        self.policy = policy if policy is not None else LRUPolicy()
        self.policy.bind(config.num_sets, config.ways)
        self.stats = BTBStats()
        nsets, ways = config.num_sets, config.ways
        self._tags: List[List[int]] = [[_INVALID] * ways for _ in range(nsets)]
        self._targets: List[List[int]] = [[0] * ways for _ in range(nsets)]
        self._reused: List[List[bool]] = [[False] * ways for _ in range(nsets)]
        self._fill_index: List[List[int]] = [[0] * ways for _ in range(nsets)]
        #: Optional callable ``(set_idx, victim_pc, incoming_pc, index)``
        #: invoked on every eviction — used by replacement-accuracy probes.
        self.eviction_listener = None

    # ------------------------------------------------------------------
    def lookup(self, pc: int) -> Optional[int]:
        """Non-mutating probe: the stored target for ``pc``, or None."""
        s = self.config.set_index(pc)
        tags = self._tags[s]
        for way in range(self.config.ways):
            if tags[way] == pc:
                return self._targets[s][way]
        return None

    def contains(self, pc: int) -> bool:
        return self.lookup(pc) is not None

    def access(self, pc: int, target: int = 0, index: int = 0) -> bool:
        """One demand access by a taken branch; returns True on hit.

        On a miss the branch is inserted (possibly evicting a victim chosen
        by the policy, or bypassing if the policy so decides).
        """
        cfg = self.config
        s = cfg.set_index(pc)
        tags = self._tags[s]
        self.stats.accesses += 1
        for way in range(cfg.ways):
            if tags[way] == pc:
                self.stats.hits += 1
                self._reused[s][way] = True
                self._targets[s][way] = target
                self.policy.on_hit(s, way, pc, index)
                return True
        self.stats.misses += 1
        self._insert(s, pc, target, index)
        return False

    def insert(self, pc: int, target: int = 0, index: int = 0) -> bool:
        """Insert without a demand access (prefetch fill).

        Returns True if the entry was actually installed (not already
        present and not bypassed).  Prefetch fills do not count as demand
        accesses in :attr:`stats`.
        """
        s = self.config.set_index(pc)
        tags = self._tags[s]
        for way in range(self.config.ways):
            if tags[way] == pc:
                self._targets[s][way] = target
                return False
        self.policy.prefetch_fill_in_progress = True
        try:
            return self._insert(s, pc, target, index)
        finally:
            self.policy.prefetch_fill_in_progress = False

    def _insert(self, s: int, pc: int, target: int, index: int) -> bool:
        cfg = self.config
        tags = self._tags[s]
        for way in range(cfg.ways):
            if tags[way] == _INVALID:
                tags[way] = pc
                self._targets[s][way] = target
                self._reused[s][way] = False
                self._fill_index[s][way] = index
                self.stats.compulsory_fills += 1
                self.policy.on_fill(s, way, pc, index)
                return True
        victim = self.policy.choose_victim(s, tags, pc, index)
        if victim == BYPASS:
            self.stats.bypasses += 1
            self.policy.on_bypass(s, pc, index)
            return False
        if not 0 <= victim < cfg.ways:
            raise ValueError(
                f"policy {self.policy.name!r} returned invalid victim way "
                f"{victim} (ways={cfg.ways})")
        self.stats.evictions += 1
        if self.eviction_listener is not None:
            self.eviction_listener(s, tags[victim], pc, index)
        self.policy.on_evict(s, victim, tags[victim], self._reused[s][victim])
        tags[victim] = pc
        self._targets[s][victim] = target
        self._reused[s][victim] = False
        self._fill_index[s][victim] = index
        self.policy.on_fill(s, victim, pc, index)
        return True

    # ------------------------------------------------------------------
    def entry(self, set_idx: int, way: int) -> Optional[BTBEntry]:
        """Materialize the entry stored at ``(set_idx, way)``, if valid."""
        if self._tags[set_idx][way] == _INVALID:
            return None
        return BTBEntry(pc=self._tags[set_idx][way],
                        target=self._targets[set_idx][way],
                        fill_index=self._fill_index[set_idx][way],
                        reused=self._reused[set_idx][way])

    def resident_pcs(self) -> List[int]:
        """All valid tags currently stored (unordered)."""
        return [tag for set_tags in self._tags for tag in set_tags
                if tag != _INVALID]

    @property
    def occupancy(self) -> int:
        return len(self.resident_pcs())

    def __repr__(self) -> str:
        return (f"BTB(entries={self.config.entries}, ways={self.config.ways}, "
                f"policy={self.policy.name}, occupancy={self.occupancy})")


class IndirectBTB:
    """The separate indirect-target buffer of Table 1 (4096-entry).

    Direct-mapped on (pc, path-history) like a simple ITTAGE-free IBTB; only
    used by the frontend timing model to decide whether an indirect branch's
    *target* was predicted correctly (the main BTB still tracks presence of
    the branch itself).
    """

    def __init__(self, entries: int = 4096, history_bits: int = 8):
        if entries < 1:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.history_bits = history_bits
        self._table: Dict[int, int] = {}
        self._history = 0
        self.hits = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.entries

    def predict_and_update(self, pc: int, actual_target: int) -> bool:
        """Predict ``pc``'s target, then train with the actual target."""
        idx = self._index(pc)
        predicted = self._table.get(idx)
        correct = predicted == actual_target
        if correct:
            self.hits += 1
        else:
            self.misses += 1
            self._table[idx] = actual_target
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) ^ (actual_target >> 2)) & mask
        return correct


# ----------------------------------------------------------------------
# Trace replay
# ----------------------------------------------------------------------

def btb_access_stream(trace: BranchTrace) -> Tuple[np.ndarray, np.ndarray]:
    """The (pcs, targets) of the BTB demand-access stream of a trace.

    Taken branches only; returns are excluded because they are served by the
    return address stack, not the BTB (DESIGN.md §5).
    """
    mask = trace.taken & (trace.kinds != int(BranchKind.RETURN))
    return trace.pcs[mask], trace.targets[mask]


def run_btb(trace: BranchTrace, btb: BTB,
            record_per_branch: bool = False):
    """Replay a trace's BTB access stream through ``btb``.

    Returns the BTB's stats; with ``record_per_branch`` also returns a dict
    pc → [accesses, hits] used by the profiling pipeline.
    """
    pcs, targets = btb_access_stream(trace)
    access = btb.access
    if not record_per_branch:
        for i in range(len(pcs)):
            access(int(pcs[i]), int(targets[i]), i)
        return btb.stats
    per_branch: Dict[int, List[int]] = {}
    for i in range(len(pcs)):
        pc = int(pcs[i])
        hit = access(pc, int(targets[i]), i)
        counts = per_branch.get(pc)
        if counts is None:
            counts = [0, 0]
            per_branch[pc] = counts
        counts[0] += 1
        if hit:
            counts[1] += 1
    return btb.stats, per_branch
