"""Structured BTB event observation.

The BTB models emit four structured events — hit, fill, evict, bypass —
through a uniform :class:`BTBObserver` protocol.  This replaces the old
ad-hoc ``BTB.eviction_listener`` callable (which exposed only evictions,
with a positional signature every consumer had to memorize) and is the one
observability seam shared by :class:`~repro.btb.btb.BTB`,
:class:`~repro.btb.compressed.PartialTagBTB`,
:class:`~repro.btb.block_btb.BlockBTB`, and
:class:`~repro.btb.hierarchy.TwoLevelBTB`.

Observers attach with ``btb.add_observer(observer)``; every event carries
the emitting BTB (so one observer can watch several levels of a
hierarchy), the set and way involved, the branch pc, and the position of
the triggering access in the BTB access stream.  All hooks default to
no-ops — subclass and override only the events you need.
"""

from __future__ import annotations

from typing import List, NamedTuple

__all__ = ["BTBObserver", "BTBEvent", "EventRecorder"]


class BTBObserver:
    """Base event sink for BTB activity.  All hooks are no-ops."""

    def on_hit(self, btb, set_idx: int, way: int, pc: int, target: int,
               index: int) -> None:
        """``pc`` hit in ``(set_idx, way)``; ``target`` is the resolved
        target being (re)stored by this access."""

    def on_fill(self, btb, set_idx: int, way: int, pc: int, target: int,
                index: int) -> None:
        """``pc`` was installed into ``(set_idx, way)`` (demand miss or
        prefetch fill)."""

    def on_evict(self, btb, set_idx: int, way: int, victim_pc: int,
                 incoming_pc: int, index: int) -> None:
        """``victim_pc`` was evicted from ``(set_idx, way)`` to make room
        for ``incoming_pc``."""

    def on_bypass(self, btb, set_idx: int, pc: int, index: int) -> None:
        """``pc`` missed and the policy chose not to insert it."""


class BTBEvent(NamedTuple):
    """One recorded event (see :class:`EventRecorder`)."""

    kind: str          #: ``"hit" | "fill" | "evict" | "bypass"``
    set_idx: int
    way: int           #: ``-1`` for bypass events (no way involved)
    pc: int            #: victim pc for evictions
    other: int         #: stored target for hit/fill, incoming pc for evict
    index: int


class EventRecorder(BTBObserver):
    """An observer that appends every event to :attr:`events` — the
    building block for traces, metrics, and tests."""

    def __init__(self) -> None:
        self.events: List[BTBEvent] = []

    def on_hit(self, btb, set_idx, way, pc, target, index) -> None:
        self.events.append(BTBEvent("hit", set_idx, way, pc, target, index))

    def on_fill(self, btb, set_idx, way, pc, target, index) -> None:
        self.events.append(BTBEvent("fill", set_idx, way, pc, target, index))

    def on_evict(self, btb, set_idx, way, victim_pc, incoming_pc,
                 index) -> None:
        self.events.append(BTBEvent("evict", set_idx, way, victim_pc,
                                    incoming_pc, index))

    def on_bypass(self, btb, set_idx, pc, index) -> None:
        self.events.append(BTBEvent("bypass", set_idx, -1, pc, 0, index))

    def of_kind(self, kind: str) -> List[BTBEvent]:
        return [e for e in self.events if e.kind == kind]
