"""Branch Target Buffer substrate.

A set-associative BTB with pluggable replacement policies, mirroring the
paper's 8K-entry, 4-way baseline (Table 1).  Only *taken* branches occupy BTB
entries (returns are handled by the return address stack and never consult
the BTB — see DESIGN.md §5).
"""

from repro.btb.config import BTBConfig, DEFAULT_BTB_CONFIG
from repro.btb.entry import BTBEntry
from repro.btb.btb import (BTB, BTBStats, IndirectBTB, btb_access_stream,
                           replay_stream, run_btb)
from repro.btb.observer import BTBEvent, BTBObserver, EventRecorder
from repro.btb.block_btb import BlockBTB, BlockBTBStats, run_block_btb
from repro.btb.compressed import PartialTagBTB, iso_storage_compressed_config
from repro.btb.hierarchy import TwoLevelBTB, TwoLevelStats
from repro.btb.storage import (BTBEntryLayout, BTBStorageModel,
                               iso_storage_entries)
from repro.btb.replacement import (BYPASS, BeladyOptimalPolicy, DIPPolicy,
                                   FIFOPolicy, GHRPPolicy, HawkeyePolicy,
                                   LRUPolicy, MRUPolicy,
                                   OnlineThermometerPolicy, RandomPolicy,
                                   ReplacementPolicy, SHiPPolicy,
                                   SRRIPPolicy, ThermometerPolicy,
                                   TreePLRUPolicy, make_policy,
                                   policy_names)

__all__ = [
    "BTB",
    "BTBConfig",
    "BTBEntry",
    "BTBEvent",
    "BTBObserver",
    "BTBStats",
    "BYPASS",
    "EventRecorder",
    "BlockBTB",
    "BlockBTBStats",
    "BTBEntryLayout",
    "PartialTagBTB",
    "BTBStorageModel",
    "BeladyOptimalPolicy",
    "DIPPolicy",
    "OnlineThermometerPolicy",
    "SHiPPolicy",
    "TreePLRUPolicy",
    "TwoLevelBTB",
    "TwoLevelStats",
    "DEFAULT_BTB_CONFIG",
    "FIFOPolicy",
    "GHRPPolicy",
    "HawkeyePolicy",
    "IndirectBTB",
    "LRUPolicy",
    "MRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "ThermometerPolicy",
    "btb_access_stream",
    "iso_storage_compressed_config",
    "iso_storage_entries",
    "make_policy",
    "policy_names",
    "replay_stream",
    "run_block_btb",
    "run_btb",
]
