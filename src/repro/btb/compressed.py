"""Partial-tag (compressed) BTB — the §5 related-work storage trade.

Real BTBs rarely store full tags: a partial tag shrinks every entry, buying
more entries for the same budget, at the cost of *aliasing* — two branches
whose partial tags collide in a set are indistinguishable, so a lookup can
return a **false hit** with the wrong target.  The frontend fetches down
the wrong path and pays an execute-time redirect, exactly like a wrong
indirect target.

The paper lists BTB compression as orthogonal to Thermometer ("can be
combined ... to further improve storage efficiency"); this module makes
that claim testable: :class:`PartialTagBTB` works with every replacement
policy, and :func:`iso_storage_compressed_config` computes how many extra
entries a tag width buys under the
:class:`~repro.btb.storage.BTBEntryLayout` budget model.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.btb.btb import BTB
from repro.btb.config import BTBConfig
from repro.btb.replacement.base import ReplacementPolicy
from repro.btb.storage import BTBEntryLayout, DEFAULT_ENTRY_LAYOUT

__all__ = ["PartialTagBTB", "iso_storage_compressed_config"]


class PartialTagBTB(BTB):
    """A BTB whose tags are hashed down to ``tag_bits`` bits.

    The model stores the full pc internally (the policy hooks and analysis
    still see true identities) but *matches* on the partial tag, so false
    hits occur exactly as in hardware.  :attr:`false_hits` counts them and
    :attr:`last_hit_was_false` flags the most recent access — the frontend
    simulator charges a wrong-path redirect when it is set.
    """

    def __init__(self, config: BTBConfig,
                 policy: Optional[ReplacementPolicy] = None,
                 tag_bits: int = 12):
        if tag_bits < 1:
            raise ValueError("tag_bits must be >= 1")
        super().__init__(config, policy)
        self.tag_bits = tag_bits
        self._tag_mask = (1 << tag_bits) - 1
        self.false_hits = 0
        self.last_hit_was_false = False

    # ------------------------------------------------------------------
    def partial_tag(self, pc: int) -> int:
        """Hash the pc's upper bits (the set index consumes the low ones)."""
        word = pc >> 2
        folded = word // max(1, self.config.num_sets)
        return (folded ^ (folded >> self.tag_bits)) & self._tag_mask

    def access(self, pc: int, target: int = 0, index: int = 0) -> bool:
        cfg = self.config
        s = cfg.set_index(pc)
        tags_row = self._tags[s].tolist()
        self.stats.accesses += 1
        self.last_hit_was_false = False
        wanted = self.partial_tag(pc)
        for way, stored in enumerate(tags_row):
            if stored == _INVALID_PC:
                continue
            if cfg.set_index(stored) == s and \
                    self.partial_tag(stored) == wanted:
                self.stats.hits += 1
                if stored != pc:
                    # Aliased entry: the hardware believes it hit, serves
                    # the wrong target, and re-learns this branch's target
                    # into the aliased entry (tag unchanged — they are
                    # indistinguishable).  The pc → way directory tracks
                    # the true identity takeover.
                    self.false_hits += 1
                    self.last_hit_was_false = True
                    self._tags[s, way] = pc
                    directory = self._dir[s]
                    del directory[stored]
                    directory[pc] = way
                elif self._targets[s, way] != target:
                    self.stats.target_mismatches += 1
                self._reused[s, way] = True
                self._targets[s, way] = target
                self.policy.on_hit(s, way, pc, index)
                if self._observers:
                    for observer in self._observers:
                        observer.on_hit(self, s, way, pc, target, index)
                return True
        self.stats.misses += 1
        self._insert(s, pc, target, index)
        return False

    @property
    def false_hit_rate(self) -> float:
        """False hits as a fraction of all reported hits."""
        if self.stats.hits == 0:
            return 0.0
        return self.false_hits / self.stats.hits


_INVALID_PC = -1


def iso_storage_compressed_config(
        baseline: BTBConfig,
        tag_bits: int,
        layout: BTBEntryLayout = DEFAULT_ENTRY_LAYOUT,
        hint_bits: int = 0) -> BTBConfig:
    """The geometry affordable at ``baseline``'s storage budget when tags
    shrink to ``tag_bits`` (and optionally ``hint_bits`` are added).

    E.g. the default 75-bit entry with a 16→12-bit tag fits ~6% more
    entries in the same budget.
    """
    if tag_bits < 1:
        raise ValueError("tag_bits must be >= 1")
    budget = baseline.entries * layout.bits
    compressed = BTBEntryLayout(
        tag_bits=tag_bits, target_bits=layout.target_bits,
        branch_type_bits=layout.branch_type_bits,
        replacement_bits=layout.replacement_bits,
        hint_bits=layout.hint_bits + hint_bits)
    entries = budget // compressed.bits
    entries = max(baseline.ways,
                  (entries // baseline.ways) * baseline.ways)
    return replace(baseline, entries=entries)
