"""Run the asyncio simulation service (the repo's network front door).

Serve a multi-tenant artifact store on a local socket::

    python -m repro.tools.serve --cache-dir /tmp/repro-cache --port 7979
    python -m repro.tools.serve --cache-dir /tmp/repro-cache \\
        --quota alice=268435456 --quota bob=268435456 --jobs 2

Clients speak one JSON object per line (see ``docs/SERVICE.md`` and
:mod:`repro.service.protocol`); concurrent requests for the same
(app, input, config) group coalesce into one shared multi-policy sweep.

``--smoke`` runs a self-test instead of serving: it binds an ephemeral
port, submits two concurrent coalescible sweep requests plus one under
a different tenant, and asserts that the coalesced pair shared exactly
one sweep and one run while the tenants' namespaces stayed isolated —
the CI service-smoke job runs exactly this.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
from pathlib import Path
from typing import Dict, List, Optional

from repro.service.client import request_once
from repro.service.server import SimulationService, serve
from repro.telemetry.logconfig import (add_logging_args, emit,
                                       setup_cli_logging)

__all__ = ["main"]

# Stable name: __name__ is "__main__" under python -m, which
# would escape the repro logger tree.
log = logging.getLogger("repro.tools.serve")


def _parse_quotas(entries: List[str]) -> Dict[str, int]:
    quotas: Dict[str, int] = {}
    for entry in entries:
        name, _, raw = entry.partition("=")
        if not name or not raw:
            raise ValueError(f"--quota wants TENANT=BYTES, got {entry!r}")
        quotas[name] = int(raw)
    return quotas


async def _smoke(cache_dir: str, jobs: int) -> int:
    """Self-test: coalescing + tenant isolation over a real socket."""
    service = SimulationService(cache_dir, jobs=jobs,
                                coalesce_window=0.25)
    server = await service.start("127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    emit(f"smoke: service on {host}:{port}")
    failures: List[str] = []

    def check(ok: bool, what: str) -> None:
        emit(f"smoke: {'ok' if ok else 'FAIL'} - {what}")
        if not ok:
            failures.append(what)

    try:
        sweep = {"op": "sweep", "tenant": "alice", "apps": ["tomcat"],
                 "policies": ["lru", "srrip"], "mode": "misses",
                 "length": 4000}
        events_a, events_b = await asyncio.gather(
            request_once(host, port, sweep),
            request_once(host, port, sweep))
        done_a, done_b = events_a[-1], events_b[-1]
        check(done_a.get("ok") is True and done_b.get("ok") is True,
              "both coalescible requests completed")
        check(done_a.get("coalesced") is True
              and done_b.get("coalesced") is True,
              "requests were coalesced into one batch")
        check(done_a.get("run_id") == done_b.get("run_id"),
              "coalesced requests shared one engine run")
        check(done_a.get("sweeps") == 1,
              f"one shared multi-policy sweep "
              f"(got {done_a.get('sweeps')})")
        results_a = [e for e in events_a if e.get("event") == "result"]
        check(len(results_a) == 2,
              f"both results streamed back (got {len(results_a)})")

        other = dict(sweep, tenant="bob", policies=["lru"])
        events_c = await request_once(host, port, other)
        done_c = events_c[-1]
        check(done_c.get("ok") is True, "distinct-tenant request "
                                        "completed")
        check(done_c.get("run_id") != done_a.get("run_id"),
              "distinct tenant ran in its own engine run")
        root = Path(cache_dir)
        check((root / "tenants" / "alice" / "misses").is_dir()
              and (root / "tenants" / "bob" / "misses").is_dir(),
              "tenants have separate artifact roots")

        status = (await request_once(host, port, {"op": "status"}))[-1]
        tenants = status.get("tenants", {})
        check(set(tenants) >= {"alice", "bob"},
              f"status reports both namespaces (got {sorted(tenants)})")
        alice_cache = tenants.get("alice", {}).get("cache", {})
        bob_cache = tenants.get("bob", {}).get("cache", {})
        check(alice_cache.get("misses", 0) > 0
              and bob_cache.get("misses", 0) > 0
              and alice_cache != bob_cache,
              "per-namespace cache stats are tracked independently")

        metrics = (await request_once(host, port, {"op": "metrics"}))[-1]
        text = metrics.get("text", "")
        check(metrics.get("event") == "metrics" and bool(text),
              "metrics op returns a text exposition document")
        check("repro_service_request_seconds_bucket" in text,
              "metrics expose the per-tenant request-latency histogram")
        check('tenant="alice"' in text and 'tenant="bob"' in text,
              "metrics carry per-tenant labels for both tenants")
        check("repro_service_requests_total" in text,
              "metrics expose the per-tenant request counter")

        if done_a.get("manifest"):
            emit(f"smoke: run manifest at {done_a['manifest']}")
            from repro.telemetry.manifest import read_spans
            from repro.telemetry.tracing import tracing_enabled
            if tracing_enabled():
                spans = read_spans(done_a["manifest"])
                check(any(s.get("name") == "job" for s in spans)
                      and any(s.get("name") == "service/request"
                              for s in spans),
                      f"trace spans journaled with the run "
                      f"({len(spans)} span(s))")
    finally:
        server.close()
        await server.wait_closed()
    emit(f"smoke: {'PASS' if not failures else 'FAIL'} "
         f"({len(failures)} failure(s))")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.serve",
        description="Serve simulate/profile/sweep requests over "
                    "line-JSON with request coalescing and "
                    "multi-tenant artifact stores.")
    parser.add_argument("--cache-dir", required=True,
                        help="root of the multi-tenant artifact store")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks a free port (announced on stdout)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes per engine run")
    parser.add_argument("--window", type=float, default=0.05,
                        help="request-coalescing window in seconds")
    parser.add_argument("--quota", action="append", default=[],
                        metavar="TENANT=BYTES",
                        help="per-tenant store quota (repeatable)")
    parser.add_argument("--max-retries", type=int, default=None)
    parser.add_argument("--job-timeout", type=float, default=None)
    parser.add_argument("--smoke", action="store_true",
                        help="run the coalescing/tenancy self-test and "
                             "exit instead of serving")
    add_logging_args(parser)
    args = parser.parse_args(argv)
    setup_cli_logging(args)
    try:
        quotas = _parse_quotas(args.quota)
    except ValueError as exc:
        log.error("%s", exc)
        return 2
    if args.smoke:
        return asyncio.run(_smoke(args.cache_dir, jobs=args.jobs))
    try:
        asyncio.run(serve(args.cache_dir, host=args.host, port=args.port,
                          jobs=args.jobs, coalesce_window=args.window,
                          quotas=quotas, max_retries=args.max_retries,
                          job_timeout=args.job_timeout))
    except KeyboardInterrupt:
        emit("interrupted; shutting down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
