"""A terminal dashboard for runs and the simulation service.

``top`` for the repro stack: point it at a **running service** and it
polls the ``status`` and ``metrics`` ops (per-tenant request rates and
latency quantiles, open batches, cache effectiveness, recent runs), or
point it at a **run directory / cache root** and it tails the run's
journal (job-state counts, slowest spans, cache stats) — either way the
screen refreshes in place with plain ANSI, no curses::

    python -m repro.tools.top --host 127.0.0.1 --port 7979   # service
    python -m repro.tools.top                                # latest run
    python -m repro.tools.top path/to/runs/20260807-... --once

``--once`` renders a single frame and exits (what the tests and CI
drive); ``--interval`` sets the poll cadence; ``--no-clear`` appends
frames instead of redrawing (useful under ``watch`` or in logs).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.logconfig import (add_logging_args, emit,
                                       setup_cli_logging)
from repro.telemetry.manifest import (read_run_manifest, read_spans,
                                      resolve_run_dir)
from repro.telemetry.metrics import Histogram

__all__ = ["main", "poll_service", "render_run_frame",
           "render_service_frame"]

# Stable name: __name__ is "__main__" under python -m, which
# would escape the repro logger tree.
log = logging.getLogger("repro.tools.top")

#: ANSI "clear screen + home" prefix used between frames.
CLEAR = "\x1b[2J\x1b[H"


def _fmt_bytes(n: Optional[float]) -> str:
    if n is None:
        return "-"
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (f"{value:.0f}{unit}" if unit == "B"
                    else f"{value:.1f}{unit}")
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return lines


def _tenant_histogram(telemetry: Dict[str, Any], name: str,
                      tenant: str) -> Optional[Histogram]:
    payload = (telemetry.get("histograms") or {}).get(
        '%s{tenant="%s"}' % (name, tenant))
    if not payload:
        return None
    try:
        return Histogram.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None


def _hit_rate(cache: Dict[str, Any]) -> str:
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    total = hits + misses
    if total <= 0:
        return "-"
    return f"{100.0 * hits / total:.0f}%"


# ----------------------------------------------------------------------
# Service mode
# ----------------------------------------------------------------------

async def poll_service(host: str, port: int
                       ) -> Tuple[Dict[str, Any], str]:
    """One poll: the service's status document and its Prometheus
    metrics text, over a single short-lived connection."""
    from repro.service.client import ServiceClient
    client = await ServiceClient.connect(host, port)
    try:
        status = (await client.request({"op": "status"}))[-1]
        metrics = (await client.request({"op": "metrics"}))[-1]
    finally:
        await client.close()
    return status, str(metrics.get("text", ""))


def render_service_frame(status: Dict[str, Any], metrics_text: str,
                         previous: Optional[Dict[str, Any]] = None,
                         interval: float = 2.0) -> str:
    """One dashboard frame from a service's status + metrics poll.

    ``previous`` is the prior poll's status (for request *rates*);
    pure — all I/O stays in the caller, so tests feed canned documents.
    """
    telemetry = status.get("telemetry") or {}
    counters = telemetry.get("counters") or {}
    lines = [
        f"repro service  requests={status.get('requests', 0)}  "
        f"coalesced={status.get('coalesced_requests', 0)}  "
        f"tenants={len(status.get('tenants') or {})}  "
        f"metrics_samples={sum(1 for l in metrics_text.splitlines() if l and not l.startswith('#'))}",
        "",
    ]
    rows = []
    prev_counters = ((previous or {}).get("telemetry") or {}) \
        .get("counters") or {}
    for tenant, summary in sorted((status.get("tenants") or {}).items()):
        key = 'service/requests{tenant="%s"}' % tenant
        total = counters.get(key, 0)
        rate = ((total - prev_counters.get(key, 0)) / interval
                if previous is not None and interval > 0 else 0.0)
        hist = _tenant_histogram(telemetry, "service/request_seconds",
                                 tenant)
        p50 = _fmt_seconds(hist.quantile(0.5)) if hist else "-"
        p95 = _fmt_seconds(hist.quantile(0.95)) if hist else "-"
        rows.append([tenant, str(int(total)), f"{rate:.1f}/s",
                     p50, p95,
                     _hit_rate(summary.get("cache") or {}),
                     _fmt_bytes(summary.get("usage_bytes")),
                     _fmt_bytes(summary.get("quota_bytes"))])
    lines += _table(["tenant", "reqs", "rate", "p50", "p95",
                     "cache", "usage", "quota"], rows)
    runs = status.get("runs") or []
    if runs:
        lines += ["", "recent runs:"]
        lines += _table(
            ["tenant", "run", "status", "jobs", "wall"],
            [[str(r.get("tenant", "-")), str(r.get("run_id", "-")),
              str(r.get("status", "-")), str(r.get("jobs", "-")),
              (f"{r.get('wall_seconds'):.2f}s"
               if isinstance(r.get("wall_seconds"), (int, float))
               else "-")]
             for r in runs[-8:]])
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Run-directory mode
# ----------------------------------------------------------------------

def render_run_frame(path: Any, top: int = 8) -> str:
    """One dashboard frame for a run directory (journal-tolerant: an
    in-flight or interrupted run renders from its journal)."""
    run_dir = resolve_run_dir(path)
    manifest = read_run_manifest(run_dir)
    summary = manifest.summary
    states = summary.get("job_states") or {}
    lines = [
        f"run {summary.get('run_id', run_dir.name)}  "
        f"status={summary.get('status', '?')}"
        + ("  [partial]" if summary.get("partial") else "")
        + f"  jobs={summary.get('jobs', '?')}"
        + (f"  wall={summary.get('wall_seconds'):.2f}s"
           if isinstance(summary.get("wall_seconds"), (int, float))
           else ""),
        "states: " + (", ".join(f"{name}={count}" for name, count
                                in sorted(states.items())) or "-"),
    ]
    cache = summary.get("cache") or {}
    if cache:
        lines.append(
            f"cache: hit-rate={_hit_rate(cache)}  "
            f"read={_fmt_bytes(cache.get('bytes_read'))}  "
            f"written={_fmt_bytes(cache.get('bytes_written'))}")
    spans = read_spans(run_dir)
    if spans:
        lines += ["", f"slowest spans (of {len(spans)}):"]
        slowest = sorted(spans, key=lambda s: s.get("dur", 0.0),
                         reverse=True)[:top]
        lines += _table(
            ["span", "dur", "pid", "detail"],
            [[str(s.get("name", "?")),
              _fmt_seconds(float(s.get("dur", 0.0))),
              str(s.get("pid", "-")),
              " ".join(f"{k}={v}" for k, v in sorted(
                  (s.get("args") or {}).items())
                  if k in ("app", "policy", "mode", "tenant",
                           "cached", "hit"))]
             for s in slowest])
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.top",
        description="Live terminal dashboard: poll a running simulation "
                    "service, or tail a run directory's journal.")
    parser.add_argument("path", nargs="?", default=None,
                        help="run directory or cache root (omit with "
                             "--host/--port for service mode; default: "
                             "REPRO_CACHE_DIR or "
                             "~/.cache/repro-thermometer)")
    parser.add_argument("--host", default=None,
                        help="poll a service at this host (service mode)")
    parser.add_argument("--port", type=int, default=None,
                        help="service port (service mode)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between frames (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of redrawing")
    parser.add_argument("--top", type=int, default=8,
                        help="rows in the slowest-spans table")
    add_logging_args(parser)
    args = parser.parse_args(argv)
    setup_cli_logging(args)

    service_mode = args.host is not None or args.port is not None
    if service_mode and args.port is None:
        log.error("service mode needs --port")
        return 2
    host = args.host or "127.0.0.1"

    previous: Optional[Dict[str, Any]] = None
    while True:
        try:
            if service_mode:
                status, metrics_text = asyncio.run(
                    poll_service(host, args.port))
                frame = render_service_frame(status, metrics_text,
                                             previous, args.interval)
                previous = status
            else:
                path = args.path
                if path is None:
                    from repro.harness.engine import default_cache_dir
                    path = str(default_cache_dir())
                frame = render_run_frame(path, top=args.top)
        except FileNotFoundError as exc:
            log.error("%s", exc)
            return 2
        except (ConnectionError, OSError) as exc:
            log.error("service unreachable: %s", exc)
            return 2
        prefix = "" if (args.no_clear or args.once) else CLEAR
        emit(prefix + frame)
        if args.once:
            return 0
        try:
            time.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


if __name__ == "__main__":
    sys.exit(main())
