"""Replay a trace under a replacement policy (hardware side, step 4).

Examples::

    python -m repro.tools.simulate t.btrc.gz --policy srrip
    python -m repro.tools.simulate t.btrc --policy thermometer \\
        --hints hints.json --baseline lru
    python -m repro.tools.simulate t.btrc --policy opt --ipc
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.btb.btb import BTB, btb_access_stream, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.registry import make_policy, policy_names
from repro.core.hints import HintMap
from repro.frontend.simulator import simulate as run_timing
from repro.trace.formats import read_trace

__all__ = ["main"]


def _build_policy(name: str, trace, hints_path: Optional[str]):
    if name == "opt":
        pcs, _ = btb_access_stream(trace)
        return make_policy("opt", stream=pcs)
    if name == "thermometer":
        if not hints_path:
            raise ValueError("--policy thermometer requires --hints "
                             "(from repro.tools.profile)")
        return make_policy("thermometer", hints=HintMap.from_json(hints_path))
    return make_policy(name)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.simulate",
        description="Replay a branch trace through the BTB (and optionally "
                    "the frontend timing model).")
    parser.add_argument("trace", help="trace file (.btrc/.btxt[.gz])")
    parser.add_argument("--policy", default="lru",
                        help=f"one of: {', '.join(policy_names())}")
    parser.add_argument("--hints", default=None,
                        help="hint JSON (required for thermometer)")
    parser.add_argument("--entries", type=int, default=8192)
    parser.add_argument("--ways", type=int, default=4)
    parser.add_argument("--baseline", default=None, metavar="POLICY",
                        help="also run POLICY and report relative numbers")
    parser.add_argument("--ipc", action="store_true",
                        help="run the frontend timing model too")
    args = parser.parse_args(argv)

    trace = read_trace(args.trace)
    config = BTBConfig(entries=args.entries, ways=args.ways)

    def run(policy_name: str):
        policy = _build_policy(policy_name, trace, args.hints)
        stats = run_btb(trace, BTB(config, policy))
        timing = None
        if args.ipc:
            policy = _build_policy(policy_name, trace, args.hints)
            timing = run_timing(trace, btb=BTB(config, policy))
        return stats, timing

    try:
        stats, timing = run(args.policy)
    except ValueError as exc:
        parser.error(str(exc))
    print(f"{args.policy}: accesses={stats.accesses} hits={stats.hits} "
          f"misses={stats.misses} bypasses={stats.bypasses} "
          f"hit_rate={stats.hit_rate:.4f}")
    if timing is not None:
        print(f"  IPC {timing.ipc:.3f} "
              f"({timing.instructions} instructions, "
              f"{timing.cycles:.0f} cycles)")

    if args.baseline:
        base_stats, base_timing = run(args.baseline)
        reduction = (100.0 * (base_stats.misses - stats.misses)
                     / base_stats.misses if base_stats.misses else 0.0)
        print(f"{args.baseline} (baseline): misses={base_stats.misses} "
              f"hit_rate={base_stats.hit_rate:.4f}")
        print(f"  miss reduction vs {args.baseline}: {reduction:.2f}%")
        if timing is not None and base_timing is not None:
            speedup = 100.0 * timing.speedup_over(base_timing)
            print(f"  IPC speedup vs {args.baseline}: {speedup:.2f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
