"""Replay a trace under a replacement policy (hardware side, step 4).

Single-trace mode replays one trace file::

    python -m repro.tools.simulate t.btrc.gz --policy srrip
    python -m repro.tools.simulate t.btrc --policy thermometer \\
        --hints hints.json --baseline lru
    python -m repro.tools.simulate t.btrc --policy opt --ipc

Sweep mode fans an (apps × policies) matrix out through the parallel
experiment engine, with every artifact cached in the persistent store
(so a re-run is near-instant)::

    python -m repro.tools.simulate --apps cassandra,drupal,kafka,tomcat \\
        --policies lru,srrip,thermometer --jobs 4 --ipc
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from typing import List, Optional

from repro.btb.btb import BTB, run_btb
from repro.btb.config import BTBConfig
from repro.btb.replacement.registry import make_policy, policy_names
from repro.core.hints import HintMap
from repro.frontend.simulator import simulate as run_timing
from repro.harness.reporting import format_table
from repro.telemetry.logconfig import (add_logging_args, emit,
                                       setup_cli_logging)
from repro.trace.formats import read_trace
from repro.trace.stream import access_stream_for
from repro.workloads import app_names

__all__ = ["main"]

# Stable name: __name__ is "__main__" under python -m, which
# would escape the repro logger tree.
log = logging.getLogger("repro.tools.simulate")


def _build_policy(name: str, trace, hints_path: Optional[str],
                  config: BTBConfig):
    if name == "opt":
        # The shared stream is memoized per (trace, config): the policy,
        # the miss replay, and the optional timing run all reuse it.
        return make_policy("opt", stream=access_stream_for(trace, config))
    if name in ("thermometer", "thermometer-dueling"):
        if not hints_path:
            raise ValueError(f"--policy {name} requires --hints "
                             "(from repro.tools.profile)")
        return make_policy(name, hints=HintMap.from_json(hints_path))
    return make_policy(name)


def _run_sweep(args) -> int:
    """(apps × policies) matrix through the parallel experiment engine."""
    from repro.harness.engine import (ExperimentEngine, ExperimentError,
                                      SimJob, default_cache_dir)
    apps = [a for a in args.apps.split(",") if a]
    policies = [p for p in args.policies.split(",") if p]
    known_apps = set(app_names())
    known_policies = set(policy_names()) | {"thermometer-7979"}
    for app in apps:
        if app not in known_apps:
            log.error("unknown app %r; available: %s", app,
                      ", ".join(sorted(known_apps)))
            return 2
    for policy in policies:
        if policy not in known_policies:
            log.error("unknown policy %r; available: %s", policy,
                      ", ".join(sorted(known_policies)))
            return 2
    config = BTBConfig(entries=args.entries, ways=args.ways)
    mode = "sim" if args.ipc else "misses"
    jobs = [SimJob(app=app, policy=policy, length=args.length,
                   input_id=args.input_id, mode=mode, btb_config=config)
            for app in apps for policy in policies]
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(default_cache_dir())
    if args.resume and not cache_dir:
        log.error("--resume needs the artifact store; drop --no-cache")
        return 2
    engine = ExperimentEngine(cache_dir=cache_dir, jobs=args.jobs,
                              max_retries=args.max_retries,
                              job_timeout=args.job_timeout)
    start = time.perf_counter()
    try:
        results = engine.run(jobs, resume=args.resume)
    except ExperimentError as exc:
        log.error("%s", exc)
        if exc.run_id:
            log.error("completed jobs are cached; continue with "
                      "--resume %s (or --resume latest)", exc.run_id)
        return 1
    except ValueError as exc:
        # e.g. an unknown --resume run id.
        log.error("%s", exc)
        return 2
    elapsed = time.perf_counter() - start

    columns = ["app", "policy", "accesses", "misses", "hit_rate", "cached"]
    if args.ipc:
        columns.insert(5, "ipc")
    rows = []
    for res in results:
        stats = res.value.btb_stats if args.ipc else res.value
        row = [res.job.app, res.job.policy, stats.accesses, stats.misses,
               f"{stats.hit_rate:.4f}"]
        if args.ipc:
            row.append(f"{res.value.ipc:.3f}")
        row.append("hit" if res.cached else "miss")
        rows.append(row)
    emit(format_table(columns, rows))
    emit(f"\n{len(jobs)} jobs in {elapsed:.1f}s "
         f"({args.jobs} worker{'s' if args.jobs != 1 else ''})")
    if cache_dir:
        emit(engine.stats.render())
    if engine.last_manifest is not None:
        log.info("run manifest: %s (render with "
                 "python -m repro.tools.report %s)",
                 engine.last_manifest, engine.last_manifest)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.simulate",
        description="Replay a branch trace through the BTB (and optionally "
                    "the frontend timing model).")
    parser.add_argument("trace", nargs="?", default=None,
                        help="trace file (.btrc/.btxt[.gz]); omit when "
                             "using --apps sweep mode")
    parser.add_argument("--policy", default="lru",
                        help=f"one of: {', '.join(policy_names())}")
    parser.add_argument("--hints", default=None,
                        help="hint JSON (required for thermometer)")
    parser.add_argument("--entries", type=int, default=8192)
    parser.add_argument("--ways", type=int, default=4)
    parser.add_argument("--baseline", default=None, metavar="POLICY",
                        help="also run POLICY and report relative numbers")
    parser.add_argument("--ipc", action="store_true",
                        help="run the frontend timing model too")
    sweep = parser.add_argument_group(
        "sweep mode (parallel engine + artifact cache)")
    sweep.add_argument("--apps", default=None,
                       help="comma-separated application names; runs an "
                            "(apps x policies) matrix through the engine")
    sweep.add_argument("--policies", default="lru",
                       help="comma-separated policy names for --apps mode")
    sweep.add_argument("--length", type=int, default=None,
                       help="per-app trace length for --apps mode")
    sweep.add_argument("--input-id", type=int, default=0,
                       help="workload input configuration for --apps mode")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="parallel worker processes for --apps mode")
    sweep.add_argument("--cache-dir", default=None,
                       help="artifact store location (default: "
                            "REPRO_CACHE_DIR or ~/.cache/repro-thermometer)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the persistent artifact store")
    sweep.add_argument("--resume", default=None, metavar="RUN_ID",
                       help="continue an interrupted sweep: skip jobs "
                            "whose artifacts verify in the store "
                            "('latest' picks the most recent run)")
    sweep.add_argument("--max-retries", type=int, default=None,
                       help="retry a failed/timed-out job up to N times "
                            "with backoff (default: REPRO_MAX_RETRIES "
                            "or 1)")
    sweep.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-attempt wall-clock budget; a job past "
                            "it is timed out and retried (default: "
                            "REPRO_JOB_TIMEOUT or unbounded)")
    add_logging_args(parser)
    args = parser.parse_args(argv)
    setup_cli_logging(args)

    if args.apps:
        if args.trace:
            parser.error("give either a trace file or --apps, not both")
        return _run_sweep(args)
    if not args.trace:
        parser.error("a trace file (or --apps) is required")

    trace = read_trace(args.trace)
    config = BTBConfig(entries=args.entries, ways=args.ways)

    def run(policy_name: str):
        policy = _build_policy(policy_name, trace, args.hints, config)
        stats = run_btb(trace, BTB(config, policy))
        timing = None
        if args.ipc:
            policy = _build_policy(policy_name, trace, args.hints, config)
            timing = run_timing(trace, btb=BTB(config, policy))
        return stats, timing

    try:
        stats, timing = run(args.policy)
    except ValueError as exc:
        parser.error(str(exc))
    emit(f"{args.policy}: accesses={stats.accesses} hits={stats.hits} "
         f"misses={stats.misses} bypasses={stats.bypasses} "
         f"hit_rate={stats.hit_rate:.4f}")
    if timing is not None:
        emit(f"  IPC {timing.ipc:.3f} "
             f"({timing.instructions} instructions, "
             f"{timing.cycles:.0f} cycles)")

    if args.baseline:
        base_stats, base_timing = run(args.baseline)
        reduction = (100.0 * (base_stats.misses - stats.misses)
                     / base_stats.misses if base_stats.misses else 0.0)
        emit(f"{args.baseline} (baseline): misses={base_stats.misses} "
             f"hit_rate={base_stats.hit_rate:.4f}")
        emit(f"  miss reduction vs {args.baseline}: {reduction:.2f}%")
        if timing is not None and base_timing is not None:
            speedup = 100.0 * timing.speedup_over(base_timing)
            emit(f"  IPC speedup vs {args.baseline}: {speedup:.2f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
